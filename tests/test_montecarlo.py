"""Tests for the Monte-Carlo estimators, cross-checked against the analysis."""

import numpy as np
import pytest

from repro.analysis import agreement as A
from repro.analysis import quorum_probability as Q
from repro.analysis import termination as T
from repro.config import ProtocolConfig
from repro.montecarlo.experiments import (
    estimate_agreement_violation,
    estimate_prepare_quorum,
    estimate_protocol_agreement,
    estimate_termination,
)
from repro.montecarlo.sampling import (
    inclusion_counts,
    membership_matrix,
    sample_members,
)


class TestSampling:
    def test_sample_shape_and_distinctness(self):
        rng = np.random.default_rng(0)
        members = sample_members(50, 20, 10, rng)
        assert members.shape == (20, 10)
        for row in members:
            assert len(set(row.tolist())) == 10
            assert all(0 <= x < 50 for x in row)

    def test_sample_full(self):
        rng = np.random.default_rng(0)
        members = sample_members(10, 3, 10, rng)
        for row in members:
            assert sorted(row.tolist()) == list(range(10))

    def test_zero_senders(self):
        rng = np.random.default_rng(0)
        assert sample_members(10, 0, 5, rng).shape == (0, 5)
        assert inclusion_counts(10, 0, 5, rng).tolist() == [0] * 10

    def test_inclusion_counts_sum(self):
        rng = np.random.default_rng(1)
        counts = inclusion_counts(50, 20, 10, rng)
        assert counts.sum() == 200
        assert counts.shape == (50,)

    def test_membership_matrix_consistent(self):
        rng = np.random.default_rng(2)
        matrix = membership_matrix(30, 10, 7, rng)
        assert matrix.shape == (10, 30)
        assert matrix.sum() == 70

    def test_invalid_sample_size(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_members(10, 2, 11, rng)
        with pytest.raises(ValueError):
            sample_members(10, 2, 0, rng)

    def test_inclusion_frequency_close_to_s_over_n(self):
        rng = np.random.default_rng(3)
        n, senders, s = 100, 80, 34
        counts = inclusion_counts(n, senders, s, rng)
        # Mean inclusion per replica ~ senders*s/n = 27.2.
        assert abs(counts.mean() - senders * s / n) < 1e-9  # exact by counting


class TestEstimatorsMatchAnalysis:
    def test_prepare_quorum_matches_exact(self):
        result = estimate_prepare_quorum(100, 20, 1.7, trials=600, seed=1)
        exact = Q.prob_quorum_exact_config(100, 20, 1.7, 2.0)
        assert result.estimates["per_replica_quorum"].compatible_with(exact)

    def test_termination_close_to_exact_chain(self):
        result = estimate_termination(100, 20, 1.7, trials=600, seed=2)
        exact = T.replica_terminates_exact(100, 20, 1.7, 2.0)
        low, high = result.estimates["per_replica_decides"].interval
        # The chain treats stages as independent (slight underestimate), so
        # allow the exact value to sit at/below the interval.
        assert exact <= high + 0.05

    def test_agreement_side_matches_exact(self):
        result = estimate_agreement_violation(
            100, 20, 1.7, trials=3000, seed=3
        )
        exact = A.side_decide_exact(100, 20, 1.7, 2.0)
        est = result.estimates["side_decides_fixed"]
        low, high = est.interval
        assert low - 0.02 <= exact <= high + 0.02

    def test_detection_crushes_violation(self):
        """With equivocation detection modeled, violations vanish — the
        analysis's quorum-only count is a loose upper bound."""
        result = estimate_agreement_violation(
            100, 20, 1.7, trials=800, seed=4, model_detection=True
        )
        quorum_only = result.estimates["violation_quorums"].point
        detected = result.estimates["violation_detected"].point
        assert detected <= quorum_only
        assert detected < 0.01

    def test_termination_improves_with_n(self):
        small = estimate_termination(100, 20, 1.7, trials=300, seed=5)
        large = estimate_termination(256, 51, 1.7, trials=300, seed=5)
        assert (
            large.estimates["per_replica_decides"].point
            >= small.estimates["per_replica_decides"].point - 0.03
        )


class TestProtocolLevel:
    def test_full_protocol_agreement_never_violated(self):
        result = estimate_protocol_agreement(
            ProtocolConfig(n=20, f=4), trials=5, seed=0
        )
        assert result.estimates["violation_full_protocol"].point == 0.0


class TestViewChangeScenario:
    def test_lemma6_bound_dominates_mc(self):
        """Lemma 6's Chernoff bound must upper-bound the empirical rate."""
        from repro.analysis.agreement import lemma6_decide_bound
        from repro.montecarlo.experiments import estimate_viewchange_decide

        n, f, o = 100, 20, 1.6  # within Lemma 6's domain (o*r <= n)
        r = (n + f) // 2
        bound = lemma6_decide_bound(n, f, o, 2.0, r=r)
        result = estimate_viewchange_decide(n, f, o, trials=3000, seed=9)
        low, _high = result.estimates["decides_from_partial_prepare"].interval
        assert low <= bound + 0.02

    def test_decide_rate_grows_with_prepared_count(self):
        from repro.montecarlo.experiments import estimate_viewchange_decide

        small = estimate_viewchange_decide(
            100, 20, 1.7, prepared=40, trials=1500, seed=10
        )
        large = estimate_viewchange_decide(
            100, 20, 1.7, prepared=80, trials=1500, seed=10
        )
        assert (
            large.estimates["decides_from_partial_prepare"].point
            > small.estimates["decides_from_partial_prepare"].point
        )


class TestVectorizedEstimators:
    """The batched numpy kernels must be bit-identical to the general path.

    Each trial in a batch draws from its own ``default_rng(derive_seed(...))``
    generator, so the full MonteCarloResult (every ProportionEstimate, the
    mean prepared fraction, the trial count) must match the one-trial-per-
    spec dispatch exactly — for any batch size, including ragged tails.
    """

    def test_prepare_quorum_matches_general(self):
        from repro.montecarlo.experiments import estimate_prepare_quorum

        general = estimate_prepare_quorum(100, 20, 1.7, trials=400, seed=11)
        for batch_size in (400, 256, 77, 1):
            vectorized = estimate_prepare_quorum(
                100, 20, 1.7, trials=400, seed=11,
                vectorized=True, batch_size=batch_size,
            )
            assert vectorized == general, batch_size

    def test_termination_matches_general(self):
        from repro.montecarlo.experiments import estimate_termination

        general = estimate_termination(100, 20, 1.7, trials=300, seed=12)
        vectorized = estimate_termination(
            100, 20, 1.7, trials=300, seed=12, vectorized=True, batch_size=64
        )
        assert vectorized == general

    def test_viewchange_matches_general(self):
        from repro.montecarlo.experiments import estimate_viewchange_decide

        general = estimate_viewchange_decide(100, 20, 1.7, trials=500, seed=13)
        vectorized = estimate_viewchange_decide(
            100, 20, 1.7, trials=500, seed=13, vectorized=True, batch_size=128
        )
        assert vectorized == general

    def test_full_sample_branch_matches(self):
        # o large enough that s == n exercises the broadcast-arange branch.
        from repro.montecarlo.experiments import estimate_prepare_quorum

        general = estimate_prepare_quorum(40, 8, 4.0, trials=120, seed=14)
        vectorized = estimate_prepare_quorum(
            40, 8, 4.0, trials=120, seed=14, vectorized=True, batch_size=50
        )
        assert vectorized == general

    def test_vectorized_rejects_stopping_rules(self):
        from repro.harness.adaptive import TargetWidth
        from repro.montecarlo.experiments import estimate_prepare_quorum

        with pytest.raises(ValueError, match="fixed budgets only"):
            estimate_prepare_quorum(
                100, 20, 1.7, trials=400, seed=11,
                vectorized=True,
                stopping=TargetWidth(0.05, metric="prepare_first"),
            )

    def test_invalid_batch_size(self):
        from repro.montecarlo.experiments import estimate_prepare_quorum

        with pytest.raises(ValueError, match="batch_size"):
            estimate_prepare_quorum(
                100, 20, 1.7, trials=40, seed=11,
                vectorized=True, batch_size=0,
            )
