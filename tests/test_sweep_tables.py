"""Tests for the sweep runner and table rendering."""

import math

import pytest

from repro.harness.sweep import SweepPoint, run_sweep
from repro.harness.tables import format_cell, render_series, render_table, sparkline


class TestSweep:
    def test_cartesian_grid(self):
        result = run_sweep(
            {"a": [1, 2], "b": [10, 20]},
            lambda p: {"sum": p["a"] + p["b"]},
        )
        assert result.column("sum") == [11, 21, 12, 22]
        assert result.headers == ["a", "b", "sum"]

    def test_table_rows(self):
        result = run_sweep({"x": [3]}, lambda p: {"y": p["x"] * 2})
        assert result.table_rows() == [[3, 6]]

    def test_filtered(self):
        result = run_sweep(
            {"a": [1, 2], "b": [10, 20]},
            lambda p: {"sum": p["a"] + p["b"]},
        )
        sub = result.filtered(a=2)
        assert sub.column("sum") == [12, 22]

    def test_column_unknown_key(self):
        result = run_sweep({"x": [1]}, lambda p: {"y": 1})
        with pytest.raises(KeyError):
            result.column("z")

    def test_inconsistent_outputs_rejected(self):
        def fn(point: SweepPoint):
            return {"a": 1} if point["x"] == 1 else {"b": 2}

        with pytest.raises(ValueError):
            run_sweep({"x": [1, 2]}, fn)

    def test_point_as_row(self):
        point = SweepPoint(params={"n": 10, "o": 1.7})
        assert point.as_row(["o", "n"]) == [1.7, 10]


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_nan(self):
        assert format_cell(float("nan")) == "n/a"

    def test_small_float_scientific(self):
        assert "e" in format_cell(1.5e-7)

    def test_integer_float(self):
        assert format_cell(3.0) == "3"

    def test_regular_float(self):
        assert format_cell(0.123456789) == "0.123457"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_contains_headers_and_rows(self):
        text = render_table(["x", "y"], [[1, 2], [3, 4]], title="T")
        assert "T" in text
        assert "x" in text and "y" in text
        assert "3" in text and "4" in text

    def test_column_alignment(self):
        text = render_table(["name", "v"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len({line.index("v") for line in lines[:1]}) == 1

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert "[1 .. 5]" in line

    def test_constant_series(self):
        line = sparkline([2.0, 2.0, 2.0])
        assert "[2 .. 2]" in line

    def test_empty(self):
        assert sparkline([]) == "(no data)"

    def test_nan_handling(self):
        line = sparkline([1.0, float("nan"), 3.0])
        assert "?" in line


class TestRenderSeries:
    def test_includes_all_curves(self):
        text = render_series(
            "n", [1, 2], {"up": [0.1, 0.9], "down": [0.9, 0.1]}, title="S"
        )
        assert "up" in text and "down" in text and "S" in text
