"""Golden seed-stability regressions.

These pin exact per-seed outcomes — the engine's seed derivation, one full
ProBFT run, and small Monte-Carlo estimates — so that refactors of the
experiment engine or the deployment wiring cannot silently reorder RNG
streams.  If one of these fails after an intentional RNG change, re-record
the golden values *in the same commit* and say so in the commit message.
"""

from __future__ import annotations

from repro.config import ProtocolConfig
from repro.harness.parallel import derive_seed
from repro.harness.runner import run_probft
from repro.montecarlo.experiments import (
    estimate_prepare_quorum,
    estimate_termination,
)


class TestSeedDerivationGoldens:
    """The engine's counter-based splitter is a frozen function."""

    def test_first_child_seeds_of_master_zero(self):
        assert [derive_seed(0, i) for i in range(4)] == [
            12035550249420947055,
            12935080325729570654,
            7141179953334974231,
            12108695660851890438,
        ]

    def test_nonzero_master(self):
        assert derive_seed(123, 0) == 16163597885971035396


class TestProtocolRunGolden:
    """One small ProBFT run, fully pinned: decisions, views, traffic."""

    def test_probft_n8_seed42(self):
        result = run_probft(ProtocolConfig(n=8, f=1), seed=42, max_time=5000)
        assert result.decided == 8
        assert result.all_decided and result.agreement_ok
        assert result.decided_values == (b"value-0",)
        assert result.decision_views == (1,)
        assert result.max_view == 1
        assert result.last_decision_time == 3.0
        assert result.total_messages == 119
        assert result.messages_by_type == {
            "Commit": 56,
            "Prepare": 56,
            "Propose": 7,
        }


class TestEstimatorGoldens:
    """Sampling-level estimates are exact integers under a fixed seed."""

    def test_termination_golden_counts(self):
        result = estimate_termination(36, 7, 1.7, trials=16, seed=123)
        assert result.estimates["per_replica_decides"].successes == 16
        assert result.estimates["all_correct_decide"].successes == 7
        assert result.mean_prepared_fraction == 0.9849137931034483

    def test_prepare_quorum_golden_counts(self):
        result = estimate_prepare_quorum(36, 7, 1.7, trials=16, seed=9)
        assert result.estimates["per_replica_quorum"].successes == 16
        assert result.estimates["all_correct_quorum"].successes == 12

    def test_golden_counts_survive_parallel_execution(self):
        result = estimate_termination(36, 7, 1.7, trials=16, seed=123, workers=2)
        assert result.estimates["per_replica_decides"].successes == 16
        assert result.estimates["all_correct_decide"].successes == 7
