"""Tests for the parallel Monte-Carlo experiment engine.

The engine's contract: identical results for every worker count (serial
in-process, one worker, or more workers than cores), results in submission
order, and failing trials surfacing as :class:`TrialError` with the trial's
identity — from both the serial and the pooled path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.parallel import (
    ExperimentEngine,
    TrialError,
    TrialSpec,
    derive_seed,
    resolve_engine,
    spawn_seeds,
    workers_from_env,
)
from repro.montecarlo.experiments import (
    estimate_agreement_violation,
    estimate_protocol_agreement,
    estimate_termination,
)
from repro.config import ProtocolConfig


# Module-level trial functions: the pool pickles these into workers.


def draw_trial(spec: TrialSpec) -> float:
    """A seed-driven stochastic trial: first uniform draw of the stream."""
    return float(np.random.default_rng(spec.seed).random())


def echo_trial(spec: TrialSpec) -> tuple:
    return spec.index, spec.seed, spec.params


def crash_on_three(spec: TrialSpec) -> int:
    if spec.index == 3:
        raise ValueError(f"boom at {spec.index}")
    return spec.index


def record_and_crash(spec: TrialSpec) -> int:
    spec.params.append(spec.index)
    if spec.index == 2:
        raise RuntimeError("stop here")
    return spec.index


class TestSeedDerivation:
    def test_deterministic_and_pure(self):
        assert derive_seed(0, 0) == derive_seed(0, 0)
        assert spawn_seeds(42, 5) == [derive_seed(42, i) for i in range(5)]

    def test_distinct_across_indices_and_masters(self):
        seeds = {derive_seed(m, i) for m in range(20) for i in range(500)}
        assert len(seeds) == 20 * 500

    def test_64_bit_range(self):
        for seed in spawn_seeds(7, 100):
            assert 0 <= seed < 2**64

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(0, -1)

    def test_huge_master_seed_wraps(self):
        assert 0 <= derive_seed(2**200 + 17, 3) < 2**64


class TestEngineBasics:
    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ExperimentEngine(workers=-1)
        with pytest.raises(ValueError):
            ExperimentEngine(chunk_size=0)

    def test_zero_trials(self):
        assert ExperimentEngine().run_trials(draw_trial, 0) == []
        assert ExperimentEngine(workers=2).map(draw_trial, []) == []

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError):
            ExperimentEngine().run_trials(draw_trial, -1)

    def test_results_in_submission_order(self):
        engine = ExperimentEngine(workers=2)
        out = engine.run_trials(echo_trial, 20, master_seed=3, params="p")
        assert [i for i, _, _ in out] == list(range(20))
        assert all(s == derive_seed(3, i) for i, s, _ in out)
        assert all(p == "p" for _, _, p in out)

    def test_resolve_engine_prefers_given(self):
        engine = ExperimentEngine(workers=5)
        assert resolve_engine(engine, 0) is engine
        assert resolve_engine(None, 3).workers == 3

    def test_pool_is_reused_across_map_calls(self):
        with ExperimentEngine(workers=2) as engine:
            engine.run_trials(draw_trial, 4)
            pool = engine._pool
            assert pool is not None
            engine.run_trials(draw_trial, 4)
            assert engine._pool is pool
        assert engine._pool is None  # context exit closed it
        # A closed engine transparently re-creates its pool.
        assert len(engine.run_trials(draw_trial, 3)) == 3
        engine.close()

    def test_workers_from_env(self, monkeypatch):
        monkeypatch.delenv("X_WORKERS", raising=False)
        assert workers_from_env("X_WORKERS") == 0
        assert workers_from_env("X_WORKERS", default=4) == 4
        monkeypatch.setenv("X_WORKERS", "6")
        assert workers_from_env("X_WORKERS") == 6
        monkeypatch.setenv("X_WORKERS", "junk")
        assert workers_from_env("X_WORKERS", default=2) == 2
        monkeypatch.setenv("X_WORKERS", "-3")
        assert workers_from_env("X_WORKERS") == 0


class TestSerialParallelDeterminism:
    """Same master seed ⇒ identical per-trial results, any worker count."""

    def test_trial_level_identity(self):
        reference = ExperimentEngine(workers=0).run_trials(
            draw_trial, 40, master_seed=11
        )
        for workers in (1, 2, 3):
            got = ExperimentEngine(workers=workers).run_trials(
                draw_trial, 40, master_seed=11
            )
            assert got == reference

    def test_chunk_size_is_irrelevant(self):
        reference = ExperimentEngine(workers=0).run_trials(
            draw_trial, 30, master_seed=1
        )
        for chunk in (1, 7, 30):
            got = ExperimentEngine(workers=2, chunk_size=chunk).run_trials(
                draw_trial, 30, master_seed=1
            )
            assert got == reference

    def test_estimate_termination_identical(self):
        serial = estimate_termination(64, 12, 1.7, trials=60, seed=5, workers=0)
        pooled = estimate_termination(64, 12, 1.7, trials=60, seed=5, workers=2)
        for key in serial.estimates:
            assert (
                serial.estimates[key].successes == pooled.estimates[key].successes
            )
        # Float aggregation is order-sensitive; submission-order collection
        # makes even this bit-identical.
        assert serial.mean_prepared_fraction == pooled.mean_prepared_fraction

    def test_estimate_agreement_violation_identical(self):
        serial = estimate_agreement_violation(
            64, 12, 1.7, trials=80, seed=6, model_detection=True, workers=0
        )
        pooled = estimate_agreement_violation(
            64, 12, 1.7, trials=80, seed=6, model_detection=True, workers=3
        )
        assert {k: v.successes for k, v in serial.estimates.items()} == {
            k: v.successes for k, v in pooled.estimates.items()
        }

    def test_full_protocol_runs_identical(self):
        config = ProtocolConfig(n=8, f=1)
        serial = estimate_protocol_agreement(config, trials=4, seed=0, workers=0)
        pooled = estimate_protocol_agreement(config, trials=4, seed=0, workers=2)
        assert {k: v.successes for k, v in serial.estimates.items()} == {
            k: v.successes for k, v in pooled.estimates.items()
        }


class TestErrorPropagation:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_crashing_trial_raises_trial_error(self, workers):
        engine = ExperimentEngine(workers=workers)
        with pytest.raises(TrialError) as exc_info:
            engine.run_trials(crash_on_three, 8, master_seed=2)
        err = exc_info.value
        assert err.index == 3
        assert err.seed == derive_seed(2, 3)
        assert "boom at 3" in str(err)
        assert "ValueError" in err.detail

    def test_serial_path_fails_fast(self):
        """In-process execution stops at the failing trial — later trials
        (which may each be a whole simulation) never run."""
        ran = []
        engine = ExperimentEngine(workers=0)
        with pytest.raises(TrialError):
            engine.run_trials(record_and_crash, 10, master_seed=0, params=ran)
        assert ran == [0, 1, 2]

    def test_first_failure_in_submission_order_wins(self):
        # Index 3 fails; trials after it may or may not have run, but the
        # reported failure is deterministic.
        engine = ExperimentEngine(workers=2, chunk_size=1)
        with pytest.raises(TrialError) as exc_info:
            engine.run_trials(crash_on_three, 50, master_seed=0)
        assert exc_info.value.index == 3
