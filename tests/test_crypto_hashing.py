"""Tests for repro.crypto.hashing."""

import pytest

from repro.crypto.hashing import digest, digest_hex, stable_encode
from repro.messages.base import ProposalStatement


class TestStableEncode:
    def test_primitives_distinct(self):
        # Note: tuples and lists intentionally encode identically, so only
        # one sequence representative appears here.
        values = [None, True, False, 0, 1, 1.0, b"1", "1", (), {}]
        encodings = [stable_encode(v) for v in values]
        assert len(set(encodings)) == len(encodings)

    def test_bool_not_confused_with_int(self):
        assert stable_encode(True) != stable_encode(1)
        assert stable_encode(False) != stable_encode(0)

    def test_str_bytes_distinct(self):
        assert stable_encode("abc") != stable_encode(b"abc")

    def test_dict_order_independent(self):
        assert stable_encode({"a": 1, "b": 2}) == stable_encode({"b": 2, "a": 1})

    def test_set_order_independent(self):
        assert stable_encode({1, 2, 3}) == stable_encode({3, 2, 1})

    def test_nested_structures(self):
        v1 = ("x", [1, 2, {"k": b"v"}], {"s"})
        v2 = ("x", [1, 2, {"k": b"v"}], {"s"})
        assert stable_encode(v1) == stable_encode(v2)

    def test_list_vs_tuple_same(self):
        # Lists and tuples encode identically (sequences).
        assert stable_encode([1, 2]) == stable_encode((1, 2))

    def test_length_prefix_prevents_concatenation_ambiguity(self):
        assert stable_encode(("ab", "c")) != stable_encode(("a", "bc"))

    def test_canonical_objects(self):
        s1 = ProposalStatement(view=1, value=b"x")
        s2 = ProposalStatement(view=1, value=b"x")
        assert stable_encode(s1) == stable_encode(s2)
        s3 = ProposalStatement(view=2, value=b"x")
        assert stable_encode(s1) != stable_encode(s3)

    def test_unencodable_raises(self):
        with pytest.raises(TypeError):
            stable_encode(object())


class TestDigest:
    def test_deterministic(self):
        assert digest("a", 1, b"z") == digest("a", 1, b"z")

    def test_sensitive_to_order(self):
        assert digest("a", "b") != digest("b", "a")

    def test_part_boundaries(self):
        assert digest("ab", "c") != digest("a", "bc")

    def test_length(self):
        assert len(digest("x")) == 32

    def test_hex_form(self):
        assert digest_hex("x") == digest("x").hex()
