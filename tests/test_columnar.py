"""Columnar vote state: packed-bitmap primitives, golden-seed identity,
summary accounting, crypto memo budgets, and memory telemetry.

The columnar layer's contract (see :mod:`repro.core.columnar`) is that a
run with ``DeploymentSpec.columnar`` (riding on sparse delivery) is
**bit-identical** to the dense reference for the same seed: same
decisions, same views, same message statistics, same simulated time.
These tests replay matrix cells both ways (the
:mod:`tests.test_sparse_delivery` pattern) and unit-test the building
blocks the kernel leans on.

Each identity comparison builds a *fresh* spec per run via
:func:`~repro.harness.registry.cell_deployment_spec`: a DeploymentSpec
carries seeded latency/chaos objects whose RNG streams advance as the
simulation runs, so replaying a used spec would compare against an
advanced stream, not against dense mode.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

np = pytest.importorskip(
    "numpy",
    reason=(
        "columnar vote state requires numpy; install numpy to run the "
        "columnar test suite (the dense path needs none of it)"
    ),
)

from repro.config import ProtocolConfig
from repro.core.columnar import (
    bitmap_from_ids,
    bitmap_ids,
    bitmap_merge,
    bitmap_popcount,
    bitmap_words,
)
from repro.crypto.context import (
    MEMO_BUDGET_CEILING,
    MEMO_BUDGET_FLOOR,
    CryptoContext,
    memo_budget,
)
from repro.crypto.signatures import MemoizedSignatureScheme
from repro.crypto.vrf import MemoizedVRF
from repro.harness.metrics import IndexedCounter
from repro.harness.registry import (
    ADVERSARIES,
    MatrixCell,
    ScenarioMatrix,
    cell_deployment_spec,
)
from repro.harness.trial import DeploymentSpec, run_trial
from repro.net.network import MessageStats

PROTOCOLS = ("probft", "pbft", "hotstuff")
MAX_TIME = 600.0

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - env-dependent
    HAVE_HYPOTHESIS = False


# ----------------------------------------------------------------------
# Packed-bitmap primitives
# ----------------------------------------------------------------------


def _check_roundtrip_and_popcount(ids, n):
    words = bitmap_from_ids(ids, n)
    assert words.shape == (bitmap_words(n),)
    assert bitmap_ids(words) == tuple(sorted(set(ids)))
    assert bitmap_popcount(words) == len(set(ids))


def _check_merge(a_ids, b_ids, n):
    a = bitmap_from_ids(a_ids, n)
    b = bitmap_from_ids(b_ids, n)
    merged = bitmap_merge(a, b)
    assert bitmap_ids(merged) == tuple(sorted(set(a_ids) | set(b_ids)))
    assert bitmap_popcount(merged) == len(set(a_ids) | set(b_ids))
    # Inputs untouched (merge allocates).
    assert bitmap_ids(a) == tuple(sorted(set(a_ids)))
    assert bitmap_ids(b) == tuple(sorted(set(b_ids)))


class TestPackedBitmaps:
    if HAVE_HYPOTHESIS:

        @settings(max_examples=100, deadline=None)
        @given(
            n=st.integers(min_value=1, max_value=300),
            data=st.data(),
        )
        def test_roundtrip_and_popcount_property(self, n, data):
            ids = data.draw(
                st.lists(st.integers(min_value=0, max_value=n - 1))
            )
            _check_roundtrip_and_popcount(ids, n)

        @settings(max_examples=100, deadline=None)
        @given(
            n=st.integers(min_value=1, max_value=300),
            data=st.data(),
        )
        def test_merge_is_union_property(self, n, data):
            members = st.lists(st.integers(min_value=0, max_value=n - 1))
            _check_merge(data.draw(members), data.draw(members), n)

    else:  # pragma: no cover - exercised only without hypothesis

        def test_roundtrip_and_popcount_seeded(self):
            rng = random.Random(0xC01)
            for _ in range(200):
                n = rng.randint(1, 300)
                ids = [rng.randrange(n) for _ in range(rng.randint(0, n))]
                _check_roundtrip_and_popcount(ids, n)

        def test_merge_is_union_seeded(self):
            rng = random.Random(0xC02)
            for _ in range(200):
                n = rng.randint(1, 300)
                a = [rng.randrange(n) for _ in range(rng.randint(0, n))]
                b = [rng.randrange(n) for _ in range(rng.randint(0, n))]
                _check_merge(a, b, n)

    def test_word_boundaries_exact(self):
        # 63/64/65 straddle the uint64 word edge — the classic off-by-one.
        for n in (63, 64, 65, 127, 128, 129):
            ids = [0, n - 1]
            words = bitmap_from_ids(ids, n)
            assert bitmap_ids(words) == (0, n - 1)
            assert bitmap_popcount(words) == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            bitmap_from_ids([8], 8)
        with pytest.raises(ValueError, match="out of range"):
            bitmap_from_ids([-1], 8)

    def test_merge_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            bitmap_merge(
                bitmap_from_ids([0], 64), bitmap_from_ids([0], 128)
            )


# ----------------------------------------------------------------------
# Golden-seed identity: dense == sparse+columnar, full RunResult
# ----------------------------------------------------------------------


def _supported_cells(latency: str):
    for protocol in PROTOCOLS:
        for adversary in ADVERSARIES:
            cell = MatrixCell(
                protocol=protocol,
                adversary=adversary,
                latency=latency,
                n=14,
                f=2,
                track_bytes=True,
            )
            if cell.supported:
                yield cell


class TestGoldenSeedIdentity:
    @pytest.mark.parametrize("latency", ["constant", "uniform"])
    def test_every_cell_bit_identical(self, latency):
        """Dense and sparse+columnar produce equal RunResults per cell.

        Covers the kernel's branchy cases explicitly: equivocation (the
        view-flagging decline path), flooding (invalid votes through
        ``_deliver_odd``), duplication (the kernel declines, facades
        dedup), and the targeted scheduler (per-recipient eligibility).
        """
        for cell in _supported_cells(latency):
            for seed in (0, 1):
                dense = run_trial(
                    cell_deployment_spec(cell, seed=seed, max_time=MAX_TIME)
                )
                columnar = run_trial(
                    cell_deployment_spec(cell, seed=seed, max_time=MAX_TIME)
                    .with_sparse()
                    .with_columnar()
                )
                assert dense == columnar, (
                    f"{cell.label} seed={seed}: columnar diverged from dense"
                )

    def test_columnar_cell_flag_matches_dense(self):
        """``MatrixCell(columnar=True)`` is the one-knob scale stack."""
        plain = MatrixCell("probft", "silent", "constant", n=14, f=2)
        flagged = MatrixCell(
            "probft", "silent", "constant", n=14, f=2, columnar=True
        )
        spec = cell_deployment_spec(flagged, seed=3, max_time=MAX_TIME)
        assert spec.sparse and spec.columnar
        dense = run_trial(cell_deployment_spec(plain, seed=3, max_time=MAX_TIME))
        columnar = run_trial(spec)
        assert dense == columnar

    def test_with_columnar_round_trip(self):
        spec = DeploymentSpec(protocol="probft", config=ProtocolConfig(n=6, f=1))
        assert not spec.columnar
        on = spec.with_columnar()
        assert on.columnar and on.with_columnar(False) == spec

    def test_scenario_matrix_threads_flags(self):
        matrix = ScenarioMatrix(
            name="t",
            protocols=("probft",),
            adversaries=("none",),
            latencies=("constant",),
            n=14,
            columnar=True,
            track_memory=True,
        )
        (cell,) = matrix.cells()
        assert cell.columnar and cell.track_memory
        resized = matrix.with_size(20)
        assert resized.columnar and resized.track_memory


# ----------------------------------------------------------------------
# Memory telemetry
# ----------------------------------------------------------------------


class TestMemoryTelemetry:
    def test_track_memory_reports_peak(self):
        spec = DeploymentSpec(
            protocol="probft",
            config=ProtocolConfig(n=8, f=1),
            seed=1,
            max_time=MAX_TIME,
            track_memory=True,
        )
        result = run_trial(spec)
        assert result.peak_mem_mb is not None and result.peak_mem_mb > 0

    def test_untracked_peak_is_none_and_identical_otherwise(self):
        base = DeploymentSpec(
            protocol="probft",
            config=ProtocolConfig(n=8, f=1),
            seed=1,
            max_time=MAX_TIME,
        )
        plain = run_trial(base)
        tracked = run_trial(
            DeploymentSpec(
                protocol="probft",
                config=ProtocolConfig(n=8, f=1),
                seed=1,
                max_time=MAX_TIME,
                track_memory=True,
            )
        )
        assert plain.peak_mem_mb is None
        # Telemetry only: every protocol-visible field matches (the
        # telemetry field itself is the one permitted difference).
        from dataclasses import replace as _replace

        assert plain == _replace(tracked, peak_mem_mb=None)


# ----------------------------------------------------------------------
# Byte-budgeted crypto memo caps
# ----------------------------------------------------------------------


class TestCryptoMemoBudgets:
    def test_memo_budget_clamps(self):
        small_budget, small_entry = memo_budget(8)
        assert small_budget == MEMO_BUDGET_FLOOR  # floor binds at tiny n
        big_budget, big_entry = memo_budget(20000)
        assert big_budget == MEMO_BUDGET_CEILING  # ceiling binds at n≈2·10⁴
        assert big_entry > small_entry  # entry estimate scales with s(n)

    def test_vrf_byte_budget_bounds_and_counts_evictions(self):
        fresh = CryptoContext.create(6, b"vrf-budget")
        # Room for exactly 3 entries per memo map.
        memo = MemoizedVRF(fresh.registry, byte_budget=3 * 512, entry_bytes=512)
        for view in range(10):
            memo.prove(0, f"{view}||prepare", 3)
        assert len(memo._prove_cache) <= 3
        stats = memo.cache_stats()
        assert stats["evictions"] > 0
        assert stats["max_entries"] == 3
        # Evicted keys still prove correctly (and bit-identically).
        again = memo.prove(0, "0||prepare", 3)
        assert again == fresh.vrf.prove(0, "0||prepare", 3)

    def test_vrf_byte_budget_never_below_one_entry(self):
        fresh = CryptoContext.create(4, b"vrf-budget-tiny")
        memo = MemoizedVRF(fresh.registry, byte_budget=1, entry_bytes=2048)
        memo.prove(0, "1||prepare", 2)
        assert memo.cache_stats()["max_entries"] == 1

    def test_signature_byte_budget_bounds_and_counts_evictions(self):
        fresh = CryptoContext.create(4, b"sig-budget")
        memo = MemoizedSignatureScheme(
            fresh.registry, byte_budget=2 * 1024, entry_bytes=1024
        )
        envelopes = [memo.sign(0, ("m", i)) for i in range(6)]
        for envelope in envelopes:
            assert memo.verify(envelope)
        stats = memo.cache_stats()
        assert len(memo._cache) <= 2
        assert stats["max_entries"] == 2
        assert stats["evictions"] > 0
        for envelope in envelopes:  # evicted entries still verify
            assert memo.verify(envelope)

    def test_cache_stats_shapes(self):
        fresh = CryptoContext.create(4, b"stats-shape")
        vrf_stats = MemoizedVRF(fresh.registry).cache_stats()
        for key in (
            "hits",
            "misses",
            "prove_hits",
            "prove_misses",
            "evictions",
            "entries",
            "max_entries",
        ):
            assert key in vrf_stats
        sig_stats = MemoizedSignatureScheme(fresh.registry).cache_stats()
        for key in ("hits", "misses", "tag_hits", "evictions", "entries"):
            assert key in sig_stats


# ----------------------------------------------------------------------
# Summary network accounting
# ----------------------------------------------------------------------


class TestIndexedCounter:
    def test_matches_counter_semantics(self):
        index = {}
        counted = IndexedCounter(index)
        reference = Counter()
        rng = random.Random(7)
        names = ["Prepare", "Commit", "Propose", "NewLeader"]
        for _ in range(500):
            name = rng.choice(names)
            amount = rng.randint(1, 5)
            counted.bump(name, amount)
            reference[name] += amount
        assert counted.as_counter() == reference
        assert counted.total() == sum(reference.values())
        for name in names:
            assert counted.get(name) == reference[name]

    def test_shared_index_one_slot_per_name(self):
        index = {}
        sent = IndexedCounter(index)
        delivered = IndexedCounter(index)
        assert sent.slot("Prepare") == delivered.slot("Prepare")
        sent.bump("Prepare", 2)
        delivered.bump("Commit")  # grows both lists through the shared index
        assert sent.get("Commit") == 0
        assert delivered.get("Prepare") == 0

    def test_touched_zero_keys_preserved(self):
        # Counter key-presence semantics: a size-0 record must surface the
        # key with value 0 (dense byte accounting does exactly this).
        counter = IndexedCounter({})
        counter.bump("Prepare", 0)
        assert counter.as_counter() == Counter({"Prepare": 0})
        assert "Prepare" in counter.as_counter()


class TestMessageStatsSummaryAccounting:
    class _Msg:
        pass

    def test_counters_rebuild_identically(self):
        stats = MessageStats()
        msg = self._Msg()
        stats.record_send(1, msg, size=10)
        stats.record_multicast(2, msg, 5, size=7)
        stats.record_delivery(msg)
        stats.record_bulk_delivery(msg, 4)
        assert stats.sent_by_type == Counter({"_Msg": 6})
        assert stats.delivered_by_type == Counter({"_Msg": 5})
        assert stats.bytes_by_type == Counter({"_Msg": 10 + 5 * 7})
        assert stats.sent_total == 6
        assert stats.delivered_total == 5
        assert stats.bytes_total == 45
        assert stats.sent("_Msg") == 6 and stats.sent("Other") == 0

    def test_history_is_opt_in(self):
        msg = self._Msg()
        silent = MessageStats()
        silent.record_send(1, msg, size=3)
        silent.record_bulk_delivery(msg, 2)
        assert silent.history == []
        verbose = MessageStats(track_history=True)
        verbose.record_send(1, msg, size=3)
        verbose.record_multicast(2, msg, 2, size=None)
        verbose.record_delivery(msg)
        verbose.record_bulk_delivery(msg, 2)
        assert verbose.history == [
            ("send", 1, "_Msg", 1, 3),
            ("send", 2, "_Msg", 2, None),
            ("deliver", "_Msg", 1),
            ("deliver", "_Msg", 2),
        ]

    def test_zero_count_records_ignored(self):
        stats = MessageStats(track_history=True)
        stats.record_multicast(1, self._Msg(), 0, size=5)
        stats.record_bulk_delivery(self._Msg(), 0)
        assert stats.sent_total == 0 and stats.delivered_total == 0
        assert stats.history == []
