"""Tests for the execution auditor."""

import pytest

from repro.config import ProtocolConfig
from repro.core.invariants import AuditReport, audit_deployment
from repro.core.protocol import ProBFTDeployment
from repro.harness import scenarios
from repro.types import Decision


class TestAuditReport:
    def test_empty_report_ok(self):
        report = AuditReport()
        assert report.ok
        report.add("problem")
        assert not report.ok
        assert "problem" in str(report)


class TestAuditHappyRuns:
    def test_happy_run_passes(self):
        dep = scenarios.happy_case(ProtocolConfig(n=12, f=2))
        dep.run(max_time=500)
        report = audit_deployment(dep)
        assert report.ok, str(report)
        assert report.checks_run > 12  # at least one check per replica

    def test_view_change_run_passes(self):
        dep = scenarios.silent_leader_case(ProtocolConfig(n=10, f=2))
        dep.run(max_time=2000)
        report = audit_deployment(dep)
        assert report.ok, str(report)

    def test_equivocation_run_passes(self):
        dep, _plan = scenarios.equivocation_case(ProtocolConfig(n=16, f=3))
        dep.run(max_time=2000)
        report = audit_deployment(dep)
        assert report.ok, str(report)

    def test_flooding_run_passes(self):
        dep = scenarios.flooding_case(ProtocolConfig(n=10, f=2))
        dep.run(max_time=1000)
        report = audit_deployment(dep)
        assert report.ok, str(report)


class TestAuditCatchesCorruption:
    """Corrupt a finished run's state and check the auditor notices."""

    @pytest.fixture
    def finished(self):
        dep = scenarios.happy_case(ProtocolConfig(n=12, f=2))
        dep.run(max_time=500)
        return dep

    def test_detects_forged_disagreement(self, finished):
        victim = finished.decisions[3]
        finished.decisions[3] = Decision(
            replica=3, value=b"FORGED", view=victim.view, time=victim.time
        )
        report = audit_deployment(finished)
        assert not report.ok
        assert any("agreement" in v for v in report.violations)

    def test_detects_record_mismatch(self, finished):
        del finished.decisions[5]
        report = audit_deployment(finished)
        assert not report.ok
        assert any("mismatch" in v for v in report.violations)

    def test_detects_forged_prepared_state(self, finished):
        replica = finished.replicas[4]
        replica._prepared_value = b"FORGED"  # cert no longer matches
        report = audit_deployment(finished)
        assert not report.ok
        assert any("certificate" in v for v in report.violations)

    def test_detects_misattributed_decision(self, finished):
        d = finished.decisions[2]
        finished.decisions[2] = Decision(
            replica=9, value=d.value, view=d.view, time=d.time
        )
        report = audit_deployment(finished)
        assert not report.ok
