"""Golden-seed equivalence of sparse delivery against the dense reference.

The sparse layer's contract (see :mod:`repro.net.sparse`) is that a run
with a delivery policy attached is *bit-identical* to the dense run for
the same :class:`~repro.harness.trial.DeploymentSpec` seed: same
decisions, same views, same message statistics, same simulated time.
These tests replay every protocol x adversary cell of the harness matrix
both ways and compare the full :class:`~repro.harness.trial.RunResult`.

Each comparison builds a *fresh* spec per run via
:func:`~repro.harness.registry.cell_deployment_spec`: a DeploymentSpec
carries seeded latency/chaos objects whose RNG streams advance as the
simulation runs, so replaying a used spec would compare against an
advanced stream, not against dense mode.
"""

from __future__ import annotations

import pytest

from repro.harness.registry import ADVERSARIES, MatrixCell, cell_deployment_spec
from repro.harness.trial import run_trial
from repro.net import CoalescingDelivery, SparseDeliveryPolicy

PROTOCOLS = ("probft", "pbft", "hotstuff")
MAX_TIME = 600.0


def _supported_cells(latency: str):
    for protocol in PROTOCOLS:
        for adversary in ADVERSARIES:
            cell = MatrixCell(
                protocol=protocol,
                adversary=adversary,
                latency=latency,
                n=14,
                f=2,
                track_bytes=True,
            )
            if cell.supported:
                yield cell


def _run_pair(cell: MatrixCell, seed: int):
    dense = run_trial(cell_deployment_spec(cell, seed=seed, max_time=MAX_TIME))
    sparse = run_trial(
        cell_deployment_spec(cell, seed=seed, max_time=MAX_TIME).with_sparse()
    )
    return dense, sparse


class TestGoldenSeedEquivalence:
    @pytest.mark.parametrize("latency", ["constant", "uniform", "pre-gst-chaos"])
    def test_every_cell_bit_identical(self, latency):
        """Dense and sparse produce equal RunResults on every matrix cell.

        Covers suppression-sensitive adversaries explicitly: equivocation
        (the view-flagging path), flooding (forged statements must NOT
        flag views), duplication (per-target duplicate draws), and the
        targeted scheduler.
        """
        checked = 0
        for cell in _supported_cells(latency):
            for seed in (0, 1):
                dense, sparse = _run_pair(cell, seed)
                assert dense == sparse, (cell.label, seed)
                checked += 1
        assert checked > 0

    def test_spec_sparse_flag_round_trip(self):
        cell = MatrixCell(
            protocol="probft",
            adversary="none",
            latency="constant",
            n=14,
            f=2,
            track_bytes=False,
        )
        spec = cell_deployment_spec(cell, seed=0, max_time=MAX_TIME)
        assert spec.sparse is False
        assert spec.with_sparse().sparse is True
        assert spec.with_sparse().with_sparse(False).sparse is False
        # with_sparse is non-destructive.
        assert spec.sparse is False

    def test_sparse_deployment_has_policy_attached(self):
        cell = MatrixCell(
            protocol="probft",
            adversary="none",
            latency="constant",
            n=14,
            f=2,
            track_bytes=False,
        )
        spec = cell_deployment_spec(cell, seed=0, max_time=MAX_TIME)
        assert spec.build().network.delivery_policy is None
        policy = spec.with_sparse().build().network.delivery_policy
        assert isinstance(policy, SparseDeliveryPolicy)

    def test_baselines_use_pure_coalescing(self):
        # Deterministic-quorum protocols broadcast votes to everyone, so
        # there is nothing to prune — only events to coalesce.
        for protocol in ("pbft", "hotstuff"):
            cell = MatrixCell(
                protocol=protocol,
                adversary="none",
                latency="constant",
                n=14,
                f=2,
                track_bytes=False,
            )
            policy = (
                cell_deployment_spec(cell, seed=0, max_time=MAX_TIME)
                .with_sparse()
                .build()
                .network.delivery_policy
            )
            assert type(policy) is CoalescingDelivery


class TestLargeNSmoke:
    def test_probft_n500_sparse_trial_decides(self):
        """One ProBFT n=500 sparse trial completes and decides (CI budget)."""
        cell = MatrixCell(
            protocol="probft",
            adversary="none",
            latency="constant",
            n=500,
            f=99,
            track_bytes=False,
        )
        spec = cell_deployment_spec(cell, seed=7, max_time=300.0)
        result = run_trial(spec.with_sparse())
        assert result.all_decided
        assert result.agreement_ok
