"""Matrix-coverage audit: no unsupported cells, and every named matrix runs.

The cross-protocol comparison only means something if every protocol faces
the same adversaries, so this suite pins two completeness properties:

* the full protocols × adversaries × latencies cross product resolves in
  the Byzantine behavior registry — ``cells(supported_only=False)`` yields
  **zero** unsupported cells;
* every named matrix executes: one smoke trial per (deduplicated) cell at
  n=8 reaches agreement.
"""

from __future__ import annotations

import itertools

import pytest

from repro.adversary.registry import (
    behavior_for,
    behavior_supported,
    byzantine_map_for,
    list_behaviors,
)
from repro.config import ProtocolConfig
from repro.harness.parallel import TrialSpec, derive_seed
from repro.harness.registry import (
    ADVERSARIES,
    LATENCIES,
    MATRICES,
    PROTOCOLS,
    ScenarioMatrix,
    run_matrix_cell,
)

#: One smoke trial per unique cell; small n keeps the audit in seconds.
_SMOKE_N = 8
_SMOKE_SEED = 11
_SMOKE_MAX_TIME = 5000.0


def _unique_smoke_cells():
    """Every named matrix's cells at n=8, deduplicated across matrices."""
    seen = {}
    for name in sorted(MATRICES):
        for cell in MATRICES[name].with_size(_SMOKE_N).cells(
            supported_only=False
        ):
            key = (cell.protocol, cell.adversary, cell.latency, cell.track_bytes)
            seen.setdefault(key, (name, cell))
    return list(seen.values())


class TestBehaviorRegistryCompleteness:
    def test_full_cross_product_has_no_unsupported_cells(self):
        matrix = ScenarioMatrix(
            name="audit",
            protocols=PROTOCOLS,
            adversaries=ADVERSARIES,
            latencies=LATENCIES,
        )
        cells = matrix.cells(supported_only=False)
        assert len(cells) == len(PROTOCOLS) * len(ADVERSARIES) * len(LATENCIES)
        unsupported = [c.label for c in cells if not c.supported]
        assert unsupported == []
        assert matrix.cells(supported_only=True) == cells

    def test_every_adversary_resolves_for_every_protocol(self):
        for protocol, adversary in itertools.product(PROTOCOLS, ADVERSARIES):
            assert behavior_supported(adversary, protocol)
            behavior = behavior_for(adversary, protocol)
            assert behavior.adversary == adversary
            assert behavior.protocol in (None, protocol)

    def test_byzantine_maps_respect_fault_threshold(self):
        config = ProtocolConfig(n=10, f=3)
        for protocol, adversary in itertools.product(PROTOCOLS, ADVERSARIES):
            byzantine = byzantine_map_for(adversary, protocol, config)
            assert len(byzantine) <= config.f, (protocol, adversary)
            assert all(0 <= r < config.n for r in byzantine)

    def test_forgery_behaviors_are_protocol_specific(self):
        """Equivocation/flooding dispatch to per-protocol entries, never to
        a wildcard — each attack speaks its target's message dialect."""
        for protocol in PROTOCOLS:
            for adversary in ("equivocation", "flooding"):
                assert behavior_for(adversary, protocol).protocol == protocol

    def test_unknown_combination_reported_clearly(self):
        assert not behavior_supported("time-travel", "pbft")
        with pytest.raises(KeyError, match="time-travel"):
            behavior_for("time-travel", "pbft")

    def test_behavior_listing_covers_canonical_adversaries(self):
        adversaries = {a for a, _p in list_behaviors()}
        assert set(ADVERSARIES) <= adversaries


class TestNamedMatrixSmoke:
    def test_named_matrices_have_no_unsupported_cells(self):
        for name, matrix in MATRICES.items():
            cells = matrix.cells(supported_only=False)
            assert all(c.supported for c in cells), name

    @pytest.mark.parametrize(
        "matrix_name,cell",
        [
            pytest.param(name, cell, id=f"{name}:{cell.label}")
            for name, cell in _unique_smoke_cells()
        ],
    )
    def test_one_smoke_trial_per_cell(self, matrix_name, cell):
        """Each unique named-matrix cell runs one seeded trial green."""
        spec = TrialSpec(
            index=0,
            seed=derive_seed(_SMOKE_SEED, 0),
            params=(cell, _SMOKE_MAX_TIME),
        )
        row = run_matrix_cell(spec)
        assert row["agreement_ok"], cell.label
        assert row["decided"] == row["n_correct"], cell.label
        if cell.track_bytes:
            assert row["total_bytes"] > 0
        else:
            assert row["total_bytes"] == 0
