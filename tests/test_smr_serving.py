"""Tests for the closed-loop SMR serving benchmark layer.

Covers the :mod:`repro.smr.workload` surface: workload/spec validation,
golden-seed determinism (in-process and across engine backends), the
adversary × load scenario cells, the batching throughput claim, and
log/snapshot consistency under Byzantine leaders at load.
"""

import pytest

from repro.config import ProtocolConfig
from repro.harness.parallel import ExperimentEngine
from repro.smr.app import CounterApp
from repro.smr.service import SMRDeployment
from repro.smr.workload import (
    LOAD_LEVELS,
    SERVING_ADVERSARIES,
    ServingSpec,
    WorkloadGenerator,
    WorkloadSpec,
    build_serving_deployment,
    run_serving_trial,
    run_serving_trial_spec,
    serving_cells,
    serving_trials,
)
from repro.smr.workload import (
    _equivocating_slot_factory,
    _flooding_slot_factory,
)

# A small spec that still exercises batching, pipelining, and the closed
# loop, but completes in well under a second.
SMALL = dict(num_clients=6, requests_per_client=3, max_time=5_000.0)


class TestWorkloadSpec:
    def test_total_requests(self):
        spec = WorkloadSpec(num_clients=5, requests_per_client=3)
        assert spec.total_requests == 15

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_clients": 0},
            {"requests_per_client": 0},
            {"think_time": -1.0},
            {"window": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)


class TestServingSpec:
    def test_unknown_adversary_rejected(self):
        with pytest.raises(ValueError):
            ServingSpec(adversary="gaslighting")

    def test_unknown_load_rejected(self):
        with pytest.raises(ValueError):
            ServingSpec(load="ludicrous")

    def test_load_preset_with_overrides(self):
        spec = ServingSpec(load="low", num_clients=3)
        workload = spec.workload()
        assert workload.num_clients == 3  # explicit override wins
        assert workload.think_time == LOAD_LEVELS["low"]["think_time"]

    def test_slot_budget_covers_workload(self):
        spec = ServingSpec(**SMALL)
        assert spec.slots() > spec.workload().total_requests
        assert ServingSpec(num_slots=7).slots() == 7

    def test_adversary_registry_shape(self):
        assert SERVING_ADVERSARIES["none"] is None
        assert SERVING_ADVERSARIES["equivocating-leader"][0] == 0
        assert SERVING_ADVERSARIES["flooding"][0] == 1


class TestWorkloadGenerator:
    def test_closed_loop_completes_all_requests(self):
        spec = ServingSpec(**SMALL)
        deployment = build_serving_deployment(spec)
        generator = WorkloadGenerator(deployment, spec.workload(), seed=0)
        generator.run(max_time=spec.max_time)
        assert generator.done()
        assert generator.completed == spec.workload().total_requests
        assert deployment.logs_consistent()
        for record in generator.records:
            assert record.completed
            assert record.latency > 0
            assert len(record.acked_by) >= deployment.config.f + 1

    def test_unique_request_identities(self):
        spec = ServingSpec(**SMALL)
        deployment = build_serving_deployment(spec)
        generator = WorkloadGenerator(deployment, spec.workload(), seed=0)
        generator.run(max_time=spec.max_time)
        ids = [(r.client_id, r.seq) for r in generator.records]
        assert len(ids) == len(set(ids))

    def test_backpressure_surfaces_as_retries(self):
        # A one-deep queue against an eager 2-window population must refuse
        # some submissions; the closed loop retries them to completion.
        spec = ServingSpec(
            num_clients=8,
            requests_per_client=2,
            think_time=0.0,
            window=2,
            retry_backoff=0.5,
            max_pending=1,
            batch_size=1,
            pipeline=1,
            max_time=10_000.0,
        )
        deployment = build_serving_deployment(spec)
        generator = WorkloadGenerator(deployment, spec.workload(), seed=0)
        generator.run(max_time=spec.max_time)
        assert generator.done()
        assert generator.retries > 0

    def test_accumulator_counts_unissued_as_incomplete(self):
        spec = ServingSpec(**SMALL)
        deployment = build_serving_deployment(spec)
        generator = WorkloadGenerator(deployment, spec.workload(), seed=0)
        # Never run: nothing issued, everything incomplete.
        acc = generator.latency_accumulator()
        assert acc.completed == 0
        assert acc.incomplete == spec.workload().total_requests
        assert acc.mean is None


class TestGoldenSeedDeterminism:
    def test_same_spec_same_latencies(self):
        spec = ServingSpec(**SMALL)
        first = run_serving_trial(spec)
        second = run_serving_trial(spec)
        assert first.latencies == second.latencies
        assert first.row() == second.row()

    def test_different_seed_different_latencies(self):
        base = ServingSpec(**SMALL)
        other = ServingSpec(seed=1, **SMALL)
        assert run_serving_trial(base).latencies != run_serving_trial(other).latencies

    def test_backends_agree(self):
        """The golden witness is bit-identical across engine backends."""
        trials = serving_trials(
            [ServingSpec(**SMALL), ServingSpec(seed=1, **SMALL)]
        )
        serial = ExperimentEngine(workers=0).map(run_serving_trial_spec, trials)
        pool = ExperimentEngine(workers=2)
        try:
            pooled = pool.map(run_serving_trial_spec, trials)
        finally:
            pool.close()
        for a, b in zip(serial, pooled):
            assert a.latencies == b.latencies
            assert a.row() == b.row()


class TestServingCells:
    def test_matrix_shape(self):
        cells = serving_cells()
        assert len(cells) == len(SERVING_ADVERSARIES) * len(LOAD_LEVELS)
        assert {c.adversary for c in cells} == set(SERVING_ADVERSARIES)
        assert {c.load for c in cells} == set(LOAD_LEVELS)

    @pytest.mark.parametrize("adversary", sorted(SERVING_ADVERSARIES))
    def test_cell_serves_under_adversary(self, adversary):
        spec = ServingSpec(adversary=adversary, **SMALL)
        result = run_serving_trial(spec)
        assert result.completed > 0
        assert result.throughput > 0
        assert result.logs_consistent
        assert result.mean_latency is not None

    def test_flooding_matches_no_fault_latency(self):
        """Flooded junk is rejected wholesale: the honest quorum path is
        untouched, so the latency profile matches the no-fault cell."""
        quiet = run_serving_trial(ServingSpec(**SMALL))
        noisy = run_serving_trial(ServingSpec(adversary="flooding", **SMALL))
        assert noisy.latencies == quiet.latencies

    def test_equivocation_costs_latency(self):
        honest = run_serving_trial(ServingSpec(**SMALL))
        attacked = run_serving_trial(
            ServingSpec(adversary="equivocating-leader", **SMALL)
        )
        assert attacked.completed > 0
        assert attacked.p99_latency > honest.p99_latency


class TestBatchingThroughput:
    def test_batching_beats_unbatched_pipeline_one(self):
        load = dict(num_clients=12, requests_per_client=3, max_time=20_000.0)
        batched = run_serving_trial(
            ServingSpec(batch_size=8, pipeline=4, **load)
        )
        unbatched = run_serving_trial(
            ServingSpec(batch_size=1, pipeline=1, **load)
        )
        assert batched.completed == unbatched.completed
        assert batched.throughput > unbatched.throughput


class TestByzantineConsistencyAtLoad:
    """Satellite: logs and snapshots stay consistent under equivocating and
    flooding leaders.  Uses small eager deployments driven to
    ``all_applied`` so every replica's state machine is drained before the
    snapshot comparison."""

    def run_deployment(self, factory, replica_id):
        cfg = ProtocolConfig(n=9, f=2)
        dep = SMRDeployment(
            cfg,
            CounterApp,
            num_slots=3,
            seed=13,
            byzantine_factories={replica_id: factory},
            batch_size=2,
        )
        for i in range(4):
            dep.submit_to_all(b"ADD:%d" % (i + 1))
        dep.run(max_time=50_000)
        return dep

    def test_equivocating_leader_consistency(self):
        dep = self.run_deployment(_equivocating_slot_factory, 0)
        assert dep.all_applied()
        assert dep.logs_consistent()
        assert dep.snapshots_consistent()

    def test_flooding_consistency(self):
        dep = self.run_deployment(_flooding_slot_factory, 1)
        assert dep.all_applied()
        assert dep.logs_consistent()
        assert dep.snapshots_consistent()
        # The flooder contributed nothing: honest state is the sum applied.
        honest = [s for r, s in dep.snapshots().items() if r != 1]
        assert all(s == sum(range(1, 5)) for s in honest)
