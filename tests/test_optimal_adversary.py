"""Tests for the leader-strategy exploration (Theorems 5/6 numerically)."""

import pytest

from repro.analysis.optimal_adversary import (
    asymmetric_split_violation,
    even_split_violation,
    group_decide_probability,
    strategy_comparison,
    violation_probability_for_split,
    withholding_violation,
)

N, F, O = 100, 20, 1.7


class TestGroupDecideProbability:
    def test_monotone_in_group_size(self):
        """Theorem 6: more senders, higher quorum probability."""
        values = [
            group_decide_probability(N, F, O, 2.0, size)
            for size in (10, 20, 30, 40)
        ]
        assert values == sorted(values)

    def test_empty_group(self):
        assert group_decide_probability(N, F, O, 2.0, 0) == 0.0

    def test_bounded(self):
        p = group_decide_probability(N, F, O, 2.0, 40)
        assert 0.0 <= p <= 1.0


class TestSplitViolations:
    def test_two_way_beats_three_way(self):
        """Theorem 5: merging groups increases violation probability."""
        assert even_split_violation(N, F, O, 2.0, 2) > even_split_violation(
            N, F, O, 2.0, 3
        )

    def test_k_way_monotone_decreasing(self):
        values = [even_split_violation(N, F, O, 2.0, k) for k in (2, 3, 4, 5)]
        assert values == sorted(values, reverse=True)

    def test_balanced_split_optimal(self):
        balanced = asymmetric_split_violation(N, F, O, 2.0, 0.5)
        for fraction in (0.6, 0.7, 0.8, 0.9):
            assert balanced >= asymmetric_split_violation(N, F, O, 2.0, fraction)

    def test_withholding_hurts_adversary(self):
        full = even_split_violation(N, F, O, 2.0, 2)
        for omitted in (8, 16, 24):
            assert withholding_violation(N, F, O, 2.0, omitted) < full

    def test_optimal_tops_strategy_comparison(self):
        rows = strategy_comparison(N, F, O)
        assert rows[0][0].startswith("2-way even")
        probs = [p for _name, p in rows]
        assert probs == sorted(probs, reverse=True)

    def test_invalid_splits_rejected(self):
        with pytest.raises(ValueError):
            violation_probability_for_split(N, F, O, 2.0, [80])
        with pytest.raises(ValueError):
            violation_probability_for_split(N, F, O, 2.0, [50, 50])  # > n-f
        with pytest.raises(ValueError):
            asymmetric_split_violation(N, F, O, 2.0, 1.5)
        with pytest.raises(ValueError):
            withholding_violation(N, F, O, 2.0, 79)

    def test_consistent_with_agreement_module(self):
        """The 2-way even split must match agreement.violation_exact_pair."""
        from repro.analysis.agreement import violation_exact_pair

        ours = even_split_violation(N, F, O, 2.0, 2)
        theirs = violation_exact_pair(N, F, O, 2.0)
        assert ours == pytest.approx(theirs, rel=1e-9)
