"""Tests for repro.crypto.keys and repro.crypto.signatures."""

import pytest

from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.signatures import SignatureScheme
from repro.errors import SignatureError, UnknownReplicaError


class TestKeyRegistry:
    def test_deterministic_derivation(self):
        r1 = KeyRegistry(5, master_seed=b"seed")
        r2 = KeyRegistry(5, master_seed=b"seed")
        for i in range(5):
            assert r1.key_pair(i) == r2.key_pair(i)

    def test_different_seeds_different_keys(self):
        r1 = KeyRegistry(5, master_seed=b"a")
        r2 = KeyRegistry(5, master_seed=b"b")
        assert r1.key_pair(0) != r2.key_pair(0)

    def test_all_keys_distinct(self):
        reg = KeyRegistry(50)
        privates = {reg.key_pair(i).private_key for i in range(50)}
        publics = {reg.key_pair(i).public_key for i in range(50)}
        assert len(privates) == 50
        assert len(publics) == 50

    def test_unknown_replica(self):
        reg = KeyRegistry(5)
        with pytest.raises(UnknownReplicaError):
            reg.key_pair(7)

    def test_resolve_public(self):
        reg = KeyRegistry(5)
        pair = reg.key_pair(3)
        assert reg.resolve_public(pair.public_key).replica == 3
        with pytest.raises(UnknownReplicaError):
            reg.resolve_public(b"\x00" * 32)

    def test_public_keys_bulk(self):
        reg = KeyRegistry(5)
        keys = reg.public_keys([0, 2])
        assert set(keys) == {0, 2}

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            KeyRegistry(0)


class TestSignatures:
    @pytest.fixture
    def scheme(self):
        return SignatureScheme(KeyRegistry(10))

    def test_sign_verify_roundtrip(self, scheme):
        signed = scheme.sign(2, ("hello", 42))
        assert scheme.verify(signed)

    def test_tampered_payload_rejected(self, scheme):
        from dataclasses import replace

        signed = scheme.sign(2, ("hello", 42))
        forged = replace(signed, payload=("hello", 43))
        assert not scheme.verify(forged)

    def test_wrong_signer_claim_rejected(self, scheme):
        from dataclasses import replace

        signed = scheme.sign(2, "msg")
        forged = replace(signed, signer=3)
        assert not scheme.verify(forged)

    def test_forging_with_wrong_key_fails(self, scheme):
        # Adversary holds replica 5's key but claims to be replica 2.
        registry = KeyRegistry(10)
        stolen = registry.key_pair(5).private_key
        forged = scheme.sign_with(stolen, 2, "msg")
        assert not scheme.verify(forged)

    def test_unknown_signer_rejected(self, scheme):
        from dataclasses import replace

        signed = scheme.sign(2, "msg")
        forged = replace(signed, signer=99)
        assert not scheme.verify(forged)

    def test_require_valid_raises(self, scheme):
        from dataclasses import replace

        signed = scheme.sign(1, "x")
        scheme.require_valid(signed)  # no raise
        with pytest.raises(SignatureError):
            scheme.require_valid(replace(signed, payload="y"))

    def test_signatures_differ_per_signer(self, scheme):
        assert scheme.sign(1, "x").signature != scheme.sign(2, "x").signature

    def test_signatures_differ_per_payload(self, scheme):
        assert scheme.sign(1, "x").signature != scheme.sign(1, "y").signature

    def test_signed_is_canonically_encodable(self, scheme):
        from repro.crypto.hashing import stable_encode

        signed = scheme.sign(1, ("a", 1))
        assert stable_encode(signed) == stable_encode(scheme.sign(1, ("a", 1)))
