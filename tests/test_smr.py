"""Tests for the SMR extension (multi-slot replication)."""

import pytest

from repro.config import ProtocolConfig
from repro.smr.app import NOOP, CounterApp, KeyValueApp
from repro.smr.log import DecisionLog
from repro.smr.service import SMRDeployment


class TestApps:
    def test_counter_operations(self):
        app = CounterApp()
        assert app.apply(b"INC") == b"1"
        assert app.apply(b"ADD:10") == b"11"
        assert app.apply(b"DEC") == b"10"
        assert app.snapshot() == 10

    def test_counter_rejects_garbage(self):
        app = CounterApp()
        assert app.apply(b"FLY") == b"error:unknown-command"
        assert app.apply(b"ADD:xyz") == b"error:bad-operand"
        assert app.snapshot() == 0

    def test_counter_noop(self):
        app = CounterApp()
        assert app.apply(NOOP) == b"ok"
        assert app.snapshot() == 0

    def test_kv_operations(self):
        app = KeyValueApp()
        assert app.apply(b"SET k v") == b"ok"
        assert app.apply(b"SET k2 v2") == b"ok"
        assert app.apply(b"DEL k") == b"ok"
        assert app.apply(b"DEL k") == b"missing"
        assert app.snapshot() == ((b"k2", b"v2"),)

    def test_kv_rejects_garbage(self):
        app = KeyValueApp()
        assert app.apply(b"SET too many parts here") == b"error:unknown-command"

    def test_determinism(self):
        cmds = [b"INC", b"ADD:5", b"DEC", NOOP, b"INC"]
        a, b = CounterApp(), CounterApp()
        for c in cmds:
            a.apply(c)
            b.apply(c)
        assert a.snapshot() == b.snapshot()


class TestDecisionLog:
    def test_in_order_application(self):
        log = DecisionLog(CounterApp())
        assert log.record(1, b"INC") == [1]
        assert log.record(2, b"INC") == [2]
        assert log.applied_up_to == 2
        assert log.app.snapshot() == 2

    def test_out_of_order_buffered(self):
        log = DecisionLog(CounterApp())
        assert log.record(3, b"INC") == []
        assert log.record(2, b"ADD:10") == []
        assert log.applied_up_to == 0
        assert log.record(1, b"INC") == [1, 2, 3]
        assert log.app.snapshot() == 12

    def test_duplicate_same_value_noop(self):
        log = DecisionLog(CounterApp())
        log.record(1, b"INC")
        assert log.record(1, b"INC") == []
        assert log.app.snapshot() == 1

    def test_conflicting_decision_raises(self):
        log = DecisionLog(CounterApp())
        log.record(1, b"INC")
        with pytest.raises(RuntimeError):
            log.record(1, b"DEC")

    def test_result_tracking(self):
        log = DecisionLog(CounterApp())
        log.record(1, b"ADD:7")
        assert log.result_of(1) == b"7"
        assert log.result_of(2) is None

    def test_invalid_slot(self):
        log = DecisionLog(CounterApp())
        with pytest.raises(ValueError):
            log.record(0, b"INC")


class TestSMRIntegration:
    def test_counter_replication(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(cfg, CounterApp, num_slots=4, seed=1)
        for cmd in (b"INC", b"ADD:5", b"DEC"):
            dep.submit_to_all(cmd)
        dep.run(max_time=20_000)
        assert dep.all_applied()
        assert dep.logs_consistent()
        assert dep.snapshots_consistent()
        # All three commands plus a NOOP filler were ordered.
        snapshot = list(dep.snapshots().values())[0]
        assert snapshot == 5

    def test_kv_replication(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(cfg, KeyValueApp, num_slots=3, seed=2)
        dep.submit_to_all(b"SET a 1")
        dep.submit_to_all(b"SET b 2")
        dep.submit_to_all(b"DEL a")
        dep.run(max_time=20_000)
        assert dep.all_applied()
        assert dep.snapshots_consistent()
        assert list(dep.snapshots().values())[0] == ((b"b", b"2"),)

    def test_empty_workload_fills_with_noops(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(cfg, CounterApp, num_slots=2, seed=3)
        dep.run(max_time=20_000)
        assert dep.all_applied()
        for replica in dep.replicas.values():
            assert replica.log.value_of(1) == NOOP

    def test_silent_byzantine_members_tolerated(self):
        cfg = ProtocolConfig(n=10, f=2)
        dep = SMRDeployment(
            cfg, CounterApp, num_slots=3, seed=4, byzantine_ids=[8, 9]
        )
        dep.submit_to_all(b"INC")
        dep.run(max_time=40_000)
        assert dep.all_applied()
        assert dep.logs_consistent()

    def test_too_many_byzantine_rejected(self):
        with pytest.raises(ValueError):
            SMRDeployment(
                ProtocolConfig(n=7, f=2),
                CounterApp,
                num_slots=1,
                byzantine_ids=[4, 5, 6],
            )

    def test_slots_use_distinct_domains(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(cfg, CounterApp, num_slots=2, seed=5)
        dep.run(max_time=20_000)
        replica = dep.replicas[0]
        slot1 = replica.slot_replica(1)
        slot2 = replica.slot_replica(2)
        assert slot1.config.seed_domain == "slot-1"
        assert slot2.config.seed_domain == "slot-2"

    def test_smr_replica_rejects_pre_domained_config(self):
        from repro.smr.replica import SMRReplica

        cfg = ProtocolConfig(n=7, f=2, seed_domain="oops")
        with pytest.raises(ValueError):
            SMRReplica(0, cfg, None, None, CounterApp(), num_slots=1)

    def test_linearized_order_identical_across_replicas(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(cfg, CounterApp, num_slots=5, seed=6)
        for i in range(4):
            dep.submit_to_all(b"ADD:%d" % i)
        dep.run(max_time=40_000)
        orders = {
            tuple(r.log.value_of(s) for s in range(1, 6))
            for r in dep.replicas.values()
        }
        assert len(orders) == 1


class TestPipelining:
    def test_pipelined_run_is_faster(self):
        from repro.smr.service import SMRDeployment as Dep

        cfg = ProtocolConfig(n=10, f=2)
        seq = Dep(cfg, CounterApp, num_slots=6, seed=1, pipeline=1)
        seq.submit_to_all(b"INC")
        seq.run(max_time=50_000)
        pipe = Dep(cfg, CounterApp, num_slots=6, seed=1, pipeline=4)
        pipe.submit_to_all(b"INC")
        pipe.run(max_time=50_000)
        assert pipe.sim.now < seq.sim.now
        assert pipe.all_applied() and pipe.logs_consistent()
        assert pipe.snapshots_consistent()

    def test_pipelined_state_matches_sequential(self):
        from repro.smr.service import SMRDeployment as Dep

        cfg = ProtocolConfig(n=7, f=2)
        results = []
        for pipeline in (1, 3):
            dep = Dep(cfg, CounterApp, num_slots=5, seed=2, pipeline=pipeline)
            for i in range(4):
                dep.submit_to_all(b"ADD:%d" % (i + 1))
            dep.run(max_time=50_000)
            assert dep.all_applied()
            results.append(list(dep.snapshots().values())[0])
        # Same commands applied -> same final counter regardless of pipelining.
        assert results[0] == results[1]

    def test_invalid_pipeline_rejected(self):
        from repro.smr.replica import SMRReplica

        with pytest.raises(ValueError):
            SMRReplica(
                0,
                ProtocolConfig(n=7, f=2),
                None,
                None,
                CounterApp(),
                num_slots=1,
                pipeline=0,
            )

    def test_pipeline_with_byzantine_members(self):
        from repro.smr.service import SMRDeployment as Dep

        cfg = ProtocolConfig(n=10, f=2)
        dep = Dep(
            cfg, CounterApp, num_slots=4, seed=3, pipeline=3,
            byzantine_ids=[8, 9],
        )
        dep.submit_to_all(b"INC")
        dep.run(max_time=50_000)
        assert dep.all_applied()
        assert dep.logs_consistent()
