"""Tests for the SMR extension (multi-slot replication)."""

import pytest

from repro.config import ProtocolConfig
from repro.smr.app import NOOP, CounterApp, KeyValueApp, StateMachine
from repro.smr.encoding import (
    commands_in,
    decode_batch,
    decode_request,
    encode_batch,
    encode_request,
    request_payload,
)
from repro.smr.log import DecisionLog
from repro.smr.service import SMRDeployment


class TestApps:
    def test_counter_operations(self):
        app = CounterApp()
        assert app.apply(b"INC") == b"1"
        assert app.apply(b"ADD:10") == b"11"
        assert app.apply(b"DEC") == b"10"
        assert app.snapshot() == 10

    def test_counter_rejects_garbage(self):
        app = CounterApp()
        assert app.apply(b"FLY") == b"error:unknown-command"
        assert app.apply(b"ADD:xyz") == b"error:bad-operand"
        assert app.snapshot() == 0

    def test_counter_noop(self):
        app = CounterApp()
        assert app.apply(NOOP) == b"ok"
        assert app.snapshot() == 0

    def test_kv_operations(self):
        app = KeyValueApp()
        assert app.apply(b"SET k v") == b"ok"
        assert app.apply(b"SET k2 v2") == b"ok"
        assert app.apply(b"DEL k") == b"ok"
        assert app.apply(b"DEL k") == b"missing"
        assert app.snapshot() == ((b"k2", b"v2"),)

    def test_kv_rejects_garbage(self):
        app = KeyValueApp()
        assert app.apply(b"SET too many parts here") == b"error:unknown-command"

    def test_determinism(self):
        cmds = [b"INC", b"ADD:5", b"DEC", NOOP, b"INC"]
        a, b = CounterApp(), CounterApp()
        for c in cmds:
            a.apply(c)
            b.apply(c)
        assert a.snapshot() == b.snapshot()


class TestDecisionLog:
    def test_in_order_application(self):
        log = DecisionLog(CounterApp())
        assert log.record(1, b"INC") == [1]
        assert log.record(2, b"INC") == [2]
        assert log.applied_up_to == 2
        assert log.app.snapshot() == 2

    def test_out_of_order_buffered(self):
        log = DecisionLog(CounterApp())
        assert log.record(3, b"INC") == []
        assert log.record(2, b"ADD:10") == []
        assert log.applied_up_to == 0
        assert log.record(1, b"INC") == [1, 2, 3]
        assert log.app.snapshot() == 12

    def test_duplicate_same_value_noop(self):
        log = DecisionLog(CounterApp())
        log.record(1, b"INC")
        assert log.record(1, b"INC") == []
        assert log.app.snapshot() == 1

    def test_conflicting_decision_raises(self):
        log = DecisionLog(CounterApp())
        log.record(1, b"INC")
        with pytest.raises(RuntimeError):
            log.record(1, b"DEC")

    def test_result_tracking(self):
        log = DecisionLog(CounterApp())
        log.record(1, b"ADD:7")
        assert log.result_of(1) == b"7"
        assert log.result_of(2) is None

    def test_invalid_slot(self):
        log = DecisionLog(CounterApp())
        with pytest.raises(ValueError):
            log.record(0, b"INC")


class TestEncoding:
    def test_request_roundtrip(self):
        value = encode_request(12, 345, b"ADD:7")
        assert decode_request(value) == (12, 345, b"ADD:7")
        assert request_payload(value) == b"ADD:7"

    def test_bare_commands_pass_through(self):
        assert decode_request(b"INC") is None
        assert request_payload(b"INC") == b"INC"
        assert decode_request(NOOP) is None
        assert commands_in(b"INC") == [b"INC"]

    def test_equal_payloads_distinct_requests(self):
        a = encode_request(1, 1, b"INC")
        b = encode_request(2, 1, b"INC")
        c = encode_request(1, 2, b"INC")
        assert len({a, b, c}) == 3
        assert request_payload(a) == request_payload(b) == b"INC"

    def test_batch_roundtrip(self):
        commands = [b"INC", encode_request(3, 9, b"DEC"), b"ADD:5"]
        batch = encode_batch(commands)
        assert decode_batch(batch) == commands
        assert commands_in(batch) == commands

    def test_single_command_batch_is_bare(self):
        # Keeps logs identical whether batching is on or off when a slot
        # happens to order exactly one command.
        assert encode_batch([b"INC"]) == b"INC"

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            encode_batch([])

    def test_malformed_frames_degrade_to_opaque(self):
        from repro.smr.encoding import BATCH_PREFIX, REQUEST_PREFIX

        assert decode_request(REQUEST_PREFIX + b"\xff") is None
        assert decode_batch(BATCH_PREFIX + b"\x01\x05") is None
        # Trailing garbage after a well-formed batch is rejected too.
        batch = encode_batch([b"a", b"b"])
        assert decode_batch(batch + b"junk") is None
        assert commands_in(batch + b"junk") == [batch + b"junk"]

    def test_large_ids(self):
        value = encode_request(2**40, 2**33, b"x")
        assert decode_request(value) == (2**40, 2**33, b"x")


class _ScrambledKV(KeyValueApp):
    """KeyValueApp whose snapshot is an insertion-ordered dict — equal
    contents, different iteration order (and therefore different repr)."""

    def __init__(self, items):
        super().__init__()
        self._seed_items = items
        for k, v in items:
            self.apply(b"SET " + k + b" " + v)

    def snapshot(self):
        return {k: v for k, v in self._seed_items}


class TestSnapshotComparison:
    def test_order_scrambled_snapshots_compare_equal(self):
        """Regression: repr-based comparison false-negatived on equal dicts
        with different insertion order; stable_encode does not."""
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(cfg, KeyValueApp, num_slots=1, seed=9)
        items = [(b"a", b"1"), (b"b", b"2"), (b"c", b"3")]
        for r in dep.replicas:
            ordering = items if r % 2 == 0 else list(reversed(items))
            dep.replicas[r].log._app = _ScrambledKV(ordering)
        snapshots = dep.snapshots()
        assert repr(snapshots[0]) != repr(snapshots[1])  # the old trap
        assert dep.snapshots_consistent()

    def test_genuinely_different_snapshots_detected(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(cfg, KeyValueApp, num_slots=1, seed=9)
        dep.replicas[0].log._app = _ScrambledKV([(b"a", b"1")])
        dep.replicas[1].log._app = _ScrambledKV([(b"a", b"2")])
        assert not dep.snapshots_consistent()


class TestSMRIntegration:
    def test_counter_replication(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(cfg, CounterApp, num_slots=4, seed=1)
        for cmd in (b"INC", b"ADD:5", b"DEC"):
            dep.submit_to_all(cmd)
        dep.run(max_time=20_000)
        assert dep.all_applied()
        assert dep.logs_consistent()
        assert dep.snapshots_consistent()
        # All three commands plus a NOOP filler were ordered.
        snapshot = list(dep.snapshots().values())[0]
        assert snapshot == 5

    def test_kv_replication(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(cfg, KeyValueApp, num_slots=3, seed=2)
        dep.submit_to_all(b"SET a 1")
        dep.submit_to_all(b"SET b 2")
        dep.submit_to_all(b"DEL a")
        dep.run(max_time=20_000)
        assert dep.all_applied()
        assert dep.snapshots_consistent()
        assert list(dep.snapshots().values())[0] == ((b"b", b"2"),)

    def test_empty_workload_fills_with_noops(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(cfg, CounterApp, num_slots=2, seed=3)
        dep.run(max_time=20_000)
        assert dep.all_applied()
        for replica in dep.replicas.values():
            assert replica.log.value_of(1) == NOOP

    def test_silent_byzantine_members_tolerated(self):
        cfg = ProtocolConfig(n=10, f=2)
        dep = SMRDeployment(
            cfg, CounterApp, num_slots=3, seed=4, byzantine_ids=[8, 9]
        )
        dep.submit_to_all(b"INC")
        dep.run(max_time=40_000)
        assert dep.all_applied()
        assert dep.logs_consistent()

    def test_too_many_byzantine_rejected(self):
        with pytest.raises(ValueError):
            SMRDeployment(
                ProtocolConfig(n=7, f=2),
                CounterApp,
                num_slots=1,
                byzantine_ids=[4, 5, 6],
            )

    def test_slots_use_distinct_domains(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(cfg, CounterApp, num_slots=2, seed=5)
        dep.run(max_time=20_000)
        replica = dep.replicas[0]
        slot1 = replica.slot_replica(1)
        slot2 = replica.slot_replica(2)
        assert slot1.config.seed_domain == "slot-1"
        assert slot2.config.seed_domain == "slot-2"

    def test_smr_replica_rejects_pre_domained_config(self):
        from repro.smr.replica import SMRReplica

        cfg = ProtocolConfig(n=7, f=2, seed_domain="oops")
        with pytest.raises(ValueError):
            SMRReplica(0, cfg, None, None, CounterApp(), num_slots=1)

    def test_linearized_order_identical_across_replicas(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(cfg, CounterApp, num_slots=5, seed=6)
        for i in range(4):
            dep.submit_to_all(b"ADD:%d" % i)
        dep.run(max_time=40_000)
        orders = {
            tuple(r.log.value_of(s) for s in range(1, 6))
            for r in dep.replicas.values()
        }
        assert len(orders) == 1


class TestPipelining:
    def test_pipelined_run_is_faster(self):
        from repro.smr.service import SMRDeployment as Dep

        cfg = ProtocolConfig(n=10, f=2)
        seq = Dep(cfg, CounterApp, num_slots=6, seed=1, pipeline=1)
        seq.submit_to_all(b"INC")
        seq.run(max_time=50_000)
        pipe = Dep(cfg, CounterApp, num_slots=6, seed=1, pipeline=4)
        pipe.submit_to_all(b"INC")
        pipe.run(max_time=50_000)
        assert pipe.sim.now < seq.sim.now
        assert pipe.all_applied() and pipe.logs_consistent()
        assert pipe.snapshots_consistent()

    def test_pipelined_state_matches_sequential(self):
        from repro.smr.service import SMRDeployment as Dep

        cfg = ProtocolConfig(n=7, f=2)
        results = []
        for pipeline in (1, 3):
            dep = Dep(cfg, CounterApp, num_slots=5, seed=2, pipeline=pipeline)
            for i in range(4):
                dep.submit_to_all(b"ADD:%d" % (i + 1))
            dep.run(max_time=50_000)
            assert dep.all_applied()
            results.append(list(dep.snapshots().values())[0])
        # Same commands applied -> same final counter regardless of pipelining.
        assert results[0] == results[1]

    def test_invalid_pipeline_rejected(self):
        from repro.smr.replica import SMRReplica

        with pytest.raises(ValueError):
            SMRReplica(
                0,
                ProtocolConfig(n=7, f=2),
                None,
                None,
                CounterApp(),
                num_slots=1,
                pipeline=0,
            )

    def test_pipeline_with_byzantine_members(self):
        from repro.smr.service import SMRDeployment as Dep

        cfg = ProtocolConfig(n=10, f=2)
        dep = Dep(
            cfg, CounterApp, num_slots=4, seed=3, pipeline=3,
            byzantine_ids=[8, 9],
        )
        dep.submit_to_all(b"INC")
        dep.run(max_time=50_000)
        assert dep.all_applied()
        assert dep.logs_consistent()


class TestBatching:
    def commands(self, count=6):
        return [b"ADD:%d" % (i + 1) for i in range(count)]

    def test_batched_run_orders_all_commands(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(
            cfg, CounterApp, num_slots=3, seed=4, batch_size=4
        )
        for cmd in self.commands(8):
            dep.submit_to_all(cmd)
        dep.run(max_time=20_000)
        assert dep.all_applied()
        assert dep.logs_consistent() and dep.snapshots_consistent()
        assert list(dep.snapshots().values())[0] == sum(range(1, 9))

    def test_batched_commands_match_unbatched(self):
        """Batching changes slot packing, never the applied command stream:
        the flattened per-command sequence (and final state) is the same
        multiset on a small deployment whether batching is on or off."""
        cfg = ProtocolConfig(n=7, f=2)
        states, streams = [], []
        for batch_size, slots in ((1, 8), (4, 3)):
            dep = SMRDeployment(
                cfg, CounterApp, num_slots=slots, seed=5, batch_size=batch_size
            )
            for cmd in self.commands(6):
                dep.submit_to_all(cmd)
            dep.run(max_time=20_000)
            assert dep.all_applied()
            replica = dep.replicas[0]
            flattened = [
                cmd
                for s in range(1, slots + 1)
                for cmd in replica.log.commands_of(s)
                if cmd != NOOP
            ]
            streams.append(sorted(flattened))
            states.append(list(dep.snapshots().values())[0])
        assert streams[0] == streams[1]
        assert states[0] == states[1]

    def test_batch_applies_element_wise(self):
        log = DecisionLog(CounterApp())
        batch = encode_batch([b"INC", b"ADD:10", b"DEC"])
        assert log.record(1, batch) == [1]
        assert log.app.snapshot() == 10
        assert log.commands_of(1) == (b"INC", b"ADD:10", b"DEC")
        assert log.results_of(1) == (b"1", b"11", b"10")
        assert log.result_of(1) == b"10"  # last command's result

    def test_batch_strips_request_envelopes(self):
        log = DecisionLog(CounterApp())
        batch = encode_batch(
            [encode_request(1, 1, b"INC"), encode_request(2, 1, b"ADD:4")]
        )
        log.record(1, batch)
        assert log.app.snapshot() == 5

    def test_invalid_batch_size_rejected(self):
        from repro.smr.replica import SMRReplica

        with pytest.raises(ValueError):
            SMRReplica(
                0,
                ProtocolConfig(n=7, f=2),
                None,
                None,
                CounterApp(),
                num_slots=1,
                batch_size=0,
            )


class TestBackpressure:
    def test_submit_rejected_when_queue_full(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(
            cfg, CounterApp, num_slots=2, seed=6, max_pending=2
        )
        assert dep.submit_to_all(b"ADD:1")
        assert dep.submit_to_all(b"ADD:2")
        assert not dep.submit_to_all(b"ADD:3")  # wholesale rejection
        # Nothing was partially queued: every replica holds exactly 2.
        assert {
            r.pending_commands for r in dep.replicas.values()
        } == {2}
        assert all(r.rejected_submits == 1 for r in dep.replicas.values())

    def test_rejected_submission_can_retry_after_drain(self):
        cfg = ProtocolConfig(n=7, f=2)
        dep = SMRDeployment(
            cfg, CounterApp, num_slots=3, seed=6, max_pending=2
        )
        dep.submit_to_all(b"ADD:1")
        dep.submit_to_all(b"ADD:2")
        assert not dep.submit_to_all(b"ADD:3")
        dep.run(max_time=20_000)  # drains the queues
        assert dep.submit_to_all(b"ADD:3") or dep.all_applied()

    def test_invalid_max_pending_rejected(self):
        from repro.smr.replica import SMRReplica

        with pytest.raises(ValueError):
            SMRReplica(
                0,
                ProtocolConfig(n=7, f=2),
                None,
                None,
                CounterApp(),
                num_slots=1,
                max_pending=0,
            )
