"""Tests for quorum collectors."""

import pytest

from repro.errors import QuorumError
from repro.quorum.deterministic import DeterministicQuorumCollector
from repro.quorum.probabilistic import ProbabilisticQuorumCollector, QuorumCollector


class TestQuorumCollector:
    def test_fires_exactly_at_threshold(self):
        c = QuorumCollector(threshold=3)
        assert not c.add("k", 1, "a")
        assert not c.add("k", 2, "b")
        assert c.add("k", 3, "c")

    def test_fires_only_once(self):
        c = QuorumCollector(threshold=2)
        c.add("k", 1, "a")
        assert c.add("k", 2, "b")
        assert not c.add("k", 3, "c")
        assert c.has_quorum("k")

    def test_duplicate_senders_ignored(self):
        c = QuorumCollector(threshold=2)
        assert not c.add("k", 1, "a")
        assert not c.add("k", 1, "a2")
        assert not c.add("k", 1, "a3")
        assert c.count("k") == 1
        assert c.add("k", 2, "b")

    def test_keys_are_independent(self):
        c = QuorumCollector(threshold=2)
        c.add("k1", 1, "a")
        c.add("k2", 1, "a")
        assert c.count("k1") == 1
        assert c.count("k2") == 1
        assert not c.has_quorum("k1")

    def test_quorum_messages_returns_first_threshold(self):
        c = QuorumCollector(threshold=2)
        c.add("k", 1, "m1")
        c.add("k", 2, "m2")
        c.add("k", 3, "m3")
        assert c.quorum_messages("k") == ("m1", "m2")

    def test_quorum_messages_without_quorum_raises(self):
        c = QuorumCollector(threshold=5)
        c.add("k", 1, "m1")
        with pytest.raises(QuorumError):
            c.quorum_messages("k")

    def test_messages_in_arrival_order(self):
        c = QuorumCollector(threshold=10)
        for i in range(5):
            c.add("k", i, f"m{i}")
        assert c.messages("k") == tuple(f"m{i}" for i in range(5))

    def test_senders(self):
        c = QuorumCollector(threshold=3)
        c.add("k", 4, "a")
        c.add("k", 9, "b")
        assert c.senders("k") == {4, 9}

    def test_empty_key_queries(self):
        c = QuorumCollector(threshold=2)
        assert c.count("nope") == 0
        assert c.senders("nope") == set()
        assert c.messages("nope") == ()
        assert not c.has_quorum("nope")

    def test_clear(self):
        c = QuorumCollector(threshold=1)
        c.add("k", 1, "m")
        c.clear()
        assert c.count("k") == 0

    def test_invalid_threshold(self):
        with pytest.raises(QuorumError):
            QuorumCollector(threshold=0)

    def test_keys_listing(self):
        c = QuorumCollector(threshold=2)
        c.add("a", 1, "m")
        c.add("b", 1, "m")
        assert set(c.keys()) == {"a", "b"}


class TestDeterministicQuorumCollector:
    def test_threshold_is_paper_formula(self):
        c = DeterministicQuorumCollector(n=100, f=33)
        assert c.threshold == 67
        assert c.n == 100 and c.f == 33

    def test_small_system(self):
        c = DeterministicQuorumCollector(n=4, f=1)
        assert c.threshold == 3


class TestProbabilisticQuorumCollector:
    def test_is_a_quorum_collector(self):
        c = ProbabilisticQuorumCollector(5)
        assert isinstance(c, QuorumCollector)
        assert c.threshold == 5
