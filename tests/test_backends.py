"""Cross-backend bit-identity for the pluggable execution layer.

The seam's hard guarantee, pinned on golden seeds: **serial == pool ==
async == sharded** for

* raw trial-level results (map and stream),
* full-protocol :class:`RunResult` streams through the trial lifecycle,
* ``run_matrix`` reports and their per-cell accumulators (including
  accumulators assembled by sharded per-shard merging),
* the Monte-Carlo estimators' counts,

plus :class:`TrialError` propagation from every backend, the
Welford/StreamingProportion merge algebra, and the process pool's graceful
(close/join, not terminate) happy-path lifecycle.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.config import ProtocolConfig
from repro.harness.backends import (
    AsyncioBackend,
    BACKENDS,
    ProcessPoolBackend,
    SerialBackend,
    ShardedBackend,
    backend_from_env,
    list_backends,
    make_backend,
    resolve_workers,
)
from repro.harness.metrics import StreamingProportion, Welford
from repro.harness.parallel import (
    ExperimentEngine,
    TrialError,
    TrialSpec,
    derive_seed,
    resolve_engine,
)
from repro.harness.registry import (
    CellAccumulator,
    MatrixCell,
    ScenarioMatrix,
    run_matrix,
    run_matrix_cell,
)
from repro.harness.sweep import run_sweep
from repro.montecarlo.experiments import estimate_termination

BACKEND_NAMES = ("serial", "pool", "async", "sharded")

#: A tiny protocol-level matrix cell: full discrete-event simulation at n=6.
GOLDEN_CELL = MatrixCell(
    protocol="probft", adversary="silent", latency="constant", n=6, f=1
)

GOLDEN_MATRIX = ScenarioMatrix(
    name="backend-golden",
    protocols=("probft",),
    adversaries=("none", "silent"),
    latencies=("constant",),
    n=6,
)


# Module-level trial functions (pool/sharded backends pickle them).


def draw_trial(spec: TrialSpec) -> float:
    return float(np.random.default_rng(spec.seed).random())


def crash_on_three(spec: TrialSpec) -> int:
    if spec.index == 3:
        raise ValueError(f"boom at {spec.index}")
    return spec.index


def slow_trial(spec: TrialSpec) -> int:
    time.sleep(0.15)
    return spec.index


def fold_matrix_row(acc: CellAccumulator, row: dict) -> None:
    acc.add(row)


def make_golden_accumulator() -> CellAccumulator:
    return CellAccumulator(GOLDEN_CELL)


def cell_specs(trials: int, master_seed: int = 0, max_time: float = 500.0):
    return [
        TrialSpec(
            index=i,
            seed=derive_seed(master_seed, i),
            params=(GOLDEN_CELL, max_time),
        )
        for i in range(trials)
    ]


def backend_for(name: str):
    """A small two-worker instance of the named backend."""
    return make_backend(name, workers=2)


class TestRegistry:
    def test_names(self):
        assert list_backends() == list(BACKEND_NAMES)
        assert set(BACKENDS) == set(BACKEND_NAMES)

    def test_default_selection_follows_workers(self):
        assert isinstance(make_backend(None, workers=0), SerialBackend)
        assert isinstance(make_backend(None, workers=1), SerialBackend)
        assert isinstance(make_backend(None, workers=2), ProcessPoolBackend)

    def test_explicit_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("pool", workers=2), ProcessPoolBackend)
        assert isinstance(make_backend("async", workers=2), AsyncioBackend)
        assert isinstance(make_backend("sharded", workers=2), ShardedBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown backend"):
            make_backend("gpu")

    def test_auto_workers(self):
        import os

        assert resolve_workers("auto") == (os.cpu_count() or 1)
        assert resolve_workers("AUTO") == (os.cpu_count() or 1)
        assert resolve_workers(3) == 3
        assert resolve_workers("5") == 5
        with pytest.raises(ValueError):
            resolve_workers("many")

    def test_concurrent_backend_without_workers_saturates(self):
        import os

        backend = make_backend("pool", workers=0)
        assert backend.workers == (os.cpu_count() or 1)

    def test_backend_from_env(self, monkeypatch):
        monkeypatch.delenv("X_BACKEND", raising=False)
        assert backend_from_env("X_BACKEND") is None
        assert backend_from_env("X_BACKEND", default="pool") == "pool"
        monkeypatch.setenv("X_BACKEND", "Sharded")
        assert backend_from_env("X_BACKEND") == "sharded"
        monkeypatch.setenv("X_BACKEND", "quantum")
        assert backend_from_env("X_BACKEND", default="serial") == "serial"

    def test_engine_exposes_backend(self):
        engine = ExperimentEngine(workers=2, backend="sharded")
        assert engine.backend_name == "sharded"
        assert engine.parallel
        engine.close()
        # A constructed Backend instance passes through as-is.
        backend = SerialBackend()
        assert ExperimentEngine(backend=backend).backend is backend

    def test_resolve_engine_backend_passthrough(self):
        engine = resolve_engine(None, 2, backend="async")
        assert engine.backend_name == "async"
        engine.close()


class TestCrossBackendIdentity:
    """serial == pool == async == sharded, golden seeds, every surface."""

    def test_trial_level_map_and_stream(self):
        reference = SerialBackend().map(
            draw_trial, [TrialSpec(i, derive_seed(7, i)) for i in range(40)]
        )
        specs = [TrialSpec(i, derive_seed(7, i)) for i in range(40)]
        for name in BACKEND_NAMES:
            with backend_for(name) as backend:
                assert backend.map(draw_trial, list(specs)) == reference, name
                assert (
                    list(backend.stream(draw_trial, list(specs), count=40))
                    == reference
                ), name

    def test_run_result_streams_identical(self):
        """Full-protocol RunResult rows agree bit-for-bit per backend."""
        specs = cell_specs(trials=6, master_seed=2024)
        reference = SerialBackend().map(run_matrix_cell, list(specs))
        assert reference, "golden cell produced no rows"
        for name in BACKEND_NAMES:
            with backend_for(name) as backend:
                assert (
                    backend.map(run_matrix_cell, list(specs)) == reference
                ), name

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_run_matrix_report_identical(self, name):
        reference = run_matrix(GOLDEN_MATRIX, trials=3, master_seed=5)
        got = run_matrix(
            GOLDEN_MATRIX, trials=3, master_seed=5, workers=2, backend=name
        )
        assert got.rows == reference.rows

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_estimator_counts_identical(self, name):
        serial = estimate_termination(32, 6, 1.7, trials=40, seed=9)
        other = estimate_termination(
            32, 6, 1.7, trials=40, seed=9, workers=2, backend=name
        )
        assert {k: v.successes for k, v in serial.estimates.items()} == {
            k: v.successes for k, v in other.estimates.items()
        }
        assert serial.mean_prepared_fraction == other.mean_prepared_fraction

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_run_sweep_identical(self, name):
        reference = run_sweep({"n": [16, 25, 36]}, sweep_point_fn)
        got = run_sweep(
            {"n": [16, 25, 36]}, sweep_point_fn, workers=2, backend=name
        )
        assert got.rows == reference.rows

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_trial_error_propagation(self, name):
        """Every backend surfaces the first failing trial's identity."""
        engine = ExperimentEngine(workers=2, backend=name, chunk_size=1)
        with pytest.raises(TrialError) as exc_info:
            engine.run_trials(crash_on_three, 8, master_seed=2)
        err = exc_info.value
        assert err.index == 3
        assert err.seed == derive_seed(2, 3)
        assert "boom at 3" in str(err)
        assert "ValueError" in err.detail
        engine.abort()


def sweep_point_fn(point):
    return {"sqrt": point["n"] ** 0.5, "seeded": point.seed % 97}


class TestShardedMerge:
    """Per-shard accumulators merged in shard order == the streamed fold."""

    def test_merged_cell_accumulator_matches_streamed(self):
        specs = cell_specs(trials=10, master_seed=77)
        streamed = CellAccumulator(GOLDEN_CELL)
        for row in SerialBackend().map(run_matrix_cell, list(specs)):
            streamed.add(row)

        for inner_workers, shard_size in ((1, 3), (2, 4)):
            sharded = ShardedBackend(workers=inner_workers, shard_size=shard_size)
            merged = sharded.map_reduce(
                run_matrix_cell,
                list(specs),
                make_golden_accumulator,
                fold_matrix_row,
                count=len(specs),
            )
            sharded.close()
            assert merged.trials == streamed.trials
            # Constant-latency golden cells have exactly-representable
            # observations, so the merge is bit-identical, summary included.
            assert merged.summary() == streamed.summary()

    def test_manual_shard_merge_matches(self):
        """CellAccumulator.merge composes shard-local folds exactly."""
        specs = cell_specs(trials=9, master_seed=13)
        rows = SerialBackend().map(run_matrix_cell, list(specs))
        whole = CellAccumulator(GOLDEN_CELL)
        for row in rows:
            whole.add(row)
        merged = CellAccumulator(GOLDEN_CELL)
        for shard_start in range(0, len(rows), 4):
            shard_acc = CellAccumulator(GOLDEN_CELL)
            for row in rows[shard_start : shard_start + 4]:
                shard_acc.add(row)
            merged.merge(shard_acc)
        assert merged.summary() == whole.summary()

    def test_merge_rejects_cell_mismatch(self):
        other = MatrixCell(
            protocol="probft", adversary="none", latency="constant", n=6, f=1
        )
        with pytest.raises(ValueError, match="different cells"):
            CellAccumulator(GOLDEN_CELL).merge(CellAccumulator(other))

    def test_map_reduce_propagates_trial_error(self):
        specs = [TrialSpec(i, derive_seed(2, i)) for i in range(8)]
        sharded = ShardedBackend(workers=2, shard_size=2)
        with pytest.raises(TrialError) as exc_info:
            sharded.map_reduce(
                crash_on_three, specs, Welford, fold_value, count=8
            )
        assert exc_info.value.index == 3
        sharded.close()


def fold_value(acc: Welford, value) -> None:
    acc.add(float(value))


class TestMergeAlgebra:
    def test_welford_merge_exact_on_integers(self):
        values = [float(v) for v in [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]]
        whole = Welford().extend(values)
        for split in (1, 4, len(values)):
            left = Welford().extend(values[:split])
            right = Welford().extend(values[split:])
            merged = left.merge(right)
            assert merged.count == whole.count
            assert merged.total == whole.total
            assert merged.mean == whole.mean
            assert abs(merged.variance - whole.variance) < 1e-12

    def test_welford_merge_close_on_floats(self):
        rng = np.random.default_rng(42)
        values = list(rng.normal(1000.0, 0.001, size=64))
        whole = Welford().extend(values)
        merged = Welford().extend(values[:17]).merge(
            Welford().extend(values[17:])
        )
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
        assert merged.variance == pytest.approx(whole.variance, rel=1e-9)

    def test_welford_merge_empty_identities(self):
        base = Welford().extend([1.0, 2.0])
        assert base.merge(Welford()).count == 2
        empty = Welford()
        empty.merge(Welford().extend([1.0, 2.0]))
        assert empty.count == 2 and empty.mean == 1.5
        assert Welford().merge(Welford()).count == 0

    def test_streaming_proportion_merge(self):
        outcomes = [True, False, True, True, False, True, False]
        whole = StreamingProportion()
        for outcome in outcomes:
            whole.add(outcome)
        left, right = StreamingProportion(), StreamingProportion()
        for outcome in outcomes[:3]:
            left.add(outcome)
        for outcome in outcomes[3:]:
            right.add(outcome)
        left.merge(right)
        assert (left.successes, left.trials) == (whole.successes, whole.trials)
        assert left.interval == whole.interval


class TestWindowedStreams:
    """The bounded-window/cancellation contract behind adaptive early stop.

    ``stream(..., window=w)`` must (a) keep results bit-identical, (b) read
    at most about ``w`` specs ahead of the consumer, and (c) leave workers
    promptly reusable — and the pool clean for a *graceful* close — when
    the stream is dropped mid-iteration.
    """

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_windowed_results_identical(self, name):
        specs = [TrialSpec(i, derive_seed(7, i)) for i in range(40)]
        reference = SerialBackend().map(draw_trial, list(specs))
        with backend_for(name) as backend:
            got = list(backend.stream(draw_trial, list(specs), count=40, window=5))
        assert got == reference, name

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_windowed_engine_run_stream_identical(self, name):
        reference = ExperimentEngine(workers=0).run_trials(
            draw_trial, 30, master_seed=4
        )
        with ExperimentEngine(workers=2, backend=name) as engine:
            got = list(engine.run_stream(draw_trial, 30, master_seed=4, window=6))
        assert got == reference, name

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_windowed_trial_error_propagation(self, name):
        with backend_for(name) as backend:
            specs = [TrialSpec(i, derive_seed(2, i)) for i in range(8)]
            with pytest.raises(TrialError) as exc_info:
                list(backend.stream(crash_on_three, specs, count=8, window=2))
        assert exc_info.value.index == 3

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_invalid_window_rejected(self, name):
        with backend_for(name) as backend:
            if name == "serial":
                pytest.skip("serial has no read-ahead to bound")
            with pytest.raises(ValueError, match="window"):
                list(backend.stream(draw_trial, [TrialSpec(0, 0)], window=0))

    def test_pool_windowed_bounded_readahead(self):
        """The spec generator is consumed at most ~window ahead of the
        results pulled (imap's free-running feeder would eat all 1000)."""
        backend = ProcessPoolBackend(workers=2, chunk_size=1)
        consumed = []

        def specs():
            for i in range(1000):
                consumed.append(i)
                yield TrialSpec(i, i)

        stream = backend.stream(draw_trial, specs(), count=1000, window=4)
        for _ in range(3):
            next(stream)
        # 3 yielded + at most window in flight + one batch of slack.
        assert len(consumed) <= 3 + 4 + 1
        stream.close()
        backend.close()

    def test_pool_windowed_drop_keeps_pool_clean(self):
        """Dropping a windowed stream waits out only the bounded in-flight
        window — the pool is never marked dirty, close() stays graceful,
        and the remaining seed range is NOT drained."""
        backend = ProcessPoolBackend(workers=2, chunk_size=1)
        ran = time.perf_counter()
        stream = backend.stream(
            slow_trial, [TrialSpec(i, i) for i in range(60)], count=60, window=2
        )
        assert next(stream) == 0
        stream.close()  # adaptive early stop
        elapsed = time.perf_counter() - ran
        # 60 slow trials would cost ~9s; the bounded remainder is ~2 trials.
        assert elapsed < 3.0
        assert not backend._dirty
        pool = backend._pool
        calls = []
        original_terminate = pool.terminate
        pool.terminate = lambda: calls.append("terminate")
        try:
            backend.close()
        finally:
            pool.terminate = original_terminate
        assert calls == []  # graceful close — never terminate
        assert backend._pool is None

    def test_pool_windowed_workers_reusable_after_drop(self):
        backend = ProcessPoolBackend(workers=2, chunk_size=1)
        stream = backend.stream(
            draw_trial, [TrialSpec(i, i) for i in range(40)], count=40, window=3
        )
        next(stream)
        stream.close()
        # Same pool object serves the next call (no dirty-replacement).
        pool = backend._pool
        assert backend.map(draw_trial, [TrialSpec(0, 0)]) == [
            SerialBackend().map(draw_trial, [TrialSpec(0, 0)])[0]
        ]
        assert backend._pool is pool
        backend.close()

    def test_async_windowed_drop_bounded(self):
        backend = AsyncioBackend(workers=2, window=8)
        stream = backend.stream(
            slow_trial, [TrialSpec(i, i) for i in range(60)], count=60, window=2
        )
        assert next(stream) == 0
        start = time.perf_counter()
        stream.close()  # drains at most min(window=8, 2) in-flight trials
        assert time.perf_counter() - start < 2.0
        # The loop/executor stay reusable after the drop.
        assert backend.map(slow_trial, [TrialSpec(7, 7)]) == [7]
        backend.close()

    def test_sharded_windowed_drop_reaches_inner_pool(self):
        """Dropping a windowed sharded stream closes the inner pool stream
        too, so the inner pool stays clean for a graceful close."""
        sharded = ShardedBackend(workers=2, shard_size=2)
        stream = sharded.stream(
            slow_trial, [TrialSpec(i, i) for i in range(40)], count=40, window=2
        )
        assert next(stream) == 0
        stream.close()
        inner = sharded.inner
        assert isinstance(inner, ProcessPoolBackend)
        assert not inner._dirty
        pool = inner._pool
        calls = []
        original_terminate = pool.terminate
        pool.terminate = lambda: calls.append("terminate")
        try:
            sharded.close()
        finally:
            pool.terminate = original_terminate
        assert calls == []

    def test_unwindowed_drop_still_dirties_pool(self):
        """The historical contract is unchanged: an abandoned *unwindowed*
        stream leaves imap's queue full and close() must terminate."""
        backend = ProcessPoolBackend(workers=2, chunk_size=1)
        stream = backend.stream(
            slow_trial, [TrialSpec(i, i) for i in range(60)], count=60
        )
        assert next(stream) == 0
        stream.close()
        assert backend._dirty
        backend.abort()


class TestPoolLifecycle:
    """Happy-path shutdown is graceful; terminate stays on error paths."""

    def test_close_joins_without_terminate(self):
        backend = ProcessPoolBackend(workers=2)
        backend.map(draw_trial, [TrialSpec(i, i) for i in range(4)])
        pool = backend._pool
        assert pool is not None
        calls = []
        original_terminate = pool.terminate
        pool.terminate = lambda: calls.append("terminate")
        try:
            backend.close()
        finally:
            pool.terminate = original_terminate
        assert calls == []  # graceful: close()+join(), never terminate()
        assert backend._pool is None
        # A later map transparently re-creates the pool.
        assert len(backend.map(draw_trial, [TrialSpec(0, 0)])) == 1
        backend.close()

    def test_exactly_consumed_stream_closes_gracefully(self):
        """run_matrix/run_sweep pull exactly ``count`` results (zip/next),
        leaving the generator suspended at its final yield — that is a
        fully-drained stream and must NOT be misclassified as abandoned."""
        backend = ProcessPoolBackend(workers=2)
        specs = [TrialSpec(i, i) for i in range(6)]
        stream = backend.stream(draw_trial, specs, count=6)
        got = [next(stream) for _ in range(6)]  # never iterates past the end
        assert len(got) == 6
        del stream  # finalized while suspended at the last yield
        assert not backend._dirty
        pool = backend._pool
        calls = []
        original_terminate = pool.terminate
        pool.terminate = lambda: calls.append("terminate")
        try:
            backend.close()
        finally:
            pool.terminate = original_terminate
        assert calls == []  # graceful close()+join on the happy path
        assert backend._pool is None

    def test_run_matrix_happy_path_closes_gracefully(self):
        """End-to-end: a successful run_matrix over a shared engine leaves
        the pool clean, so engine.close() never terminates workers."""
        engine = ExperimentEngine(workers=2)
        run_matrix(GOLDEN_MATRIX, trials=2, master_seed=1, engine=engine)
        import gc

        gc.collect()  # finalize the consumed stream generator
        assert not engine.backend._dirty
        pool = engine._pool
        calls = []
        original_terminate = pool.terminate
        pool.terminate = lambda: calls.append("terminate")
        try:
            engine.close()
        finally:
            pool.terminate = original_terminate
        assert calls == []

    def test_close_after_abandoned_stream_terminates(self):
        """Abandoning a stream mid-iteration leaves the pool's task queue
        full; close() must not drain it gracefully (that executes every
        remaining spec) — it falls through to terminate."""
        backend = ProcessPoolBackend(workers=2, chunk_size=1)
        stream = backend.stream(
            slow_trial, [TrialSpec(i, i) for i in range(60)], count=60
        )
        assert next(stream) == 0
        stream.close()  # early break / consumer walked away
        pool = backend._pool
        calls = []
        original_terminate = pool.terminate
        pool.terminate = lambda: calls.append("terminate") or original_terminate()
        start = time.perf_counter()
        backend.close()
        elapsed = time.perf_counter() - start
        assert calls == ["terminate"]
        assert elapsed < 2.0  # never waits for the ~60 queued slow trials
        assert backend._pool is None
        # The dirty flag does not outlive the pool: a fresh pool closes
        # gracefully again.
        backend.map(draw_trial, [TrialSpec(0, 0)])
        assert not backend._dirty
        backend.close()

    def test_sharded_abort_reaches_inner_pool(self):
        sharded = ShardedBackend(workers=2, shard_size=1)
        sharded.inner.map(draw_trial, [TrialSpec(i, i) for i in range(2)])
        pool = sharded.inner._pool
        calls = []
        original_terminate = pool.terminate
        pool.terminate = lambda: calls.append("terminate") or original_terminate()
        sharded.abort()
        assert calls == ["terminate"]
        assert sharded.inner._pool is None

    def test_abort_terminates(self):
        backend = ProcessPoolBackend(workers=2)
        backend.map(draw_trial, [TrialSpec(i, i) for i in range(4)])
        pool = backend._pool
        calls = []
        original_terminate = pool.terminate
        pool.terminate = lambda: calls.append("terminate") or original_terminate()
        backend.abort()
        assert calls == ["terminate"]
        assert backend._pool is None

    def test_engine_context_manager_routes_by_outcome(self):
        with ExperimentEngine(workers=2) as engine:
            engine.run_trials(draw_trial, 4)
            pool = engine._pool
            calls = []
            original_terminate = pool.terminate
            pool.terminate = (
                lambda: calls.append("terminate") or original_terminate()
            )
        assert calls == []  # clean exit: graceful close
        assert engine._pool is None

        with pytest.raises(RuntimeError, match="bail"):
            with ExperimentEngine(workers=2) as engine:
                engine.run_trials(draw_trial, 4)
                pool = engine._pool
                calls = []
                original_terminate = pool.terminate
                pool.terminate = (
                    lambda: calls.append("terminate") or original_terminate()
                )
                raise RuntimeError("bail")
        assert calls == ["terminate"]  # error exit: hard abort
