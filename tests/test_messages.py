"""Tests for the message dataclasses and canonical encodings."""

import pytest

from repro.crypto.hashing import stable_encode
from repro.messages.base import ProposalStatement
from repro.messages.hotstuff import HsPhase, HsQuorumCert, HsVotePayload
from repro.messages.pbft import PbftCommit, PbftNewLeader, PbftPrepare, PbftPropose
from repro.messages.probft import Commit, NewLeader, Prepare, Propose, extract_statement

from .helpers import make_commit, make_crypto, make_prepare, make_propose, make_statement, saturated_config


@pytest.fixture
def setup():
    cfg = saturated_config()
    return cfg, make_crypto(cfg)


class TestProposalStatement:
    def test_conflicts_same_view_different_value(self):
        a = ProposalStatement(view=1, value=b"x")
        b = ProposalStatement(view=1, value=b"y")
        assert a.conflicts_with(b) and b.conflicts_with(a)

    def test_no_conflict_same_value(self):
        a = ProposalStatement(view=1, value=b"x")
        assert not a.conflicts_with(ProposalStatement(view=1, value=b"x"))

    def test_no_conflict_different_view(self):
        a = ProposalStatement(view=1, value=b"x")
        assert not a.conflicts_with(ProposalStatement(view=2, value=b"y"))

    def test_no_conflict_different_domain(self):
        a = ProposalStatement(view=1, value=b"x", domain="slot-1")
        b = ProposalStatement(view=1, value=b"y", domain="slot-2")
        assert not a.conflicts_with(b)

    def test_canonical_stable(self):
        a = ProposalStatement(view=3, value=b"v")
        b = ProposalStatement(view=3, value=b"v")
        assert stable_encode(a) == stable_encode(b)
        c = ProposalStatement(view=3, value=b"v", domain="d")
        assert stable_encode(a) != stable_encode(c)


class TestProBFTMessages:
    def test_propose_value_accessor(self, setup):
        cfg, crypto = setup
        propose = make_propose(crypto, cfg, view=1, value=b"v")
        assert propose.payload.value == b"v"
        assert propose.payload.view == 1

    def test_prepare_commit_accessors(self, setup):
        cfg, crypto = setup
        statement = make_statement(crypto, cfg, 2, b"w", signer=1)
        prepare = make_prepare(crypto, cfg, 3, statement)
        commit = make_commit(crypto, cfg, 3, statement)
        assert prepare.payload.view == 2 and prepare.payload.value == b"w"
        assert commit.payload.view == 2 and commit.payload.value == b"w"
        # Prepare and commit samples come from different seeds.
        assert prepare.payload.sample != commit.payload.sample

    def test_extract_statement(self, setup):
        cfg, crypto = setup
        statement = make_statement(crypto, cfg, 1, b"v")
        propose = make_propose(crypto, cfg, view=1, value=b"v")
        prepare = make_prepare(crypto, cfg, 2, statement)
        commit = make_commit(crypto, cfg, 2, statement)
        assert extract_statement(propose.payload) is propose.payload.statement
        assert extract_statement(prepare.payload) is statement
        assert extract_statement(commit.payload) is statement
        assert extract_statement("junk") is None
        nl = NewLeader(view=2, prepared_view=0, prepared_value=None, cert=())
        assert extract_statement(nl) is None

    def test_type_labels(self):
        assert Propose.TYPE == "Propose"
        assert Prepare.TYPE == "Prepare"
        assert Commit.TYPE == "Commit"
        assert NewLeader.TYPE == "NewLeader"

    def test_messages_hashable_and_frozen(self, setup):
        cfg, crypto = setup
        statement = make_statement(crypto, cfg, 1, b"v")
        with pytest.raises(Exception):
            statement.payload.view = 9


class TestPbftMessages:
    def test_type_labels(self):
        assert PbftPropose.TYPE == "PbftPropose"
        assert PbftPrepare.TYPE == "PbftPrepare"
        assert PbftCommit.TYPE == "PbftCommit"
        assert PbftNewLeader.TYPE == "PbftNewLeader"

    def test_accessors(self, setup):
        cfg, crypto = setup
        statement = crypto.signatures.sign(0, ProposalStatement(view=1, value=b"v"))
        prepare = PbftPrepare(statement=statement)
        assert prepare.view == 1 and prepare.value == b"v"


class TestHotStuffMessages:
    def test_phase_values(self):
        assert HsPhase.PREPARE.value == "prepare"
        assert [p.value for p in HsPhase] == [
            "prepare", "pre-commit", "commit", "decide",
        ]

    def test_qc_matches(self, setup):
        cfg, crypto = setup
        vote = crypto.signatures.sign(
            1, HsVotePayload(view=2, value=b"v", phase="prepare")
        )
        qc = HsQuorumCert(view=2, value=b"v", phase="prepare", votes=(vote,))
        assert qc.matches(2, b"v", HsPhase.PREPARE)
        assert not qc.matches(3, b"v", HsPhase.PREPARE)
        assert not qc.matches(2, b"w", HsPhase.PREPARE)
        assert not qc.matches(2, b"v", HsPhase.COMMIT)
