"""Tests for streaming aggregation: accumulators, engine.stream, run_matrix.

The refactor's guarantee: the streamed (constant-memory) path produces
**identical** estimates to the materialized-rows path on golden seeds — the
running mean is the same left-fold summation ``sum/len`` performs, so this
is exact equality, not approximation.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.harness.metrics import (
    ProportionEstimate,
    StreamingProportion,
    Welford,
    mean,
    stddev,
)
from repro.harness.parallel import (
    ExperimentEngine,
    TrialError,
    TrialSpec,
    derive_seed,
)
from repro.harness.registry import (
    CellAccumulator,
    get_matrix,
    run_matrix,
    run_matrix_cell,
)


def stream_probe(spec: TrialSpec) -> float:
    """Module-level (picklable) seed-driven trial."""
    return float(random.Random(spec.seed).random())


def stream_crash_on_two(spec: TrialSpec) -> int:
    if spec.index == 2:
        raise ValueError("boom")
    return spec.index


class TestWelford:
    def test_mean_bit_identical_to_batch(self):
        rng = random.Random(3)
        values = [rng.uniform(-1e6, 1e6) for _ in range(997)]
        accumulator = Welford().extend(values)
        assert accumulator.mean == mean(values)  # exact, not approx
        assert accumulator.count == len(values)

    def test_variance_matches_batch_stddev(self):
        rng = random.Random(4)
        values = [rng.gauss(50.0, 7.0) for _ in range(500)]
        accumulator = Welford().extend(values)
        assert accumulator.stddev == pytest.approx(stddev(values), rel=1e-10)

    def test_empty_and_single(self):
        empty = Welford()
        assert math.isnan(empty.mean)
        assert empty.variance == 0.0 and empty.stderr == 0.0
        low, high = empty.ci()
        assert math.isnan(low) and math.isnan(high)
        single = Welford().extend([5.0])
        assert single.mean == 5.0
        assert single.variance == 0.0

    def test_ci_shrinks_with_samples(self):
        rng = random.Random(5)
        small = Welford().extend(rng.gauss(0, 1) for _ in range(20))
        rng = random.Random(5)
        large = Welford().extend(rng.gauss(0, 1) for _ in range(2000))
        assert (large.ci()[1] - large.ci()[0]) < (small.ci()[1] - small.ci()[0])

    def test_nan_poisons_like_batch(self):
        values = [1.0, float("nan"), 3.0]
        assert math.isnan(Welford().extend(values).mean)
        assert math.isnan(mean(values))

    def test_numerical_stability_large_offset(self):
        # Naive sum-of-squares catastrophically cancels here; Welford's M2
        # recurrence must not.
        values = [1e9 + x for x in (4.0, 7.0, 13.0, 16.0)]
        accumulator = Welford().extend(values)
        assert accumulator.variance == pytest.approx(30.0, rel=1e-6)


class TestStreamingProportion:
    def test_matches_batch_estimate(self):
        outcomes = [True, True, False, True, False, False, True]
        streaming = StreamingProportion()
        for outcome in outcomes:
            streaming.add(outcome)
        batch = ProportionEstimate(sum(outcomes), len(outcomes))
        assert streaming.point == batch.point
        assert streaming.interval == batch.interval
        assert streaming.as_estimate() == batch

    def test_empty(self):
        assert math.isnan(StreamingProportion().point)


class TestEngineStream:
    def test_stream_equals_map_serial(self):
        engine = ExperimentEngine(workers=0)
        specs = [
            TrialSpec(index=i, seed=derive_seed(11, i)) for i in range(25)
        ]
        assert list(engine.stream(stream_probe, specs)) == engine.map(
            stream_probe, specs
        )

    def test_stream_equals_map_parallel(self):
        specs = [
            TrialSpec(index=i, seed=derive_seed(11, i)) for i in range(25)
        ]
        with ExperimentEngine(workers=2) as engine:
            streamed = list(engine.stream(stream_probe, specs))
        serial = ExperimentEngine(workers=0).map(stream_probe, specs)
        assert streamed == serial

    def test_run_stream_matches_run_trials(self):
        engine = ExperimentEngine(workers=0)
        assert list(engine.run_stream(stream_probe, 10, master_seed=4)) == (
            engine.run_trials(stream_probe, 10, master_seed=4)
        )

    def test_serial_stream_is_lazy(self):
        engine = ExperimentEngine(workers=0)
        seen = []

        def recording(spec: TrialSpec) -> int:
            seen.append(spec.index)
            return spec.index

        iterator = engine.stream(
            recording, (TrialSpec(index=i, seed=i) for i in range(5))
        )
        assert seen == []  # nothing ran yet
        assert next(iterator) == 0
        assert seen == [0]  # only the pulled trial ran

    @pytest.mark.parametrize("workers", [0, 2])
    def test_stream_raises_trial_error(self, workers):
        with ExperimentEngine(workers=workers) as engine:
            specs = [TrialSpec(index=i, seed=i) for i in range(5)]
            with pytest.raises(TrialError) as info:
                list(engine.stream(stream_crash_on_two, specs))
            assert info.value.index == 2

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError):
            ExperimentEngine().run_stream(stream_probe, -1)


class TestStreamedMatrixEquivalence:
    """Streamed per-cell estimates == materialized-rows path, golden seeds."""

    def _materialized_rows(self, matrix, trials, master_seed, max_time=5000.0):
        """The pre-refactor path: map everything, then aggregate with
        batch ``mean`` over materialized row lists."""
        cells = matrix.cells(supported_only=True)
        specs = [
            TrialSpec(
                index=i,
                seed=derive_seed(master_seed, i),
                params=(cell, max_time),
            )
            for i, cell in enumerate(c for c in cells for _ in range(trials))
        ]
        results = ExperimentEngine(workers=0).map(run_matrix_cell, specs)
        rows = []
        for k, cell in enumerate(cells):
            chunk = results[k * trials : (k + 1) * trials]
            rows.append(
                {
                    "protocol": cell.protocol,
                    "adversary": cell.adversary,
                    "latency": cell.latency,
                    "trials": trials,
                    "decide_rate": round(
                        mean([r["decided"] / r["n_correct"] for r in chunk]), 4
                    ),
                    "agreement_rate": mean(
                        [1.0 if r["agreement_ok"] else 0.0 for r in chunk]
                    ),
                    "mean_max_view": mean(
                        [float(r["max_view"]) for r in chunk]
                    ),
                    "mean_decision_time": round(
                        mean([r["last_decision_time"] for r in chunk]), 3
                    ),
                    "mean_messages": round(
                        mean([float(r["total_messages"]) for r in chunk]), 1
                    ),
                }
            )
        return rows

    @pytest.mark.parametrize("master_seed", [0, 9, 123])
    def test_streamed_equals_materialized_on_golden_seeds(self, master_seed):
        matrix = get_matrix("smoke")
        streamed = run_matrix(matrix, trials=3, master_seed=master_seed)
        materialized = self._materialized_rows(
            matrix, trials=3, master_seed=master_seed
        )
        assert len(streamed.rows) == len(materialized)
        for new_row, old_row in zip(streamed.rows, materialized):
            for key, value in old_row.items():
                assert new_row[key] == value, key  # exact float equality

    def test_streamed_parallel_equals_serial(self):
        matrix = get_matrix("smoke")
        serial = run_matrix(matrix, trials=3, master_seed=9, workers=0)
        pooled = run_matrix(matrix, trials=3, master_seed=9, workers=2)
        assert serial.rows == pooled.rows

    def test_cell_accumulator_counts(self):
        matrix = get_matrix("smoke")
        cell = matrix.cells()[0]
        accumulator = CellAccumulator(cell)
        for i in range(4):
            accumulator.add(
                run_matrix_cell(
                    TrialSpec(
                        index=i, seed=derive_seed(0, i), params=(cell, 5000.0)
                    )
                )
            )
        summary = accumulator.summary()
        assert summary["trials"] == 4
        assert 0.0 <= summary["agreement_ci_low"] <= summary["agreement_rate"]
        assert summary["agreement_rate"] <= summary["agreement_ci_high"] <= 1.0
