"""Tests for latency models and chaos policies."""

import pytest

from repro.net.faults import ComposedChaos, NoChaos, Partition, PreGstChaos
from repro.net.latency import ConstantLatency, ExponentialLatency, UniformLatency


class TestConstantLatency:
    def test_constant(self):
        model = ConstantLatency(2.5)
        assert model.delay(0, 1) == 2.5
        assert model.max_delay == 2.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantLatency(0.0)


class TestUniformLatency:
    def test_bounds_respected(self):
        model = UniformLatency(0.5, 1.5, seed=1)
        for _ in range(500):
            d = model.delay(0, 1)
            assert 0.5 <= d <= 1.5
        assert model.max_delay == 1.5

    def test_deterministic_per_seed(self):
        a = UniformLatency(0.5, 1.5, seed=7)
        b = UniformLatency(0.5, 1.5, seed=7)
        assert [a.delay(0, 1) for _ in range(10)] == [
            b.delay(0, 1) for _ in range(10)
        ]

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0)
        with pytest.raises(ValueError):
            UniformLatency(0.0, 1.0)


class TestExponentialLatency:
    def test_truncated_at_cap(self):
        model = ExponentialLatency(mean=1.0, cap=3.0, seed=2)
        for _ in range(1000):
            assert 0 < model.delay(0, 1) <= 3.0
        assert model.max_delay == 3.0

    def test_default_cap(self):
        assert ExponentialLatency(mean=2.0).max_delay == 20.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ExponentialLatency(mean=0.0)
        with pytest.raises(ValueError):
            ExponentialLatency(mean=5.0, cap=1.0)


class TestChaosPolicies:
    def test_no_chaos(self):
        assert NoChaos().extra_delay(0.0, 100.0, 0, 1) == 0.0

    def test_pre_gst_chaos_only_before_gst(self):
        chaos = PreGstChaos(max_extra=50.0, seed=3)
        assert chaos.extra_delay(150.0, 100.0, 0, 1) == 0.0
        pre = [chaos.extra_delay(10.0, 100.0, 0, 1) for _ in range(200)]
        assert all(0 <= d <= 50.0 for d in pre)
        assert max(pre) > 10.0  # actually produces adversity

    def test_pre_gst_chaos_rejects_negative(self):
        with pytest.raises(ValueError):
            PreGstChaos(max_extra=-1.0)

    def test_partition_delays_cross_traffic(self):
        part = Partition(group_a=[0, 1], heal_time=50.0)
        assert part.crosses(0, 2)
        assert not part.crosses(0, 1)
        assert part.extra_delay(10.0, 0.0, 0, 2) == 40.0
        assert part.extra_delay(10.0, 0.0, 0, 1) == 0.0
        assert part.extra_delay(60.0, 0.0, 0, 2) == 0.0

    def test_composed_chaos_sums(self):
        part = Partition(group_a=[0], heal_time=20.0)
        combo = ComposedChaos([part, NoChaos()])
        assert combo.extra_delay(5.0, 0.0, 0, 1) == 15.0
