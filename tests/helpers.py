"""Shared test utilities: hand-built protocol messages and certificates.

Most builders use the "saturated" config (small n where the VRF sample size
caps at ``n``), which makes every replica a member of every sample — so
certificate construction is deterministic and membership preconditions are
always satisfiable.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.config import ProtocolConfig
from repro.core.leader import leader_of_view
from repro.crypto.context import CryptoContext
from repro.crypto.signatures import Signed
from repro.crypto.vrf import phase_seed
from repro.messages.base import ProposalStatement
from repro.messages.probft import Commit, NewLeader, Prepare, Propose
from repro.types import ReplicaId, Value, View


def saturated_config(**overrides) -> ProtocolConfig:
    """n=8, f=1: sample size caps at n, so everyone is in every sample."""
    params = dict(n=8, f=1, l=2.0, o=1.7)
    params.update(overrides)
    return ProtocolConfig(**params)


def make_crypto(config: ProtocolConfig, seed: bytes = b"test") -> CryptoContext:
    return CryptoContext.create(config.n, master_seed=seed)


def make_statement(
    crypto: CryptoContext,
    config: ProtocolConfig,
    view: View,
    value: Value,
    signer: Optional[ReplicaId] = None,
) -> Signed:
    """A leader-signed ``⟨v, x⟩`` (signer defaults to the real leader)."""
    if signer is None:
        signer = leader_of_view(view, config.n)
    return crypto.signatures.sign(
        signer,
        ProposalStatement(view=view, value=value, domain=config.seed_domain),
    )


def make_prepare(
    crypto: CryptoContext,
    config: ProtocolConfig,
    sender: ReplicaId,
    statement: Signed,
) -> Signed:
    """A correctly formed signed Prepare from ``sender``."""
    view = statement.payload.view
    sample = crypto.vrf.prove(
        sender,
        phase_seed(view, "prepare", config.seed_domain),
        config.sample_size,
    )
    return crypto.signatures.sign(sender, Prepare(statement=statement, sample=sample))


def make_commit(
    crypto: CryptoContext,
    config: ProtocolConfig,
    sender: ReplicaId,
    statement: Signed,
) -> Signed:
    view = statement.payload.view
    sample = crypto.vrf.prove(
        sender,
        phase_seed(view, "commit", config.seed_domain),
        config.sample_size,
    )
    return crypto.signatures.sign(sender, Commit(statement=statement, sample=sample))


def make_prepared_cert(
    crypto: CryptoContext,
    config: ProtocolConfig,
    view: View,
    value: Value,
    senders: Optional[Sequence[ReplicaId]] = None,
) -> Tuple[Signed, ...]:
    """A valid prepared certificate (requires the saturated config, where
    every sample contains every replica)."""
    statement = make_statement(crypto, config, view, value)
    if senders is None:
        senders = list(range(config.q))
    return tuple(make_prepare(crypto, config, s, statement) for s in senders)


def make_new_leader(
    crypto: CryptoContext,
    config: ProtocolConfig,
    sender: ReplicaId,
    view: View,
    prepared_view: View = 0,
    prepared_value: Optional[Value] = None,
    cert: Tuple[Signed, ...] = (),
) -> Signed:
    return crypto.signatures.sign(
        sender,
        NewLeader(
            view=view,
            prepared_view=prepared_view,
            prepared_value=prepared_value,
            cert=cert,
            domain=config.seed_domain,
        ),
    )


def make_propose(
    crypto: CryptoContext,
    config: ProtocolConfig,
    view: View,
    value: Value,
    justification: Optional[Tuple[Signed, ...]] = None,
    signer: Optional[ReplicaId] = None,
) -> Signed:
    if signer is None:
        signer = leader_of_view(view, config.n)
    statement = make_statement(crypto, config, view, value, signer=signer)
    return crypto.signatures.sign(
        signer,
        Propose(view=view, statement=statement, justification=justification),
    )


def quorum_new_leaders(
    crypto: CryptoContext,
    config: ProtocolConfig,
    view: View,
    prepared: Iterable[Tuple[ReplicaId, View, Value, Tuple[Signed, ...]]] = (),
) -> Tuple[Signed, ...]:
    """A deterministic quorum of NewLeader messages for ``view``.

    ``prepared`` lists senders that report a prepared value; all remaining
    quorum members report "never prepared".
    """
    messages = []
    prepared_senders = set()
    for sender, pview, pvalue, cert in prepared:
        prepared_senders.add(sender)
        messages.append(
            make_new_leader(
                crypto, config, sender, view, pview, pvalue, cert
            )
        )
    for sender in range(config.n):
        if len(messages) >= config.det_quorum:
            break
        if sender in prepared_senders:
            continue
        messages.append(make_new_leader(crypto, config, sender, view))
    return tuple(messages)
