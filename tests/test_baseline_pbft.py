"""Tests for the single-shot PBFT baseline."""

import pytest

from repro.adversary.behaviors import silent_factory
from repro.baselines.pbft.predicates import (
    pbft_choose_value,
    pbft_safe_proposal,
    pbft_valid_new_leader,
)
from repro.baselines.pbft.protocol import PbftDeployment
from repro.config import ProtocolConfig
from repro.net.latency import ConstantLatency
from repro.sync.timeouts import FixedTimeout


class TestPbftHappyPath:
    @pytest.mark.parametrize("n,f", [(4, 1), (10, 3), (31, 10)])
    def test_all_decide_same_value(self, n, f):
        dep = PbftDeployment(ProtocolConfig(n=n, f=f))
        dep.run(max_time=500)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        assert dep.decided_values() == {b"value-0"}

    def test_three_steps(self):
        dep = PbftDeployment(
            ProtocolConfig(n=10, f=3), latency=ConstantLatency(1.0)
        )
        dep.run(max_time=500)
        assert max(d.time for d in dep.decisions.values()) == pytest.approx(3.0)

    def test_quadratic_message_count(self):
        n = 20
        dep = PbftDeployment(ProtocolConfig(n=n, f=3))
        dep.run(max_time=500)
        stats = dep.network.stats
        assert stats.sent("PbftPropose") == n - 1
        assert stats.sent("PbftPrepare") == n * (n - 1)
        assert stats.sent("PbftCommit") == n * (n - 1)


class TestPbftViewChange:
    def test_silent_leader_recovers(self):
        dep = PbftDeployment(
            ProtocolConfig(n=10, f=2),
            timeout_policy=FixedTimeout(20.0),
            byzantine={0: silent_factory()},
        )
        dep.run(max_time=2000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        assert all(d.view >= 2 for d in dep.decisions.values())

    def test_deterministic_agreement_guaranteed(self):
        """PBFT (unlike ProBFT) has deterministic agreement: across many
        seeds, never any disagreement and always the same decided value."""
        for seed in range(5):
            dep = PbftDeployment(ProtocolConfig(n=7, f=2), seed=seed)
            dep.run(max_time=1000)
            assert dep.agreement_ok


class TestPbftPredicates:
    @pytest.fixture
    def setup(self):
        cfg = ProtocolConfig(n=8, f=1)
        dep = PbftDeployment(cfg)
        return cfg, dep.crypto

    def test_choose_value_prefers_highest_view(self, setup):
        cfg, crypto = setup
        from repro.messages.pbft import PbftNewLeader

        msgs = [
            crypto.signatures.sign(
                0, PbftNewLeader(view=4, prepared_view=1,
                                 prepared_value=b"old", cert=())
            ),
            crypto.signatures.sign(
                1, PbftNewLeader(view=4, prepared_view=3,
                                 prepared_value=b"new", cert=())
            ),
        ]
        value, v_max = pbft_choose_value(tuple(msgs), b"mine")
        assert value == b"new" and v_max == 3

    def test_choose_value_defaults_to_own(self, setup):
        cfg, crypto = setup
        from repro.messages.pbft import PbftNewLeader

        msgs = [
            crypto.signatures.sign(
                s, PbftNewLeader(view=2, prepared_view=0,
                                 prepared_value=None, cert=())
            )
            for s in range(5)
        ]
        value, v_max = pbft_choose_value(tuple(msgs), b"mine")
        assert value == b"mine" and v_max == 0

    def test_valid_new_leader_never_prepared(self, setup):
        cfg, crypto = setup
        from repro.messages.pbft import PbftNewLeader

        msg = crypto.signatures.sign(
            2, PbftNewLeader(view=2, prepared_view=0, prepared_value=None, cert=())
        )
        assert pbft_valid_new_leader(msg, 2, cfg, crypto)

    def test_valid_new_leader_rejects_missing_cert(self, setup):
        cfg, crypto = setup
        from repro.messages.pbft import PbftNewLeader

        msg = crypto.signatures.sign(
            2, PbftNewLeader(view=2, prepared_view=1, prepared_value=b"v", cert=())
        )
        assert not pbft_valid_new_leader(msg, 2, cfg, crypto)

    def test_safe_proposal_view1(self, setup):
        cfg, crypto = setup
        from repro.messages.base import ProposalStatement
        from repro.messages.pbft import PbftPropose

        statement = crypto.signatures.sign(
            0, ProposalStatement(view=1, value=b"v")
        )
        propose = crypto.signatures.sign(
            0, PbftPropose(view=1, statement=statement, justification=None)
        )
        assert pbft_safe_proposal(propose, cfg, crypto)

    def test_safe_proposal_wrong_leader(self, setup):
        cfg, crypto = setup
        from repro.messages.base import ProposalStatement
        from repro.messages.pbft import PbftPropose

        statement = crypto.signatures.sign(
            3, ProposalStatement(view=1, value=b"v")
        )
        propose = crypto.signatures.sign(
            3, PbftPropose(view=1, statement=statement, justification=None)
        )
        assert not pbft_safe_proposal(propose, cfg, crypto)
