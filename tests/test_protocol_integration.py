"""End-to-end ProBFT integration tests: full deployments on the simulator."""

import pytest

from repro.config import ProtocolConfig
from repro.core.protocol import ProBFTDeployment
from repro.harness import scenarios
from repro.net.latency import ConstantLatency, UniformLatency
from repro.sync.timeouts import ExponentialTimeout, FixedTimeout


class TestHappyPath:
    @pytest.mark.parametrize("n,f", [(4, 1), (10, 3), (20, 3), (40, 8)])
    def test_all_decide_same_value(self, n, f):
        dep = ProBFTDeployment(
            ProtocolConfig(n=n, f=f), latency=ConstantLatency(1.0)
        )
        dep.run(max_time=500)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        assert dep.decided_values() == {b"value-0"}  # leader of view 1

    def test_three_communication_steps(self):
        dep = ProBFTDeployment(
            ProtocolConfig(n=20, f=3), latency=ConstantLatency(1.0)
        )
        dep.run(max_time=500)
        assert max(d.time for d in dep.decisions.values()) == pytest.approx(3.0)

    def test_decision_in_view_1(self):
        dep = ProBFTDeployment(ProtocolConfig(n=20, f=3))
        dep.run(max_time=500)
        assert dep.max_decision_view == 1

    def test_custom_values(self):
        values = {r: b"common" for r in range(10)}
        dep = ProBFTDeployment(ProtocolConfig(n=10, f=2), values=values)
        dep.run(max_time=500)
        assert dep.decided_values() == {b"common"}

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            dep = ProBFTDeployment(
                ProtocolConfig(n=15, f=3),
                seed=42,
                latency=UniformLatency(0.5, 1.5, seed=42),
            )
            dep.run(max_time=500)
            results.append(
                (sorted((r, d.value, d.time) for r, d in dep.decisions.items()),
                 dep.network.stats.sent_total)
            )
        assert results[0] == results[1]

    def test_different_seeds_different_runs(self):
        totals = set()
        for seed in range(3):
            dep = ProBFTDeployment(
                ProtocolConfig(n=15, f=3),
                seed=seed,
                latency=UniformLatency(0.5, 1.5, seed=seed),
            )
            dep.run(max_time=500)
            totals.add(dep.sim.events_processed)
        assert len(totals) > 1


class TestViewChanges:
    def test_silent_leader_forces_view_change(self):
        dep = scenarios.silent_leader_case(ProtocolConfig(n=10, f=2))
        dep.run(max_time=2000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        assert dep.max_decision_view >= 2
        # View 2's leader (replica 1) proposes its own value.
        assert dep.decided_values() == {b"value-1"}

    def test_two_silent_leaders(self):
        from repro.adversary.behaviors import silent_factory

        dep = ProBFTDeployment(
            ProtocolConfig(n=10, f=2),
            latency=ConstantLatency(1.0),
            timeout_policy=FixedTimeout(20.0),
            byzantine={0: silent_factory(), 1: silent_factory()},
        )
        dep.run(max_time=2000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        assert dep.max_decision_view >= 3

    def test_crash_below_threshold_preserves_liveness(self):
        dep = scenarios.crash_case(ProtocolConfig(n=20, f=3))
        dep.run(max_time=2000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok


class TestPartialSynchrony:
    def test_decides_despite_pre_gst_chaos(self):
        dep = scenarios.pre_gst_chaos_case(ProtocolConfig(n=10, f=2), seed=3)
        dep.run(max_time=5000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok

    def test_exponential_timeouts_eventually_decide(self):
        dep = ProBFTDeployment(
            ProtocolConfig(n=10, f=2),
            latency=UniformLatency(0.5, 8.0, seed=5),
            timeout_policy=ExponentialTimeout(base=2.0, factor=2.0),
        )
        dep.run(max_time=10_000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok

    @pytest.mark.parametrize("seed", range(5))
    def test_chaos_never_violates_agreement(self, seed):
        dep = scenarios.pre_gst_chaos_case(
            ProtocolConfig(n=10, f=2), seed=seed, gst=40.0
        )
        dep.run(max_time=5000)
        assert dep.agreement_ok


class TestMessageComplexity:
    def test_probft_message_counts_match_formula(self):
        cfg = ProtocolConfig(n=100, f=20)
        dep = ProBFTDeployment(cfg, latency=ConstantLatency(1.0))
        dep.run(max_time=500)
        stats = dep.network.stats
        assert stats.sent("Propose") == cfg.n - 1
        # Each replica multicasts to its sample; self-sends stay local.
        expected_upper = cfg.n * cfg.sample_size
        assert 0.9 * expected_upper <= stats.sent("Prepare") <= expected_upper
        assert 0.9 * expected_upper <= stats.sent("Commit") <= expected_upper

    def test_probft_beats_pbft_substantially(self):
        from repro.baselines.pbft.protocol import PbftDeployment

        cfg = ProtocolConfig(n=100, f=20)
        probft = ProBFTDeployment(cfg).run(max_time=500)
        pbft = PbftDeployment(cfg).run(max_time=500)
        assert (
            probft.network.stats.sent_total
            < 0.5 * pbft.network.stats.sent_total
        )


class TestDeploymentValidation:
    def test_too_many_byzantine_rejected(self):
        from repro.adversary.behaviors import silent_factory

        with pytest.raises(ValueError):
            ProBFTDeployment(
                ProtocolConfig(n=10, f=2),
                byzantine={r: silent_factory() for r in range(3)},
            )

    def test_run_is_idempotent_on_start(self):
        dep = ProBFTDeployment(ProtocolConfig(n=10, f=2))
        dep.start()
        dep.start()
        dep.run(max_time=500)
        assert dep.all_correct_decided()
