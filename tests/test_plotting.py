"""Tests for Figure-5 plot series extraction (no matplotlib required)."""

from __future__ import annotations

import json

import pytest

from repro.harness.plotting import (
    PlottingUnavailableError,
    load_report,
    matplotlib_available,
    merge_series,
    render_plot,
    report_series,
)


def _report(n, rows):
    return {"matrix": "m", "n": n, "rows": rows}


def _row(protocol="probft", adversary="none", latency="constant", **extra):
    row = {
        "protocol": protocol,
        "adversary": adversary,
        "latency": latency,
        "agreement_rate": 1.0,
        "agreement_ci_low": 0.9,
        "agreement_ci_high": 1.0,
        "decide_rate": 0.95,
        "decide_stderr": 0.02,
        "mean_decision_time": 3.0,
    }
    row.update(extra)
    return row


class TestReportSeries:
    def test_one_series_per_cell(self):
        report = _report(
            20,
            [
                _row(adversary="none"),
                _row(adversary="silent", agreement_rate=0.8),
            ],
        )
        series = report_series(report, "agreement_rate")
        assert set(series) == {
            "probft/none/constant",
            "probft/silent/constant",
        }
        assert series["probft/silent/constant"].y == [0.8]
        assert series["probft/none/constant"].x == [20.0]

    def test_interval_error_bars(self):
        series = report_series(_report(20, [_row()]), "agreement_rate")
        entry = series["probft/none/constant"]
        assert entry.has_error_bars
        below, above = entry.y_err[0]
        assert below == pytest.approx(0.1)
        assert above == pytest.approx(0.0)

    def test_stderr_error_bars_symmetric(self):
        series = report_series(_report(20, [_row()]), "decide_rate")
        below, above = series["probft/none/constant"].y_err[0]
        assert below == above == pytest.approx(0.02)

    def test_metric_without_companions_has_no_error_bars(self):
        series = report_series(_report(20, [_row()]), "mean_decision_time")
        assert not series["probft/none/constant"].has_error_bars

    def test_null_metric_rows_skipped(self):
        report = _report(
            20, [_row(), _row(adversary="silent", mean_decision_time=None)]
        )
        series = report_series(report, "mean_decision_time")
        assert set(series) == {"probft/none/constant"}

    def test_missing_metric_raises(self):
        with pytest.raises(KeyError, match="nope"):
            report_series(_report(20, [_row()]), "nope")

    def test_missing_n_raises(self):
        with pytest.raises(ValueError, match="system size"):
            report_series({"rows": [_row()]}, "agreement_rate")
        # ... unless supplied explicitly.
        series = report_series({"rows": [_row()]}, "agreement_rate", n=40)
        assert series["probft/none/constant"].x == [40.0]


class TestMergeSeries:
    def test_points_ordered_by_n(self):
        reports = [
            _report(40, [_row(agreement_rate=0.99)]),
            _report(20, [_row(agreement_rate=0.95)]),
        ]
        merged = merge_series(reports, "agreement_rate")
        assert len(merged) == 1
        assert merged[0].x == [20.0, 40.0]
        assert merged[0].y == [0.95, 0.99]

    def test_cells_stay_separate(self):
        reports = [
            _report(20, [_row(), _row(protocol="pbft")]),
            _report(40, [_row()]),
        ]
        merged = merge_series(reports, "agreement_rate")
        labels = {s.label: s for s in merged}
        assert set(labels) == {"probft/none/constant", "pbft/none/constant"}
        assert labels["probft/none/constant"].x == [20.0, 40.0]
        assert labels["pbft/none/constant"].x == [20.0]


class TestLoadReport:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(_report(8, [_row()])))
        assert load_report(str(path))["n"] == 8

    def test_non_report_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="sweep report"):
            load_report(str(path))


class TestRendering:
    def test_gated_on_matplotlib(self, tmp_path):
        series = list(
            report_series(_report(8, [_row()]), "agreement_rate").values()
        )
        out = str(tmp_path / "fig.png")
        if matplotlib_available():  # pragma: no cover - env dependent
            assert render_plot(series, "agreement_rate", out) == out
        else:
            with pytest.raises(PlottingUnavailableError, match="matplotlib"):
                render_plot(series, "agreement_rate", out)
