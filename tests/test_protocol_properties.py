"""Protocol-level property tests: randomized configurations and fault mixes.

Hypothesis drives whole-protocol executions with random (small) system
sizes, fault assignments, latency jitter and seeds; safety must hold in
every generated execution and liveness in every execution whose parameters
admit it.  Sizes are kept small so each example runs in milliseconds.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.behaviors import crash_factory, silent_factory
from repro.adversary.plans import equivocation_attack_deployment
from repro.config import ProtocolConfig, max_faults
from repro.core.invariants import audit_deployment
from repro.core.protocol import ProBFTDeployment
from repro.net.latency import UniformLatency
from repro.sync.timeouts import FixedTimeout

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


configs = st.builds(
    lambda n: ProtocolConfig(n=n, f=max_faults(n)),
    st.integers(7, 25),
)


class TestRandomizedHappyPath:
    @given(configs, st.integers(0, 1000))
    @SLOW
    def test_fault_free_runs_decide_and_agree(self, config, seed):
        dep = ProBFTDeployment(
            config,
            seed=seed,
            latency=UniformLatency(0.5, 1.5, seed=seed),
            timeout_policy=FixedTimeout(30.0),
        )
        dep.run(max_time=5000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        assert audit_deployment(dep).ok


class TestRandomizedFaultMixes:
    @given(
        configs,
        st.integers(0, 500),
        st.data(),
    )
    @SLOW
    def test_random_fault_assignment_safe_and_live(self, config, seed, data):
        """Up to f replicas fail as a random mix of silent/crash.

        The fault count is capped at the config's *liveness* fault tolerance:
        at small n, ``q = ⌈2√n⌉`` can exceed ``n − f``, in which case f
        silent replicas make quorums unattainable — safety holds but
        liveness cannot (hypothesis originally found exactly this at n=7).
        """
        n_faulty = data.draw(
            st.integers(0, config.liveness_fault_tolerance), label="n_faulty"
        )
        # Keep the view-1 leader correct so liveness stays fast.
        faulty_ids = data.draw(
            st.lists(
                st.integers(1, config.n - 1),
                min_size=n_faulty,
                max_size=n_faulty,
                unique=True,
            ),
            label="faulty_ids",
        )
        byzantine = {}
        for replica in faulty_ids:
            kind = data.draw(st.sampled_from(["silent", "crash"]), label="kind")
            byzantine[replica] = (
                silent_factory()
                if kind == "silent"
                else crash_factory(crash_time=data.draw(st.floats(0.5, 5.0)))
            )
        dep = ProBFTDeployment(
            config,
            seed=seed,
            latency=UniformLatency(0.5, 1.5, seed=seed),
            timeout_policy=FixedTimeout(30.0),
            byzantine=byzantine,
        )
        dep.run(max_time=10_000)
        assert dep.agreement_ok
        assert dep.all_correct_decided()


class TestRandomizedEquivocation:
    @given(st.integers(10, 22), st.integers(0, 500))
    @SLOW
    def test_equivocation_attack_always_safe(self, n, seed):
        config = ProtocolConfig(n=n, f=max_faults(n))
        dep, _plan = equivocation_attack_deployment(
            config,
            seed=seed,
            latency=UniformLatency(0.5, 1.5, seed=seed),
            timeout_policy=FixedTimeout(25.0),
        )
        dep.run(max_time=10_000)
        assert dep.agreement_ok
        assert audit_deployment(dep).ok
