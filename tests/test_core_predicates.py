"""Tests for safeProposal and validNewLeader (paper §3.2)."""

from dataclasses import replace

import pytest

from repro.core.predicates import safe_proposal, valid_new_leader
from repro.messages.probft import Propose

from .helpers import (
    make_crypto,
    make_new_leader,
    make_prepared_cert,
    make_propose,
    make_statement,
    quorum_new_leaders,
    saturated_config,
)


@pytest.fixture
def cfg():
    return saturated_config()


@pytest.fixture
def crypto(cfg):
    return make_crypto(cfg)


class TestValidNewLeader:
    def test_never_prepared_is_valid(self, cfg, crypto):
        msg = make_new_leader(crypto, cfg, 2, view=3)
        assert valid_new_leader(msg, 3, cfg, crypto)

    def test_wrong_target_view_rejected(self, cfg, crypto):
        msg = make_new_leader(crypto, cfg, 2, view=3)
        assert not valid_new_leader(msg, 4, cfg, crypto)

    def test_prepared_with_valid_cert_accepted(self, cfg, crypto):
        cert = make_prepared_cert(crypto, cfg, view=1, value=b"v", senders=range(cfg.q))
        # Holder must be in every sample; saturated config guarantees it.
        msg = make_new_leader(
            crypto, cfg, 5, view=2, prepared_view=1, prepared_value=b"v", cert=cert
        )
        assert valid_new_leader(msg, 2, cfg, crypto)

    def test_prepared_view_not_less_than_target_rejected(self, cfg, crypto):
        cert = make_prepared_cert(crypto, cfg, view=2, value=b"v")
        msg = make_new_leader(
            crypto, cfg, 5, view=2, prepared_view=2, prepared_value=b"v", cert=cert
        )
        assert not valid_new_leader(msg, 2, cfg, crypto)

    def test_prepared_without_cert_rejected(self, cfg, crypto):
        msg = make_new_leader(
            crypto, cfg, 5, view=3, prepared_view=1, prepared_value=b"v", cert=()
        )
        assert not valid_new_leader(msg, 3, cfg, crypto)

    def test_never_prepared_with_value_rejected(self, cfg, crypto):
        msg = make_new_leader(
            crypto, cfg, 5, view=3, prepared_view=0, prepared_value=b"v"
        )
        assert not valid_new_leader(msg, 3, cfg, crypto)

    def test_prepared_value_none_rejected(self, cfg, crypto):
        cert = make_prepared_cert(crypto, cfg, view=1, value=b"v")
        msg = make_new_leader(
            crypto, cfg, 5, view=3, prepared_view=1, prepared_value=None, cert=cert
        )
        assert not valid_new_leader(msg, 3, cfg, crypto)

    def test_bad_signature_rejected(self, cfg, crypto):
        msg = make_new_leader(crypto, cfg, 2, view=3)
        forged = replace(msg, signer=3)
        assert not valid_new_leader(forged, 3, cfg, crypto)

    def test_cert_for_other_value_rejected(self, cfg, crypto):
        cert = make_prepared_cert(crypto, cfg, view=1, value=b"other")
        msg = make_new_leader(
            crypto, cfg, 5, view=2, prepared_view=1, prepared_value=b"v", cert=cert
        )
        assert not valid_new_leader(msg, 2, cfg, crypto)


class TestSafeProposalView1:
    def test_view1_leader_proposal_accepted(self, cfg, crypto):
        propose = make_propose(crypto, cfg, view=1, value=b"v")
        assert safe_proposal(propose, cfg, crypto)

    def test_wrong_leader_rejected(self, cfg, crypto):
        propose = make_propose(crypto, cfg, view=1, value=b"v", signer=3)
        assert not safe_proposal(propose, cfg, crypto)

    def test_invalid_value_rejected(self, cfg, crypto):
        cfg_picky = saturated_config(valid=lambda x: x != b"bad")
        good = make_propose(crypto, cfg_picky, view=1, value=b"ok")
        bad = make_propose(crypto, cfg_picky, view=1, value=b"bad")
        assert safe_proposal(good, cfg_picky, crypto)
        assert not safe_proposal(bad, cfg_picky, crypto)

    def test_valid_predicate_override(self, cfg, crypto):
        propose = make_propose(crypto, cfg, view=1, value=b"x")
        assert not safe_proposal(propose, cfg, crypto, valid=lambda v: False)

    def test_statement_view_mismatch_rejected(self, cfg, crypto):
        statement = make_statement(crypto, cfg, 2, b"v", signer=0)
        propose = crypto.signatures.sign(
            0, Propose(view=1, statement=statement, justification=None)
        )
        assert not safe_proposal(propose, cfg, crypto)

    def test_tampered_outer_signature_rejected(self, cfg, crypto):
        propose = make_propose(crypto, cfg, view=1, value=b"v")
        assert not safe_proposal(
            replace(propose, signature=b"\x00" * 32), cfg, crypto
        )

    def test_wrong_domain_rejected(self, cfg, crypto):
        other = saturated_config(seed_domain="slot-2")
        propose = make_propose(crypto, other, view=1, value=b"v")
        assert not safe_proposal(propose, cfg, crypto)


class TestSafeProposalLaterViews:
    def test_view2_with_quorum_accepted(self, cfg, crypto):
        justification = quorum_new_leaders(crypto, cfg, view=2)
        propose = make_propose(
            crypto, cfg, view=2, value=b"v", justification=justification
        )
        assert safe_proposal(propose, cfg, crypto)

    def test_view2_without_justification_rejected(self, cfg, crypto):
        propose = make_propose(crypto, cfg, view=2, value=b"v", justification=None)
        assert not safe_proposal(propose, cfg, crypto)

    def test_too_small_justification_rejected(self, cfg, crypto):
        small = quorum_new_leaders(crypto, cfg, view=2)[: cfg.det_quorum - 1]
        propose = make_propose(
            crypto, cfg, view=2, value=b"v", justification=tuple(small)
        )
        assert not safe_proposal(propose, cfg, crypto)

    def test_duplicate_signers_rejected(self, cfg, crypto):
        one = make_new_leader(crypto, cfg, 0, view=2)
        padded = tuple([one] * cfg.det_quorum)
        propose = make_propose(
            crypto, cfg, view=2, value=b"v", justification=padded
        )
        assert not safe_proposal(propose, cfg, crypto)

    def test_must_repropose_prepared_value(self, cfg, crypto):
        cert = make_prepared_cert(crypto, cfg, view=1, value=b"locked")
        justification = quorum_new_leaders(
            crypto, cfg, view=2, prepared=[(5, 1, b"locked", cert)]
        )
        good = make_propose(
            crypto, cfg, view=2, value=b"locked", justification=justification
        )
        bad = make_propose(
            crypto, cfg, view=2, value=b"hijack", justification=justification
        )
        assert safe_proposal(good, cfg, crypto)
        assert not safe_proposal(bad, cfg, crypto)

    def test_mode_recomputation(self, cfg, crypto):
        cert_a = make_prepared_cert(crypto, cfg, view=1, value=b"a")
        cert_b = make_prepared_cert(crypto, cfg, view=1, value=b"b")
        justification = quorum_new_leaders(
            crypto,
            cfg,
            view=2,
            prepared=[
                (4, 1, b"a", cert_a),
                (5, 1, b"a", cert_a),
                (6, 1, b"b", cert_b),
            ],
        )
        majority = make_propose(
            crypto, cfg, view=2, value=b"a", justification=justification
        )
        minority = make_propose(
            crypto, cfg, view=2, value=b"b", justification=justification
        )
        assert safe_proposal(majority, cfg, crypto)
        assert not safe_proposal(minority, cfg, crypto)

    def test_invalid_new_leader_in_justification_rejected(self, cfg, crypto):
        justification = list(quorum_new_leaders(crypto, cfg, view=2))
        justification[0] = replace(justification[0], signature=b"\x00" * 32)
        propose = make_propose(
            crypto, cfg, view=2, value=b"v", justification=tuple(justification)
        )
        assert not safe_proposal(propose, cfg, crypto)

    def test_view_zero_rejected(self, cfg, crypto):
        statement = make_statement(crypto, cfg, 1, b"v")
        bogus = crypto.signatures.sign(
            0, Propose(view=0, statement=statement, justification=None)
        )
        assert not safe_proposal(bogus, cfg, crypto)
