"""Tests for the partially synchronous network."""

import pytest

from repro.errors import NotRegisteredError
from repro.net.faults import Partition, PreGstChaos
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.network import Network, message_type_name
from repro.net.simulator import Simulator
from repro.net.transport import Transport


def make_net(n=4, latency=None, gst=0.0, chaos=None):
    sim = Simulator()
    net = Network(sim, n, latency=latency or ConstantLatency(1.0), gst=gst, chaos=chaos)
    inboxes = {r: [] for r in range(n)}
    for r in range(n):
        net.register(r, lambda src, msg, r=r: inboxes[r].append((src, msg)))
    return sim, net, inboxes


class TestDelivery:
    def test_send_delivers_after_latency(self):
        sim, net, inboxes = make_net()
        t = net.send(0, 1, "hello")
        assert t == pytest.approx(1.0)
        sim.run()
        assert inboxes[1] == [(0, "hello")]

    def test_broadcast_excludes_self_by_default(self):
        sim, net, inboxes = make_net()
        net.broadcast(0, "m")
        sim.run()
        assert inboxes[0] == []
        assert all(inboxes[r] == [(0, "m")] for r in range(1, 4))

    def test_broadcast_include_self(self):
        sim, net, inboxes = make_net()
        net.broadcast(0, "m", include_self=True)
        sim.run()
        assert inboxes[0] == [(0, "m")]

    def test_multicast(self):
        sim, net, inboxes = make_net()
        net.multicast(0, [1, 3], "m")
        sim.run()
        assert inboxes[1] == [(0, "m")]
        assert inboxes[2] == []
        assert inboxes[3] == [(0, "m")]

    def test_unregistered_destination_raises(self):
        sim = Simulator()
        net = Network(sim, 4)
        with pytest.raises(NotRegisteredError):
            net.send(0, 1, "m")

    def test_register_out_of_range(self):
        sim = Simulator()
        net = Network(sim, 4)
        with pytest.raises(NotRegisteredError):
            net.register(7, lambda s, m: None)


class TestPartialSynchrony:
    def test_post_gst_delivery_within_delta(self):
        sim, net, _ = make_net(latency=UniformLatency(0.5, 2.0, seed=1), gst=0.0)
        for _ in range(200):
            t = net.send(0, 1, "m")
            assert t <= sim.now + 2.0

    def test_pre_gst_messages_delivered_by_gst_plus_delta(self):
        sim, net, inboxes = make_net(
            latency=ConstantLatency(1.0),
            gst=50.0,
            chaos=PreGstChaos(max_extra=1000.0, seed=2),
        )
        deliveries = [net.send(0, 1, f"m{i}") for i in range(100)]
        assert all(t <= 51.0 for t in deliveries)
        sim.run()
        assert len(inboxes[1]) == 100

    def test_partition_heals_before_gst(self):
        sim, net, inboxes = make_net(
            latency=ConstantLatency(1.0),
            gst=30.0,
            chaos=Partition(group_a=[0, 1], heal_time=20.0),
        )
        t = net.send(0, 2, "cross")
        assert 20.0 <= t <= 31.0
        t2 = net.send(0, 1, "same-side")
        assert t2 == pytest.approx(1.0)

    def test_delivery_strictly_in_future(self):
        sim, net, _ = make_net()
        t = net.send(0, 1, "m")
        assert t > sim.now


class TestStats:
    def test_counts_by_type_and_total(self):
        class Ping:
            TYPE = "Ping"

        sim, net, _ = make_net()
        net.send(0, 1, Ping())
        net.broadcast(2, Ping())
        sim.run()
        assert net.stats.sent("Ping") == 4
        assert net.stats.sent_total == 4
        assert net.stats.delivered_total == 4
        assert net.stats.sent_by_replica[2] == 3

    def test_summary_sorted_with_total(self):
        sim, net, _ = make_net()
        net.send(0, 1, "x")
        summary = net.stats.summary()
        assert summary["TOTAL"] == 1

    def test_message_type_name_unwraps_signed(self):
        from repro.crypto.context import CryptoContext
        from repro.sync.synchronizer import Wish

        crypto = CryptoContext.create(4)
        signed = crypto.signatures.sign(0, Wish(view=1))
        assert message_type_name(signed) == "Wish"

    def test_message_type_name_plain(self):
        assert message_type_name("x") == "str"


class TestTransport:
    def test_transport_binds_source(self):
        sim, net, inboxes = make_net()
        t = Transport(net, 2)
        t.send(0, "m")
        t.broadcast("b")
        sim.run()
        assert (2, "m") in inboxes[0]
        assert (2, "b") in inboxes[1]
        assert all(m != (2, "b") for m in inboxes[2])

    def test_transport_properties(self):
        sim, net, _ = make_net()
        t = Transport(net, 2)
        assert t.replica == 2
        assert t.n == 4
        assert t.now == 0.0

    def test_transport_schedule(self):
        sim, net, _ = make_net()
        t = Transport(net, 0)
        fired = []
        t.schedule(5.0, lambda: fired.append(t.now))
        sim.run()
        assert fired == [5.0]


class TestDuplication:
    def make_dup_net(self, prob, n=4, latency=None, gst=0.0, seed=0):
        sim = Simulator()
        net = Network(
            sim,
            n,
            latency=latency or ConstantLatency(1.0),
            gst=gst,
            duplicate_prob=prob,
            duplicate_seed=seed,
        )
        inboxes = {r: [] for r in range(n)}
        for r in range(n):
            net.register(r, lambda src, msg, r=r: inboxes[r].append((src, msg)))
        return sim, net, inboxes

    # duplicate_prob=1.0 is rejected (it would make "at least once" mean
    # "exactly twice"); 1 - 1e-6 is deterministically always-duplicate for
    # the seeded streams used here.
    ALWAYS = 1.0 - 1e-6

    def test_prob_one_duplicates_every_send(self):
        sim, net, inboxes = self.make_dup_net(self.ALWAYS)
        net.send(0, 1, "m")
        sim.run()
        assert inboxes[1] == [(0, "m"), (0, "m")]
        assert net.stats.delivered_total == 2
        assert net.stats.sent_total == 1  # dups are network noise, not sends

    def test_prob_zero_never_duplicates(self):
        sim, net, inboxes = self.make_dup_net(0.0)
        for _ in range(20):
            net.send(0, 1, "m")
        sim.run()
        assert len(inboxes[1]) == 20

    def test_duplicate_uses_fresh_latency_draw(self):
        # With constant latency the duplicate lands exactly one delay after
        # the original.
        sim, net, inboxes = self.make_dup_net(self.ALWAYS, latency=ConstantLatency(2.0))
        net.send(0, 1, "m")
        fired = []
        sim.schedule_at(2.0, lambda: fired.append(("orig", len(inboxes[1]))))
        sim.schedule_at(4.0, lambda: fired.append(("dup", len(inboxes[1]))))
        sim.run()
        assert fired == [("orig", 1), ("dup", 2)]

    def test_duplicate_bounded_by_two_delta_from_send_time(self):
        # Pre-GST chaos can push the original to its deadline; the duplicate
        # must still respect max(now, GST) + 2Δ stated from the send time,
        # and must never land before the original.
        sim, net, inboxes = self.make_dup_net(
            self.ALWAYS, latency=UniformLatency(low=1.0, high=5.0, seed=3), gst=0.0
        )
        deliveries = []
        net.register(1, lambda src, msg: deliveries.append(sim.now))
        for _ in range(50):
            sim_now = sim.now
            net.send(0, 1, "m")
            bound = max(sim_now, net.gst) + 2 * net.max_delay
            sim.run()
            assert len(deliveries) == 2
            orig, dup = deliveries
            assert orig <= dup <= bound + 1e-9
            deliveries.clear()

    def test_duplicate_stream_is_seeded(self):
        def pattern(seed):
            sim, net, inboxes = self.make_dup_net(0.5, seed=seed)
            for _ in range(40):
                net.send(0, 1, "m")
            sim.run()
            return len(inboxes[1])

        assert pattern(7) == pattern(7)  # deterministic per seed
        counts = {pattern(s) for s in range(8)}
        assert len(counts) > 1  # and the seed actually matters
