"""Liveness across views: Theorem 4's geometric argument, in the simulator.

The paper argues every correct replica eventually decides because views with
correct leaders recur forever (round-robin) and each such view decides with
high probability — the number of correct-leader views needed is geometric.
These tests drive exactly that mechanism: k consecutive faulty leaders must
cost exactly k view changes, never safety.
"""

import pytest

from repro.adversary.behaviors import silent_factory
from repro.analysis.termination import decide_within_views
from repro.config import ProtocolConfig
from repro.core.protocol import ProBFTDeployment
from repro.net.latency import ConstantLatency
from repro.sync.timeouts import FixedTimeout


def run_with_k_silent_leaders(k: int, n: int = 13, f: int = 4, seed: int = 0):
    """Leaders of views 1..k are Byzantine-silent."""
    assert k <= f
    byzantine = {r: silent_factory() for r in range(k)}
    dep = ProBFTDeployment(
        ProtocolConfig(n=n, f=f),
        seed=seed,
        latency=ConstantLatency(1.0),
        timeout_policy=FixedTimeout(15.0),
        byzantine=byzantine,
    )
    dep.run(max_time=20_000)
    return dep


class TestConsecutiveFaultyLeaders:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_decision_lands_in_view_k_plus_1(self, k):
        dep = run_with_k_silent_leaders(k)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        assert dep.max_decision_view == k + 1
        # View k+1's leader is replica k (the first correct one).
        assert dep.decided_values() == {f"value-{k}".encode()}

    def test_latency_scales_with_wasted_views(self):
        t1 = run_with_k_silent_leaders(1).sim.now
        t3 = run_with_k_silent_leaders(3).sim.now
        # Each wasted view costs about one timeout.
        assert t3 > t1 + 15.0

    def test_decisions_never_happen_in_faulty_views(self):
        dep = run_with_k_silent_leaders(3)
        for decision in dep.decisions.values():
            assert decision.view >= 4


class TestGeometricModel:
    def test_formula_matches_simulation_structure(self):
        """With per-view success probability ~1 (small n, saturated samples),
        decide_within_views(1, k) == 1 — and the simulation indeed always
        decides in the first correct-leader view."""
        for k in range(1, 4):
            dep = run_with_k_silent_leaders(k)
            assert dep.max_decision_view == k + 1
        assert decide_within_views(1.0, 1) == 1.0

    def test_expected_views_bound(self):
        """1/(p) expected correct-leader views; with p >= 0.9 at n=100-ish
        parameters two views suffice with probability >= 0.99."""
        p = 0.9
        assert decide_within_views(p, 2) >= 0.99
