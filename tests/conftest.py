"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.config import ProtocolConfig
from repro.crypto.context import CryptoContext

from .helpers import make_crypto, saturated_config


@pytest.fixture
def small_config() -> ProtocolConfig:
    """n=20, f=3 — fast full-protocol runs with real (non-saturated) samples."""
    return ProtocolConfig(n=20, f=3)


@pytest.fixture
def sat_config() -> ProtocolConfig:
    """n=8, f=1 — saturated samples for deterministic certificate tests."""
    return saturated_config()


@pytest.fixture
def sat_crypto(sat_config) -> CryptoContext:
    return make_crypto(sat_config)


@pytest.fixture
def crypto20(small_config) -> CryptoContext:
    return make_crypto(small_config)
