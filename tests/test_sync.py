"""Tests for timeout policies and the view synchronizer."""

import pytest

from repro.crypto.context import CryptoContext
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.net.transport import Transport
from repro.sync.synchronizer import ViewSynchronizer, Wish
from repro.sync.timeouts import ExponentialTimeout, FixedTimeout, LinearTimeout


class TestTimeoutPolicies:
    def test_fixed(self):
        assert FixedTimeout(5.0).timeout_for(1) == 5.0
        assert FixedTimeout(5.0).timeout_for(99) == 5.0
        with pytest.raises(ValueError):
            FixedTimeout(0.0)

    def test_linear(self):
        policy = LinearTimeout(base=10.0, increment=5.0)
        assert policy.timeout_for(1) == 10.0
        assert policy.timeout_for(3) == 20.0
        with pytest.raises(ValueError):
            LinearTimeout(base=0.0)

    def test_exponential(self):
        policy = ExponentialTimeout(base=2.0, factor=2.0, cap=10.0)
        assert policy.timeout_for(1) == 2.0
        assert policy.timeout_for(2) == 4.0
        assert policy.timeout_for(10) == 10.0  # capped
        with pytest.raises(ValueError):
            ExponentialTimeout(base=1.0, factor=0.5)

    def test_timeouts_grow(self):
        policy = ExponentialTimeout(base=1.0, factor=2.0)
        values = [policy.timeout_for(v) for v in range(1, 10)]
        assert values == sorted(values)


class SyncCluster:
    """n synchronizers wired over a simulated network (no protocol on top)."""

    def __init__(self, n=4, f=1, timeout=FixedTimeout(10.0)):
        self.sim = Simulator()
        self.network = Network(self.sim, n, latency=ConstantLatency(1.0))
        self.crypto = CryptoContext.create(n)
        self.views = {r: [] for r in range(n)}
        self.syncs = {}
        for r in range(n):
            transport = Transport(self.network, r)
            sync = ViewSynchronizer(
                transport=transport,
                f=f,
                signatures=self.crypto.signatures,
                on_new_view=lambda v, r=r: self.views[r].append(v),
                timeout_policy=timeout,
            )
            self.syncs[r] = sync
            self.network.register(
                r, lambda src, msg, s=sync: s.on_wish(src, msg)
            )

    def start(self, replicas=None):
        for r, sync in self.syncs.items():
            if replicas is None or r in replicas:
                sync.start()


class TestViewSynchronizer:
    def test_start_enters_view_1(self):
        cluster = SyncCluster()
        cluster.start()
        assert all(v == [1] for v in cluster.views.values())

    def test_timeout_advances_all_to_view_2(self):
        cluster = SyncCluster()
        cluster.start()
        cluster.sim.run(until=30.0)
        for r in range(4):
            assert cluster.views[r][-1] >= 2
            assert cluster.syncs[r].current_view >= 2

    def test_views_advance_roughly_together(self):
        cluster = SyncCluster(n=7, f=2)
        cluster.start()
        cluster.sim.run(until=100.0)
        finals = {cluster.syncs[r].current_view for r in range(7)}
        assert max(finals) - min(finals) <= 1

    def test_f_plus_1_wishes_trigger_relay(self):
        """A replica that never timed out joins when f+1 wishes arrive."""
        cluster = SyncCluster(n=4, f=1, timeout=FixedTimeout(1000.0))
        cluster.start()
        # Inject wishes for view 2 from replicas 1 and 2 (f+1 = 2 of them).
        for signer in (1, 2):
            wish = cluster.crypto.signatures.sign(signer, Wish(view=2))
            cluster.network.broadcast(signer, wish)
        cluster.sim.run(until=50.0)
        # Replica 0 relayed and, counting its own wish, 2f+1=3 are reached.
        assert cluster.syncs[0].current_view == 2

    def test_fewer_than_f_plus_1_wishes_ignored(self):
        cluster = SyncCluster(n=4, f=1, timeout=FixedTimeout(1000.0))
        cluster.start()
        wish = cluster.crypto.signatures.sign(1, Wish(view=2))
        cluster.network.broadcast(1, wish)
        cluster.sim.run(until=50.0)
        assert all(s.current_view == 1 for s in cluster.syncs.values())

    def test_invalid_wish_signature_ignored(self):
        from dataclasses import replace

        cluster = SyncCluster(n=4, f=1, timeout=FixedTimeout(1000.0))
        cluster.start()
        for signer in (1, 2):
            wish = cluster.crypto.signatures.sign(signer, Wish(view=5))
            forged = replace(wish, payload=Wish(view=9))
            cluster.network.broadcast(signer, forged)
        cluster.sim.run(until=50.0)
        assert all(s.current_view == 1 for s in cluster.syncs.values())

    def test_wish_from_wrong_domain_ignored(self):
        cluster = SyncCluster(n=4, f=1, timeout=FixedTimeout(1000.0))
        cluster.start()
        for signer in (1, 2):
            wish = cluster.crypto.signatures.sign(
                signer, Wish(view=2, domain="slot-3")
            )
            cluster.network.broadcast(signer, wish)
        cluster.sim.run(until=50.0)
        assert all(s.current_view == 1 for s in cluster.syncs.values())

    def test_view_skipping(self):
        """2f+1 wishes for a far-ahead view jump straight to it."""
        cluster = SyncCluster(n=4, f=1, timeout=FixedTimeout(1000.0))
        cluster.start()
        for signer in (1, 2, 3):
            wish = cluster.crypto.signatures.sign(signer, Wish(view=7))
            cluster.network.broadcast(signer, wish)
        cluster.sim.run(until=50.0)
        assert cluster.syncs[0].current_view == 7

    def test_stop_cancels_timers(self):
        cluster = SyncCluster()
        cluster.start()
        for sync in cluster.syncs.values():
            sync.stop()
        cluster.sim.run(until=100.0)
        assert all(s.current_view == 1 for s in cluster.syncs.values())

    def test_sender_spoofing_ignored(self):
        """A wish whose signer differs from the transport src is dropped."""
        cluster = SyncCluster(n=4, f=1, timeout=FixedTimeout(1000.0))
        cluster.start()
        wish1 = cluster.crypto.signatures.sign(1, Wish(view=2))
        # Replica 3 relays replica 1's wish claiming it as its own source.
        cluster.network.send(3, 0, wish1)
        wish3 = cluster.crypto.signatures.sign(3, Wish(view=2))
        cluster.network.send(3, 0, wish3)
        cluster.sim.run(until=50.0)
        # Only one distinct wisher counted at replica 0 -> no relay to view 2.
        assert cluster.syncs[0].current_view == 1
