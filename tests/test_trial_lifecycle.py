"""Tests for the unified trial lifecycle and the pooled CryptoContext.

Covers the two hard guarantees of the refactor:

* every runner surface (legacy wrappers, DeploymentSpec, matrix cells) is
  one lifecycle — same spec, same result;
* pooled crypto (shared registries + memoized verification) is
  **bit-identical** to fresh per-deployment crypto, serially and across
  worker processes, and pool keying never leaks state across differing
  ``(n, master_seed)``.
"""

from __future__ import annotations

import pytest

from repro.config import ProtocolConfig
from repro.crypto.context import (
    CryptoContext,
    clear_crypto_pool,
    crypto_pool_stats,
)
from repro.crypto.hashing import digest
from repro.crypto.signatures import MemoizedSignatureScheme, Signed
from repro.crypto.vrf import MemoizedVRF, VRFOutput
from repro.harness.runner import run_hotstuff, run_pbft, run_probft
from repro.harness.trial import (
    DeploymentSpec,
    TrialContext,
    list_protocols,
    register_protocol,
    run_trial,
)
from repro.montecarlo.experiments import estimate_protocol_agreement


def _fresh_result(protocol: str, domain: str, config: ProtocolConfig, seed: int):
    """Run one trial with an explicitly fresh (unpooled, unmemoized) context."""
    crypto = CryptoContext.create(config.n, master_seed=digest(domain, seed))
    spec = DeploymentSpec(
        protocol=protocol,
        config=config,
        seed=seed,
        max_time=5000,
        extra=(("crypto", crypto),),
    )
    return run_trial(spec)


class TestRunTrialDispatch:
    def test_equivalent_to_legacy_wrappers(self):
        config = ProtocolConfig(n=10, f=2)
        for protocol, runner in (
            ("probft", run_probft),
            ("pbft", run_pbft),
            ("hotstuff", run_hotstuff),
        ):
            via_spec = run_trial(
                DeploymentSpec(
                    protocol=protocol, config=config, seed=7, max_time=500
                )
            )
            via_wrapper = runner(config, seed=7, max_time=500)
            assert via_spec == via_wrapper

    def test_unknown_protocol_raises_clear_keyerror(self):
        spec = DeploymentSpec(protocol="paxos", config=ProtocolConfig(n=4, f=1))
        with pytest.raises(KeyError, match="unknown protocol 'paxos'"):
            run_trial(spec)

    def test_duplicate_protocol_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_protocol("probft", lambda *a, **k: None)

    def test_registered_protocols(self):
        assert list_protocols() == ["hotstuff", "pbft", "probft"]

    def test_with_seed_changes_only_seed(self):
        spec = DeploymentSpec(protocol="probft", config=ProtocolConfig(n=4, f=1))
        reseeded = spec.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.protocol == spec.protocol
        assert reseeded.config == spec.config

    def test_context_is_idempotent_and_keeps_deployment(self):
        spec = DeploymentSpec(
            protocol="probft", config=ProtocolConfig(n=8, f=1), seed=3,
            max_time=5000,
        )
        context = TrialContext(spec)
        deployment = context.build()
        assert context.build() is deployment
        result = context.execute()
        assert context.execute() is result
        assert context.deployment is deployment
        assert deployment.all_correct_decided() == result.all_decided


class TestCryptoPoolDeterminism:
    """Pooled and fresh crypto must be bit-identical, per the ISSUE."""

    @pytest.mark.parametrize(
        "protocol,domain",
        [
            ("probft", "deployment"),
            ("pbft", "pbft-deployment"),
            ("hotstuff", "hotstuff-deployment"),
        ],
    )
    def test_pooled_matches_fresh_bitwise(self, protocol, domain):
        config = ProtocolConfig(n=10, f=2)
        fresh = _fresh_result(protocol, domain, config, seed=21)
        clear_crypto_pool()
        pooled_cold = run_trial(
            DeploymentSpec(protocol=protocol, config=config, seed=21, max_time=5000)
        )
        pooled_warm = run_trial(
            DeploymentSpec(protocol=protocol, config=config, seed=21, max_time=5000)
        )
        assert fresh == pooled_cold == pooled_warm
        stats = crypto_pool_stats()
        assert stats["hits"] >= 1  # the warm run reused the cold run's entry

    def test_pooled_matches_fresh_across_workers(self):
        """Serial and workers=2 protocol-level estimates are identical —
        each worker grows its own pool, none of which changes results."""
        config = ProtocolConfig(n=8, f=2)
        serial = estimate_protocol_agreement(config, trials=4, seed=5, workers=0)
        pooled = estimate_protocol_agreement(config, trials=4, seed=5, workers=2)
        assert (
            serial.estimates["violation_full_protocol"].successes
            == pooled.estimates["violation_full_protocol"].successes
        )
        assert (
            serial.estimates["undecided_runs"].successes
            == pooled.estimates["undecided_runs"].successes
        )

    def test_pool_reuses_registry_and_vrf(self):
        clear_crypto_pool()
        a = CryptoContext.pooled(8, b"pool-key")
        b = CryptoContext.pooled(8, b"pool-key")
        # Registry and (value-keyed) VRF cache are shared; the signature
        # scheme is per-context so its identity-keyed memo cannot pin
        # envelope graphs across deployments.
        assert a.registry is b.registry
        assert a.vrf is b.vrf
        assert a.signatures is not b.signatures
        assert crypto_pool_stats() == {"hits": 1, "misses": 1, "size": 1}

    def test_pool_keying_isolates_n_and_seed(self):
        clear_crypto_pool()
        base = CryptoContext.pooled(8, b"seed-A")
        other_seed = CryptoContext.pooled(8, b"seed-B")
        other_n = CryptoContext.pooled(9, b"seed-A")
        assert base is not other_seed and base is not other_n
        # Key material differs across pool keys and matches fresh derivation.
        for context, (n, seed) in (
            (base, (8, b"seed-A")),
            (other_seed, (8, b"seed-B")),
            (other_n, (9, b"seed-A")),
        ):
            fresh = CryptoContext.create(n, seed)
            assert context.n == n
            for r in range(n):
                assert (
                    context.registry.key_pair(r) == fresh.registry.key_pair(r)
                )
        assert (
            base.registry.key_pair(0) != other_seed.registry.key_pair(0)
        )

    def test_clear_pool_resets(self):
        CryptoContext.pooled(4, b"x")
        clear_crypto_pool()
        assert crypto_pool_stats() == {"hits": 0, "misses": 0, "size": 0}


class TestMemoizedVerification:
    def test_memoized_vrf_matches_plain(self):
        fresh = CryptoContext.create(12, b"vrf-memo")
        memo = MemoizedVRF(fresh.registry)
        for replica in range(12):
            for seed_str in ("1||prepare", "1||commit", "2||prepare"):
                plain_out = fresh.vrf.prove(replica, seed_str, 5)
                memo_out = memo.prove(replica, seed_str, 5)
                assert plain_out == memo_out
                assert memo.verify(replica, seed_str, 5, memo_out)
        # Verifying the very object prove() returned short-circuits on the
        # prove memo (no shuffle replay) ...
        assert memo.prove_identity_hits > 0
        # ... while a value-equal clone takes the full path and replays the
        # shuffle through the sample memo.
        clone = VRFOutput(sample=plain_out.sample, proof=plain_out.proof)
        assert memo.verify(11, "2||prepare", 5, clone)
        assert memo.hits > 0
        # Re-proving hits the prove cache without changing outputs.
        again = memo.prove(3, "1||prepare", 5)
        assert again == fresh.vrf.prove(3, "1||prepare", 5)
        assert memo.prove_hits > 0

    def test_memoized_signatures_cache_by_identity_not_signature(self):
        """A forged envelope reusing a real signature must still fail:
        the cache is keyed by object identity, never (signer, signature)."""
        fresh = CryptoContext.create(4, b"sig-memo")
        memo = MemoizedSignatureScheme(fresh.registry)
        signed = memo.sign(1, ("vote", b"A"))
        assert memo.verify(signed)
        assert memo.verify(signed)  # cached
        assert memo.hits == 1 and memo.misses == 1
        forged = Signed(
            payload=("vote", b"B"), signer=1, signature=signed.signature
        )
        assert not memo.verify(forged)
        assert not fresh.signatures.verify(forged)

    def test_memoized_signature_eviction_keeps_correctness(self):
        fresh = CryptoContext.create(4, b"sig-evict")
        memo = MemoizedSignatureScheme(fresh.registry, max_entries=2)
        envelopes = [memo.sign(0, ("m", i)) for i in range(5)]
        for envelope in envelopes:
            assert memo.verify(envelope)
        for envelope in envelopes:  # some evicted, all still verify
            assert memo.verify(envelope)
        assert len(memo._cache) <= 2

    def test_vrf_cache_bounded(self):
        fresh = CryptoContext.create(6, b"vrf-bound")
        memo = MemoizedVRF(fresh.registry, max_entries=3)
        for view in range(10):
            memo.prove(0, f"{view}||prepare", 3)
        assert len(memo._cache) <= 3
        assert len(memo._prove_cache) <= 3

    def test_prove_memo_bit_identical_on_golden_seeds(self):
        """Recurring per-view sampler keys prove once — and identically.

        The prove memo is keyed (replica, seed, s) over the immutable
        registry, so the memoized prover's outputs (sample AND proof bytes)
        must be bit-identical to an uncached VRF for every golden seed.
        """
        fresh = CryptoContext.create(10, b"prove-memo-golden")
        memo = MemoizedVRF(fresh.registry)
        golden = [
            (replica, f"{view}||{tag}", 4)
            for replica in (0, 3, 9)
            for view in (1, 2, 7)
            for tag in ("prepare", "commit")
        ]
        first = [memo.prove(*args) for args in golden]
        assert memo.prove_misses == len(golden) and memo.prove_hits == 0
        again = [memo.prove(*args) for args in golden]
        assert memo.prove_hits == len(golden)
        reference = [fresh.vrf.prove(*args) for args in golden]
        assert first == again == reference
        for out in first:
            assert isinstance(out.proof, bytes)

    def test_prove_with_explicit_key_is_never_cached(self):
        """The adversary's corrupted-key path must not hit the memo: an
        explicit key that differs from the registry's yields a different
        output even for a (replica, seed, s) triple already memoized."""
        fresh = CryptoContext.create(6, b"prove-memo-adv")
        memo = MemoizedVRF(fresh.registry)
        honest = memo.prove(2, "1||prepare", 3)
        misses = memo.prove_misses
        wrong_key = b"\x07" * 32
        forged = memo.prove_with(wrong_key, 2, "1||prepare", 3)
        assert forged != honest
        assert memo.prove_misses == misses  # prove_with bypassed the memo
        assert forged == fresh.vrf.prove_with(wrong_key, 2, "1||prepare", 3)
        # And the forged output does not verify as replica 2.
        assert not memo.verify(2, "1||prepare", 3, forged)
