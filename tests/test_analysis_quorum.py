"""Tests for quorum-formation probabilities (Appendix B)."""

import math

import pytest

from repro.analysis.quorum_probability import (
    corollary2_constant,
    expected_senders_reaching,
    prob_quorum_corollary2,
    prob_quorum_exact,
    prob_quorum_exact_config,
    prob_quorum_theorem2,
    prob_quorum_theorem11,
    theorem2_o_interval,
    theorem2_premise_holds,
    theorem6_monotone_in_r,
)
from repro.errors import AnalysisDomainError


class TestLemma1:
    def test_expected_value(self):
        # Lemma 1: E = r*s/n.
        assert expected_senders_reaching(80, 34, 100) == pytest.approx(27.2)

    def test_invalid_params(self):
        with pytest.raises(AnalysisDomainError):
            expected_senders_reaching(10, 20, 15)  # s > n


class TestTheorem11:
    def test_bound_is_a_lower_bound_on_exact(self):
        n, r, s, q = 100, 80, 34, 20
        bound = prob_quorum_theorem11(n, r, s, q)
        exact = prob_quorum_exact(n, r, s, q)
        assert bound <= exact + 1e-12

    def test_domain_requires_n_less_than_or(self):
        # o = s/q = 1.0, r = 50 -> o*r = 50 < n.
        with pytest.raises(AnalysisDomainError):
            prob_quorum_theorem11(100, 50, 20, 20)
        assert math.isnan(
            prob_quorum_theorem11(100, 50, 20, 20, strict=False)
        )

    def test_increases_with_r(self):
        values = [
            prob_quorum_theorem11(100, r, 34, 20) for r in (70, 80, 90, 100)
        ]
        assert values == sorted(values)


class TestCorollary2:
    def test_paper_constant(self):
        assert corollary2_constant(100, 20, 1.7) == pytest.approx(1.36)

    def test_formula(self):
        n, f, o, q = 100, 20, 1.7, 20
        c = 1.7 * 80 / 100
        expected = 1 - math.exp(-q * (c - 1) ** 2 / (2 * c))
        assert prob_quorum_corollary2(n, f, o, q) == pytest.approx(expected)

    def test_domain(self):
        # o*(n-f) <= n -> invalid.
        with pytest.raises(AnalysisDomainError):
            prob_quorum_corollary2(100, 50, 1.7, 20)

    def test_bound_below_exact(self):
        n, f, o, q = 100, 20, 1.7, 20
        s = math.ceil(o * q)
        bound = prob_quorum_corollary2(n, f, o, q)
        exact = prob_quorum_exact(n, n - f, s, q)
        assert bound <= exact + 1e-12


class TestTheorem2:
    def test_o_interval(self):
        lo, hi = theorem2_o_interval(100, 20)
        assert lo >= 1.0
        assert hi == pytest.approx((2 + math.sqrt(3)) * 100 / 80)

    def test_paper_o_values_admissible(self):
        lo, hi = theorem2_o_interval(100, 20)
        for o in (1.6, 1.7, 1.8):
            assert lo <= o <= hi

    def test_bound_outside_domain(self):
        with pytest.raises(AnalysisDomainError):
            prob_quorum_theorem2(100, 20, 2.0, 10.0)

    def test_premise_check(self):
        # With o=1.7, n=100, f=20: c=1.36, 2c/(c-1)^2 = 2.72/0.1296 = ~21 > l=2,
        # so the exp(-sqrt(n)) floor is NOT guaranteed at these parameters.
        assert not theorem2_premise_holds(100, 20, 2.0, 1.7)
        # With much bigger o the premise can hold: c = o(n-f)/n must satisfy
        # 2c/(c-1)^2 <= l, i.e. c >= (3+sqrt(5))/2 ~ 2.618 -> o >= ~3.27.
        assert theorem2_premise_holds(100, 20, 2.0, 3.5)

    def test_probability_increases_with_o(self):
        values = [
            prob_quorum_theorem2(100, 20, 2.0, o) for o in (1.5, 1.7, 2.0, 2.5)
        ]
        assert values == sorted(values)


class TestExact:
    def test_exact_matches_direct_formula(self):
        from scipy import stats

        n, r, s, q = 100, 80, 34, 20
        assert prob_quorum_exact(n, r, s, q) == pytest.approx(
            float(stats.binom.sf(q - 1, r, s / n))
        )

    def test_exact_config_uses_integer_sizes(self):
        # n=100, f=20, o=1.7, l=2 -> q=20, s=34.
        assert prob_quorum_exact_config(100, 20, 1.7, 2.0) == pytest.approx(
            prob_quorum_exact(100, 80, 34, 20)
        )

    def test_theorem6_monotonicity(self):
        """Theorem 6: quorum probability directly proportional to r."""
        probs = theorem6_monotone_in_r(100, 34, 20, range(40, 101, 10))
        assert probs == sorted(probs)
        assert probs[-1] > probs[0]
