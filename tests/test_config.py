"""Tests for repro.config."""

import math

import pytest

from repro.config import (
    ProtocolConfig,
    deterministic_quorum_size,
    max_faults,
    probabilistic_quorum_size,
    theorem2_o_upper_bound,
    vrf_sample_size,
)
from repro.errors import ConfigError


class TestMaxFaults:
    def test_small_systems(self):
        assert max_faults(4) == 1
        assert max_faults(7) == 2
        assert max_faults(10) == 3

    def test_boundary(self):
        # f < n/3 strictly: n = 3f+1 is the minimum for a given f.
        assert max_faults(3) == 0
        assert max_faults(6) == 1

    def test_invalid_n(self):
        with pytest.raises(ConfigError):
            max_faults(0)


class TestQuorumSizes:
    def test_deterministic_quorum_paper_example(self):
        # Paper example: PBFT with n=100, f=33 needs 67 messages (§1).
        assert deterministic_quorum_size(100, 33) == 67

    def test_deterministic_quorum_formula(self):
        assert deterministic_quorum_size(10, 3) == 7
        assert deterministic_quorum_size(4, 1) == 3

    def test_probabilistic_quorum_paper_example(self):
        # Paper example: l=2 and n=100 -> 20 matching messages (§1).
        assert probabilistic_quorum_size(100, 2.0) == 20

    def test_probabilistic_quorum_rounds_up(self):
        assert probabilistic_quorum_size(10, 2.0) == math.ceil(2 * math.sqrt(10))

    def test_sample_size_capped_at_n(self):
        assert vrf_sample_size(8, 6, 1.7) == 8
        assert vrf_sample_size(100, 20, 1.7) == 34


class TestProtocolConfig:
    def test_defaults_derive_f(self):
        cfg = ProtocolConfig(n=10)
        assert cfg.f == 3

    def test_paper_parameters(self):
        cfg = ProtocolConfig(n=100, f=20, l=2.0, o=1.7)
        assert cfg.q == 20
        assert cfg.sample_size == 34
        assert cfg.det_quorum == 61
        assert cfg.n_correct == 80

    def test_rejects_too_many_faults(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(n=9, f=3)

    def test_rejects_tiny_system(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(n=3)

    def test_rejects_negative_f(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(n=10, f=-1)

    def test_rejects_small_l_and_o(self):
        with pytest.raises(ConfigError):
            ProtocolConfig(n=10, l=0.5)
        with pytest.raises(ConfigError):
            ProtocolConfig(n=10, o=0.9)

    def test_with_params(self):
        cfg = ProtocolConfig(n=100, f=20)
        cfg2 = cfg.with_params(o=1.8)
        assert cfg2.o == 1.8
        assert cfg2.n == 100
        assert cfg.o == 1.7  # original untouched

    def test_seed_domain_default_empty(self):
        assert ProtocolConfig(n=10).seed_domain == ""

    def test_o_in_theorem2_range(self):
        cfg = ProtocolConfig(n=100, f=20, o=1.7)
        assert cfg.o_in_theorem2_range()
        hi = theorem2_o_upper_bound(100, 20)
        assert not cfg.with_params(o=hi + 0.1).o_in_theorem2_range()

    def test_theorem2_upper_bound_value(self):
        # (2 + sqrt(3)) * n / (n - f)
        assert theorem2_o_upper_bound(100, 20) == pytest.approx(
            (2 + math.sqrt(3)) * 100 / 80
        )

    def test_describe_mentions_sizes(self):
        text = ProtocolConfig(n=100, f=20).describe()
        assert "q=20" in text and "n=100" in text

    def test_frozen(self):
        cfg = ProtocolConfig(n=10)
        with pytest.raises(Exception):
            cfg.n = 20


class TestLivenessFaultTolerance:
    def test_small_n_liveness_gap(self):
        """At n=7, q=6 exceeds n-f=5: only one silent replica is tolerable
        without losing quorum attainability (found by property testing)."""
        cfg = ProtocolConfig(n=7, f=2)
        assert cfg.q == 6
        assert not cfg.quorums_attainable_under_max_faults()
        assert cfg.liveness_fault_tolerance == 1

    def test_paper_scale_has_no_gap(self):
        cfg = ProtocolConfig(n=100, f=33)
        assert cfg.quorums_attainable_under_max_faults()
        assert cfg.liveness_fault_tolerance == 33

    def test_silent_adversary_at_the_gap_stalls_liveness_not_safety(self):
        """Demonstrate the gap: n=7 with two silent replicas never decides
        (quorums unattainable) but never violates safety either."""
        from repro.adversary.behaviors import silent_factory
        from repro.core.protocol import ProBFTDeployment
        from repro.sync.timeouts import FixedTimeout

        cfg = ProtocolConfig(n=7, f=2)
        dep = ProBFTDeployment(
            cfg,
            timeout_policy=FixedTimeout(10.0),
            byzantine={5: silent_factory(), 6: silent_factory()},
        )
        dep.run(max_time=300)
        assert not dep.all_correct_decided()  # stuck: q=6 > 5 senders
        assert dep.agreement_ok  # but still safe


class TestSimTuning:
    """The simulator's performance knobs live in config; defaults must pin
    the historical hard-coded values so existing runs reproduce bit for bit."""

    def test_defaults_pin_historical_constants(self):
        from repro.config import DEFAULT_SIM_TUNING, SimTuning
        from repro.net.simulator import Simulator

        tuning = SimTuning()
        assert tuning.compact_floor == 64 == Simulator._COMPACT_FLOOR
        assert tuning.bucket_threshold == 1024
        assert DEFAULT_SIM_TUNING == tuning
        # A default-constructed simulator reads exactly these values.
        sim = Simulator()
        assert sim._compact_floor == tuning.compact_floor
        assert sim._bucket_threshold == tuning.bucket_threshold

    def test_overrides_are_honored_per_simulator(self):
        from repro.net.simulator import Simulator

        sim = Simulator(compact_floor=8, bucket_threshold=32)
        assert sim._compact_floor == 8
        assert sim._bucket_threshold == 32

    def test_invalid_tuning_rejected(self):
        import pytest

        from repro.config import SimTuning
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            SimTuning(compact_floor=0)
        with pytest.raises(ConfigError):
            SimTuning(bucket_threshold=0)
