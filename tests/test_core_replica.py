"""Unit tests for the ProBFT replica state machine.

These drive a single replica (or a tiny cluster) directly, asserting on the
internal state transitions of Algorithm 1.
"""

import pytest

from repro.core.protocol import ProBFTDeployment
from repro.core.replica import ProBFTReplica
from repro.messages.probft import Commit, Prepare
from repro.net.latency import ConstantLatency
from repro.sync.timeouts import FixedTimeout

from .helpers import (
    make_commit,
    make_crypto,
    make_prepare,
    make_propose,
    make_statement,
    saturated_config,
)


def make_cluster(cfg=None, seed=0):
    cfg = cfg or saturated_config()
    return ProBFTDeployment(
        cfg, seed=seed, latency=ConstantLatency(1.0),
        timeout_policy=FixedTimeout(1000.0),
    )


class TestVoting:
    def test_replica_votes_once_per_view(self):
        dep = make_cluster()
        dep.start()
        replica: ProBFTReplica = dep.replicas[3]
        crypto = dep.crypto
        cfg = dep.config
        p1 = make_propose(crypto, cfg, view=1, value=b"value-0")
        replica.on_message(0, p1)
        assert replica._voted
        assert replica._cur_val == b"value-0"
        before = dep.network.stats.sent_by_replica[3]
        replica.on_message(0, p1)  # duplicate: no second Prepare
        assert dep.network.stats.sent_by_replica[3] == before

    def test_unsafe_proposal_ignored(self):
        dep = make_cluster()
        dep.start()
        replica = dep.replicas[3]
        bad = make_propose(dep.crypto, dep.config, view=1, value=b"x", signer=2)
        replica.on_message(2, bad)
        assert not replica._voted

    def test_prepare_sent_to_vrf_sample(self):
        cfg = saturated_config()
        dep = make_cluster(cfg)
        dep.start()
        replica = dep.replicas[3]
        p = make_propose(dep.crypto, cfg, view=1, value=b"v")
        replica.on_message(0, p)
        # Saturated config: the sample is all n replicas; n-1 network sends.
        assert dep.network.stats.sent("Prepare") == cfg.n - 1


class TestPreparedState:
    def test_prepare_quorum_sets_prepared_state(self):
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        statement = make_statement(crypto, cfg, 1, b"v")
        replica.on_message(0, make_propose(crypto, cfg, 1, b"v"))
        for sender in range(cfg.q):
            replica.on_message(sender, make_prepare(crypto, cfg, sender, statement))
        assert replica.prepared_view == 1
        assert replica.prepared_value == b"v"
        assert len(replica._cert) == cfg.q

    def test_prepare_quorum_before_vote_buffered(self):
        """Prepares arriving before the Propose still count after voting."""
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        statement = make_statement(crypto, cfg, 1, b"v")
        for sender in range(cfg.q):
            replica.on_message(sender, make_prepare(crypto, cfg, sender, statement))
        assert replica.prepared_view == 0  # not voted yet
        replica.on_message(0, make_propose(crypto, cfg, 1, b"v"))
        assert replica.prepared_view == 1

    def test_mismatched_value_prepares_do_not_fire(self):
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        # Proposal for one value, prepares for another can't exist for a
        # correct leader — simulate votes for the SAME leader value but
        # check collection is value-keyed by sending fewer than q for it.
        replica.on_message(0, make_propose(crypto, cfg, 1, b"v"))
        statement = make_statement(crypto, cfg, 1, b"v")
        for sender in range(cfg.q - 1):
            replica.on_message(sender, make_prepare(crypto, cfg, sender, statement))
        assert replica.prepared_view == 0

    def test_duplicate_prepare_senders_not_double_counted(self):
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        replica.on_message(0, make_propose(crypto, cfg, 1, b"v"))
        statement = make_statement(crypto, cfg, 1, b"v")
        vote = make_prepare(crypto, cfg, 0, statement)
        for _ in range(cfg.q + 3):
            replica.on_message(0, vote)
        assert replica.prepared_view == 0


class TestDeciding:
    def test_commit_quorum_decides(self):
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        statement = make_statement(crypto, cfg, 1, b"v")
        replica.on_message(0, make_propose(crypto, cfg, 1, b"v"))
        for sender in range(cfg.q):
            replica.on_message(sender, make_prepare(crypto, cfg, sender, statement))
        for sender in range(cfg.q):
            replica.on_message(sender, make_commit(crypto, cfg, sender, statement))
        assert replica.decision is not None
        assert replica.decision.value == b"v"
        assert replica.decision.view == 1

    def test_no_decision_without_own_prepared_state(self):
        """Commit quorum alone is insufficient (line 21 precondition)."""
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        statement = make_statement(crypto, cfg, 1, b"v")
        replica.on_message(0, make_propose(crypto, cfg, 1, b"v"))
        for sender in range(cfg.q):
            replica.on_message(sender, make_commit(crypto, cfg, sender, statement))
        assert replica.decision is None  # never prepared

    def test_decides_once(self):
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        statement = make_statement(crypto, cfg, 1, b"v")
        replica.on_message(0, make_propose(crypto, cfg, 1, b"v"))
        for sender in range(cfg.q + 2):
            replica.on_message(sender, make_prepare(crypto, cfg, sender, statement))
            replica.on_message(sender, make_commit(crypto, cfg, sender, statement))
        first = replica.decision
        for sender in range(cfg.q + 2, cfg.n):
            replica.on_message(sender, make_commit(crypto, cfg, sender, statement))
        assert replica.decision is first


class TestVoteValidation:
    @pytest.fixture
    def armed(self):
        dep = make_cluster()
        dep.start()
        replica = dep.replicas[3]
        replica.on_message(
            0, make_propose(dep.crypto, dep.config, 1, b"v")
        )
        return dep, replica

    def test_vote_with_forged_vrf_rejected(self, armed):
        from dataclasses import replace

        dep, replica = armed
        cfg, crypto = dep.config, dep.crypto
        statement = make_statement(crypto, cfg, 1, b"v")
        good = make_prepare(crypto, cfg, 1, statement)
        prepare: Prepare = good.payload
        forged_sample = replace(prepare.sample, proof=b"\x00" * 32)
        forged = crypto.signatures.sign(
            1, Prepare(statement=statement, sample=forged_sample)
        )
        for _ in range(cfg.q + 1):
            replica.on_message(1, forged)
        assert replica.prepared_view == 0

    def test_vote_with_bad_outer_signature_rejected(self, armed):
        from dataclasses import replace

        dep, replica = armed
        cfg, crypto = dep.config, dep.crypto
        statement = make_statement(crypto, cfg, 1, b"v")
        votes = [make_prepare(crypto, cfg, s, statement) for s in range(cfg.q)]
        votes[0] = replace(votes[0], signature=b"\x00" * 32)
        for i, v in enumerate(votes):
            replica.on_message(i, v)
        assert replica.prepared_view == 0

    def test_vote_with_non_leader_statement_rejected(self, armed):
        dep, replica = armed
        cfg, crypto = dep.config, dep.crypto
        bogus_statement = make_statement(crypto, cfg, 1, b"v", signer=5)
        for sender in range(cfg.q):
            replica.on_message(
                sender, make_prepare(crypto, cfg, sender, bogus_statement)
            )
        assert replica.prepared_view == 0

    def test_stale_view_votes_dropped(self, armed):
        dep, replica = armed
        cfg, crypto = dep.config, dep.crypto
        # Force the replica into view 2, then replay view-1 votes.
        replica._on_new_view(2)
        statement = make_statement(crypto, cfg, 1, b"v")
        for sender in range(cfg.q):
            replica.on_message(sender, make_prepare(crypto, cfg, sender, statement))
        assert replica.prepared_view == 0


class TestEquivocationDetection:
    def test_conflicting_proposal_blocks_view(self):
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        replica.on_message(0, make_propose(crypto, cfg, 1, b"a"))
        assert not replica.view_blocked
        replica.on_message(0, make_propose(crypto, cfg, 1, b"b"))
        assert replica.view_blocked

    def test_conflicting_prepare_blocks_view(self):
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        replica.on_message(0, make_propose(crypto, cfg, 1, b"a"))
        other_statement = make_statement(crypto, cfg, 1, b"b")
        replica.on_message(5, make_prepare(crypto, cfg, 5, other_statement))
        assert replica.view_blocked

    def test_blocked_view_stops_participation(self):
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        statement_a = make_statement(crypto, cfg, 1, b"a")
        replica.on_message(0, make_propose(crypto, cfg, 1, b"a"))
        replica.on_message(0, make_propose(crypto, cfg, 1, b"b"))
        for sender in range(cfg.q):
            replica.on_message(sender, make_prepare(crypto, cfg, sender, statement_a))
        assert replica.prepared_view == 0  # blocked: no prepared certificate
        assert replica.decision is None

    def test_evidence_broadcast_on_block(self):
        dep = make_cluster()
        dep.start()
        cfg = dep.config
        replica = dep.replicas[3]
        replica.on_message(0, make_propose(dep.crypto, cfg, 1, b"a"))
        before = dep.network.stats.sent_by_replica[3]
        replica.on_message(0, make_propose(dep.crypto, cfg, 1, b"b"))
        # Two broadcasts (the offending message + own proposal) = 2(n-1).
        assert dep.network.stats.sent_by_replica[3] == before + 2 * (cfg.n - 1)

    def test_same_value_does_not_block(self):
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        replica.on_message(0, make_propose(crypto, cfg, 1, b"a"))
        statement = make_statement(crypto, cfg, 1, b"a")
        replica.on_message(4, make_prepare(crypto, cfg, 4, statement))
        assert not replica.view_blocked

    def test_unvoted_replica_does_not_block(self):
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        statement_b = make_statement(crypto, cfg, 1, b"b")
        replica.on_message(5, make_prepare(crypto, cfg, 5, statement_b))
        assert not replica.view_blocked  # line 23 requires voted = true

    def test_new_view_clears_block(self):
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        replica.on_message(0, make_propose(crypto, cfg, 1, b"a"))
        replica.on_message(0, make_propose(crypto, cfg, 1, b"b"))
        assert replica.view_blocked
        replica._on_new_view(2)
        assert not replica.view_blocked


class TestFutureBuffering:
    def test_future_view_messages_replayed(self):
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        # Deliver a view-2 NewLeader-phase Propose while in view 1.
        from .helpers import quorum_new_leaders

        justification = quorum_new_leaders(crypto, cfg, view=2)
        p2 = make_propose(crypto, cfg, 2, b"later", justification=justification)
        replica.on_message(1, p2)
        assert not replica._voted
        replica._on_new_view(2)
        dep.sim.run(until=dep.sim.now + 1.0)
        assert replica._voted
        assert replica._cur_val == b"later"

    def test_far_future_views_dropped(self):
        dep = make_cluster()
        dep.start()
        cfg, crypto = dep.config, dep.crypto
        replica = dep.replicas[3]
        p9 = make_propose(crypto, cfg, 9, b"far", justification=None)
        replica.on_message(0, p9)
        assert 9 not in replica._future_buffer
