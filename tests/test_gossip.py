"""Sample-based gossip dissemination: reachability, identity, adversaries.

Three contract layers for :mod:`repro.net.gossip`:

* **Gossip off is dense** — a ``DeploymentSpec`` round-tripped through
  ``with_gossip(True).with_gossip(False)`` produces bit-identical
  :class:`~repro.harness.trial.RunResult`\\ s on every protocol x adversary
  cell of the harness matrix, and explicitly passing
  ``dissemination="dense"`` equals omitting the kwarg entirely.
* **Gossip on is a working dissemination layer** — deterministic per seed,
  reaches every correct replica w.h.p. with O(log n) per-node fan-out, and
  trials still decide with agreement across the adversary cells.
* **Adversaries are gossip-aware** — an equivocating leader originates one
  restricted dissemination *per partition* (first hop exactly its target
  group, in order), honest relays leak the conflict across partitions, and
  the sparse observation policy sees through envelopes to flag the view.
"""

from __future__ import annotations

import pytest

from repro.config import ProtocolConfig
from repro.core.leader import leader_of_view
from repro.errors import ConfigError
from repro.harness.registry import ADVERSARIES, MatrixCell, cell_deployment_spec
from repro.harness.trial import DeploymentSpec, run_trial
from repro.net.gossip import (
    GossipDisseminator,
    GossipEnvelope,
    default_fanout,
    default_rounds,
)
from repro.net.network import Network
from repro.net.simulator import Simulator

MAX_TIME = 600.0


class _RecordingNetwork:
    """Just enough of ``Network`` for disseminator unit tests."""

    def __init__(self) -> None:
        self.sent = []  # (src, dst, message)

    def send(self, src, dst, message) -> None:
        self.sent.append((src, dst, message))


def _probft_cells(latency: str = "constant"):
    for adversary in ADVERSARIES:
        cell = MatrixCell(
            protocol="probft",
            adversary=adversary,
            latency=latency,
            n=14,
            f=2,
            track_bytes=True,
        )
        if cell.supported:
            yield cell


def _all_cells(latency: str = "constant"):
    for protocol in ("probft", "pbft", "hotstuff"):
        for adversary in ADVERSARIES:
            cell = MatrixCell(
                protocol=protocol,
                adversary=adversary,
                latency=latency,
                n=14,
                f=2,
                track_bytes=True,
            )
            if cell.supported:
                yield cell


# ----------------------------------------------------------------------
# Defaults and validation
# ----------------------------------------------------------------------


class TestKnobs:
    def test_default_fanout_and_rounds_are_logarithmic(self):
        assert default_fanout(2) == 3
        assert default_fanout(50) == 8  # ceil(log2 50)=6, +2
        assert default_fanout(1024) == 12
        assert default_rounds(50) == 8
        assert default_rounds(5000) == 15  # ceil(log2 5000)=13, +2

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigError):
            GossipDisseminator(_RecordingNetwork(), 50, 0, fanout=0)
        with pytest.raises(ConfigError):
            GossipDisseminator(_RecordingNetwork(), 50, 0, rounds=0)
        from repro.core.protocol import ProBFTDeployment

        with pytest.raises(ValueError):
            ProBFTDeployment(
                ProtocolConfig(n=14, f=2), dissemination="carrier-pigeon"
            )
        # Valid modes construct fine.
        ProBFTDeployment(ProtocolConfig(n=14, f=2), dissemination="gossip")


# ----------------------------------------------------------------------
# Disseminator unit behaviour
# ----------------------------------------------------------------------


class TestDisseminator:
    def test_samples_are_pure_functions_of_seed_key_node_ttl(self):
        net = _RecordingNetwork()
        d1 = GossipDisseminator(net, 100, seed=7)
        d2 = GossipDisseminator(net, 100, seed=7)
        d3 = GossipDisseminator(net, 100, seed=8)
        key = (0, 0)
        assert d1.sample_for(5, key, 3) == d2.sample_for(5, key, 3)
        assert d1.sample_for(5, key, 3) != d1.sample_for(5, key, 2)
        assert d1.sample_for(5, key, 3) != d1.sample_for(6, key, 3)
        assert d1.sample_for(5, key, 3) != d3.sample_for(5, key, 3)
        sample = d1.sample_for(5, key, 3)
        assert len(sample) == d1.fanout
        assert 5 not in sample
        assert len(set(sample)) == len(sample)

    def test_restrict_shapes_first_hop_exactly_and_in_order(self):
        net = _RecordingNetwork()
        d = GossipDisseminator(net, 20, seed=0)
        key = d.disseminate(3, "payload", restrict=[9, 1, 3, 14])
        # Origin excluded, everyone else in the given order.
        assert [(src, dst) for src, dst, _ in net.sent] == [
            (3, 9),
            (3, 1),
            (3, 14),
        ]
        for _, _, env in net.sent:
            assert isinstance(env, GossipEnvelope)
            assert env.key == key
            assert env.payload == "payload"
            assert env.ttl == d.rounds - 1

    def test_distinct_disseminations_get_distinct_keys(self):
        net = _RecordingNetwork()
        d = GossipDisseminator(net, 20, seed=0)
        k1 = d.disseminate(3, "a")
        k2 = d.disseminate(3, "b")
        k3 = d.disseminate(4, "c")
        assert k1 == (3, 0) and k2 == (3, 1) and k3 == (4, 0)

    def test_duplicate_receipt_delivers_but_never_reforwards(self):
        net = _RecordingNetwork()
        d = GossipDisseminator(net, 20, seed=0, fanout=4, rounds=4)
        env = GossipEnvelope(payload="p", key=(0, 0), ttl=2)
        assert d.on_receive(5, env) == "p"
        first = len(net.sent)
        assert first == 4  # relayed once
        assert all(env2.ttl == 1 for _, _, env2 in net.sent)
        assert d.on_receive(5, env) == "p"  # duplicate copy
        assert len(net.sent) == first  # no new sends
        assert d.coverage((0, 0)) == 1

    def test_ttl_zero_and_byzantine_recipients_do_not_relay(self):
        net = _RecordingNetwork()
        d = GossipDisseminator(net, 20, seed=0, byzantine_ids={7})
        d.on_receive(5, GossipEnvelope(payload="p", key=(0, 0), ttl=0))
        d.on_receive(7, GossipEnvelope(payload="p", key=(0, 1), ttl=5))
        assert net.sent == []
        # Both receipts still count as deliveries.
        assert d.coverage((0, 0)) == 1 and d.coverage((0, 1)) == 1

    def test_wrap_handler_unwraps_gossip_and_passes_rest_through(self):
        net = _RecordingNetwork()
        d = GossipDisseminator(net, 20, seed=0)
        seen = []
        deliver = d.wrap_handler(5, lambda src, msg: seen.append((src, msg)))
        deliver(2, GossipEnvelope(payload="inner", key=(2, 0), ttl=0))
        deliver(3, "plain")
        assert seen == [(2, "inner"), (3, "plain")]


# ----------------------------------------------------------------------
# Reachability w.h.p. over a real simulated network
# ----------------------------------------------------------------------


class TestReachability:
    @pytest.mark.parametrize("n", [50, 200])
    def test_default_knobs_reach_every_node(self, n):
        """Seeded disseminations reach all ``n`` nodes under the default
        ``⌈log2 n⌉+2`` fan-out/round budget (w.h.p.; seeds are pinned, so
        this is deterministic in-test)."""
        for seed in range(5):
            sim = Simulator()
            net = Network(sim, n)
            d = GossipDisseminator(net, n, seed=seed)
            for r in range(n):
                net.register(r, d.wrap_handler(r, lambda src, msg: None))
            key = d.disseminate(0, b"proposal")
            sim.run()
            # Every node except possibly the (already-informed) origin must
            # have received a copy; echoes usually cover the origin too.
            assert d.coverage(key) >= n - 1, (n, seed, d.coverage(key))

    def test_per_node_fanout_is_logarithmic_not_linear(self):
        n = 200
        sim = Simulator()
        net = Network(sim, n)
        d = GossipDisseminator(net, n, seed=3)
        sends_by_src = {r: 0 for r in range(n)}
        original_send = net.send

        def counting_send(src, dst, message):
            sends_by_src[src] += 1
            original_send(src, dst, message)

        net.send = counting_send  # type: ignore[method-assign]
        d._network = net
        for r in range(n):
            net.register(r, d.wrap_handler(r, lambda src, msg: None))
        d.disseminate(0, b"proposal")
        sim.run()
        # The dense broadcast this replaces costs the origin n-1 sends; under
        # gossip no node (origin included) exceeds its fan-out budget.
        assert max(sends_by_src.values()) <= d.fanout
        assert sends_by_src[0] == d.fanout


# ----------------------------------------------------------------------
# Gossip-off bit-identity across the harness matrix
# ----------------------------------------------------------------------


class TestGossipOffIdentity:
    def test_round_trip_spec_is_dense_on_every_cell(self):
        """``with_gossip(True).with_gossip(False)`` == never-gossip, as full
        RunResult equality over every protocol x adversary cell."""
        checked = 0
        for cell in _all_cells():
            for seed in (0, 1):
                plain = run_trial(
                    cell_deployment_spec(cell, seed=seed, max_time=MAX_TIME)
                )
                off = run_trial(
                    cell_deployment_spec(cell, seed=seed, max_time=MAX_TIME)
                    .with_gossip(True)
                    .with_gossip(False)
                )
                assert plain == off, (cell.label, seed)
                checked += 1
        assert checked > 0

    def test_explicit_dense_kwarg_equals_omitted(self):
        """Forwarding ``dissemination="dense"`` explicitly changes nothing
        (the spec's only-when-set contract is an optimization, not load-
        bearing semantics)."""
        for cell in _probft_cells():
            spec = cell_deployment_spec(cell, seed=0, max_time=MAX_TIME)
            explicit = run_trial(
                type(spec)(
                    **{
                        **{
                            f: getattr(spec, f)
                            for f in spec.__dataclass_fields__
                        },
                        "extra": spec.extra + (("dissemination", "dense"),),
                    }
                )
            )
            assert run_trial(spec) == explicit, cell.label

    def test_with_gossip_round_trip_fields(self):
        spec = DeploymentSpec(protocol="probft", config=ProtocolConfig(n=14, f=2))
        g = spec.with_gossip(True, fanout=6, rounds=4)
        assert (g.dissemination, g.gossip_fanout, g.gossip_rounds) == (
            "gossip",
            6,
            4,
        )
        back = g.with_gossip(False)
        assert (back.dissemination, back.gossip_fanout, back.gossip_rounds) == (
            "dense",
            None,
            None,
        )
        # Non-destructive.
        assert spec.dissemination == "dense"


# ----------------------------------------------------------------------
# Gossip-on behaviour across adversary cells
# ----------------------------------------------------------------------


class TestGossipOn:
    def test_deterministic_and_safe_on_every_probft_cell(self):
        """Gossip trials are bit-reproducible per seed and keep agreement
        on every adversary cell, in both dense and sparse delivery modes."""
        for cell in _probft_cells():
            for seed in (0, 1):
                first = run_trial(
                    cell_deployment_spec(cell, seed=seed, max_time=MAX_TIME)
                    .with_gossip(True)
                )
                again = run_trial(
                    cell_deployment_spec(cell, seed=seed, max_time=MAX_TIME)
                    .with_gossip(True)
                )
                assert first == again, (cell.label, seed)
                assert first.agreement_ok, (cell.label, seed)
                sparse = run_trial(
                    cell_deployment_spec(cell, seed=seed, max_time=MAX_TIME)
                    .with_gossip(True)
                    .with_sparse()
                )
                assert sparse == first, (cell.label, seed)

    def test_benign_gossip_trial_decides_at_n50(self):
        spec = DeploymentSpec(
            protocol="probft",
            config=ProtocolConfig(n=50, f=9),
            seed=7,
            max_time=300.0,
        ).with_gossip(True)
        result = run_trial(spec)
        assert result.all_decided and result.agreement_ok
        # The proposal travelled as envelopes, not a dense broadcast.
        assert result.messages_by_type.get("GossipEnvelope", 0) > 0
        assert "Propose" not in result.messages_by_type


# ----------------------------------------------------------------------
# Equivocation under gossip
# ----------------------------------------------------------------------


class TestEquivocationUnderGossip:
    def _equivocation_deployment(self, seed: int, sparse: bool):
        cell = MatrixCell(
            protocol="probft",
            adversary="equivocation",
            latency="constant",
            n=14,
            f=2,
            track_bytes=False,
        )
        spec = cell_deployment_spec(cell, seed=seed, max_time=MAX_TIME).with_gossip(
            True
        )
        if sparse:
            spec = spec.with_sparse()
        deployment = spec.build()
        deployment.run(max_time=MAX_TIME)
        return deployment

    def test_leader_equivocates_per_dissemination(self):
        """Each conflicting proposal is its own restricted dissemination:
        the leader's origin shows one gossip key per partition."""
        deployment = self._equivocation_deployment(seed=0, sparse=False)
        leader = leader_of_view(1, deployment.config.n)
        leader_keys = {
            seq for (origin, seq) in deployment.disseminator.delivered if origin == leader
        }
        assert leader_keys == {0, 1}

    def test_honest_relays_leak_conflict_across_partitions(self):
        """Under gossip the conflicting proposals escape their partitions:
        both disseminations reach (well) beyond their restricted first hop."""
        deployment = self._equivocation_deployment(seed=0, sparse=False)
        leader = leader_of_view(1, deployment.config.n)
        n = deployment.config.n
        for origin, seq in list(deployment.disseminator.delivered):
            if origin != leader:
                continue
            coverage = deployment.disseminator.coverage((origin, seq))
            # Each optimal-split partition is about half the correct
            # replicas; relays must have carried the proposal further.
            assert coverage > n // 2, (seq, coverage)
        assert deployment.agreement_ok

    def test_sparse_policy_flags_view_through_envelopes(self):
        """The observation policy unwraps gossip hops, so the equivocal-view
        flag fires exactly as it does for dense unicast equivocation."""
        deployment = self._equivocation_deployment(seed=0, sparse=True)
        assert 1 in deployment.network.delivery_policy.equivocal_views
        assert deployment.agreement_ok
