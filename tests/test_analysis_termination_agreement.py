"""Tests for the termination and agreement analyses (Figure 5)."""

import math

import pytest

from repro.analysis import agreement as A
from repro.analysis import termination as T
from repro.errors import AnalysisDomainError


class TestTerminationBounds:
    def test_alpha_formula(self):
        # alpha = (s/n)(n-f)(1 - exp(-sqrt(n))).
        a = T.alpha(100, 20, 34)
        assert a == pytest.approx(0.34 * 80 * (1 - math.exp(-10.0)))

    def test_lemma3_domain(self):
        # Tiny o -> alpha < q -> out of domain.
        with pytest.raises(AnalysisDomainError):
            T.lemma3_commit_quorum_prob(100, 33, 1.0, 2.0)
        assert math.isnan(
            T.lemma3_commit_quorum_prob(100, 33, 1.0, 2.0, strict=False)
        )

    def test_lemma4_below_lemma3(self):
        l3 = T.lemma3_commit_quorum_prob(100, 20, 1.7, 2.0)
        l4 = T.lemma4_replica_terminates(100, 20, 1.7, 2.0)
        assert l4 <= l3

    def test_theorem15_below_lemma4(self):
        """Union bound over all replicas is weaker than per-replica."""
        l4 = T.lemma4_replica_terminates(100, 20, 1.7, 2.0)
        t15 = T.theorem15_all_terminate(100, 20, 1.7, 2.0)
        assert t15 <= l4

    def test_theorem3_asymptotic_close_to_one_for_large_n(self):
        assert T.theorem3_asymptotic(400, 80) > 0.999

    def test_paper_bound_below_exact(self):
        """The closed-form bound must not exceed the exact chain value."""
        for n, f in [(100, 20), (200, 40), (300, 60)]:
            paper = T.lemma4_replica_terminates(n, f, 1.7, 2.0)
            exact = T.replica_terminates_exact(n, f, 1.7, 2.0)
            assert paper <= exact + 1e-9


class TestTerminationExact:
    def test_prepare_quorum_probability(self):
        p = T.prepare_quorum_exact(100, 20, 1.7, 2.0)
        assert 0.9 < p < 1.0

    def test_termination_below_prepare_quorum(self):
        prep = T.prepare_quorum_exact(100, 20, 1.7, 2.0)
        term = T.replica_terminates_exact(100, 20, 1.7, 2.0)
        assert term <= prep

    def test_figure5_shape_increasing_in_n(self):
        """Figure 5 top-right: termination probability grows with n."""
        rows = T.termination_curve_vs_n([100, 200, 300], 0.2, 1.7)
        exacts = [exact for _n, _paper, exact in rows]
        assert exacts == sorted(exacts)

    def test_figure5_shape_decreasing_in_f(self):
        """Figure 5 bottom-right: termination decreases with f/n."""
        rows = T.termination_curve_vs_f(100, [0.1, 0.2, 0.3], 1.7)
        exacts = [exact for _r, _paper, exact in rows]
        assert exacts == sorted(exacts, reverse=True)

    def test_higher_o_higher_termination(self):
        t_low = T.replica_terminates_exact(100, 20, 1.6, 2.0)
        t_high = T.replica_terminates_exact(100, 20, 1.8, 2.0)
        assert t_high > t_low

    def test_all_terminate_methods(self):
        prod = T.all_terminate_exact(100, 20, 1.7, 2.0, method="product")
        union = T.all_terminate_exact(100, 20, 1.7, 2.0, method="union")
        per = T.replica_terminates_exact(100, 20, 1.7, 2.0)
        assert prod <= per
        assert union <= per
        with pytest.raises(ValueError):
            T.all_terminate_exact(100, 20, 1.7, 2.0, method="bogus")

    def test_decide_within_views(self):
        p = 0.9
        assert T.decide_within_views(p, 1) == pytest.approx(0.9)
        assert T.decide_within_views(p, 3) == pytest.approx(1 - 0.1**3)
        # Theorem 4: with infinite correct-leader views, decision is certain.
        assert T.decide_within_views(0.1, 500) == pytest.approx(1.0)


class TestAgreementBounds:
    def test_optimal_split_sizes(self):
        assert A.optimal_side_senders(100, 20) == 60
        assert A.optimal_side_correct(100, 20) == 40

    def test_lemma5_domain(self):
        # o=1.7, r=60 -> o*r = 102 > 100: outside.
        with pytest.raises(AnalysisDomainError):
            A.lemma5_side_quorum_bound(100, 20, 1.7, 2.0)
        # o=1.6, r=60 -> 96 <= 100: inside.
        value = A.lemma5_side_quorum_bound(100, 20, 1.6, 2.0)
        assert 0 < value < 1

    def test_theorem7_is_fourth_power(self):
        inner = A.lemma5_side_quorum_bound(100, 20, 1.6, 2.0)
        assert A.theorem7_violation_bound(100, 20, 1.6, 2.0) == pytest.approx(
            inner**4
        )

    def test_lemma6_decreases_with_fewer_preparers(self):
        few = A.lemma6_decide_bound(100, 20, 1.6, 2.0, r=30)
        more = A.lemma6_decide_bound(100, 20, 1.6, 2.0, r=55)
        assert few < more

    def test_theorem8_formula_and_domain(self):
        value = A.theorem8_viewchange_bound(100, 20, 1.6, 2.0)
        delta = 2 * 100 / (1.6 * 120) - 1
        q = 20
        expected = min(
            1.0, 3 * math.exp(-q * delta**2 / ((delta + 1) * (delta + 2)))
        )
        assert value == pytest.approx(expected)
        with pytest.raises(AnalysisDomainError):
            A.theorem8_viewchange_bound(100, 20, 1.7, 2.0)  # o too large

    def test_corollary1_in_unit_interval(self):
        for o in (1.6, 1.7, 1.8):
            p = A.corollary1_safety(300, 60, o, 2.0)
            assert 0.0 <= p <= 1.0


class TestAgreementExact:
    def test_side_decide_small(self):
        p = A.side_decide_exact(100, 20, 1.7, 2.0)
        assert 0 < p < 0.2

    def test_pair_violation_is_square(self):
        side = A.side_decide_exact(100, 20, 1.7, 2.0)
        assert A.violation_exact_pair(100, 20, 1.7, 2.0) == pytest.approx(side**2)

    def test_any_variant_above_pair(self):
        assert A.violation_exact_any(100, 20, 1.7, 2.0) >= A.violation_exact_pair(
            100, 20, 1.7, 2.0
        )

    def test_figure5_shape_agreement_high(self):
        """Figure 5 left panels live in the 0.99..1 regime at f/n=0.2."""
        for n in (100, 200, 300):
            agree = A.agreement_in_view_exact(n, n // 5, 1.7, 2.0)
            assert agree > 0.99

    def test_figure5_shape_decreasing_in_f(self):
        rows = A.agreement_curve_vs_f(100, [0.1, 0.2, 0.3], 1.7)
        exacts = [exact for _r, _paper, exact in rows]
        assert exacts == sorted(exacts, reverse=True)

    def test_lower_o_better_agreement(self):
        low = A.agreement_in_view_exact(100, 20, 1.6, 2.0)
        high = A.agreement_in_view_exact(100, 20, 1.8, 2.0)
        assert low > high

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            A.agreement_in_view_exact(100, 20, 1.7, 2.0, variant="bogus")

    def test_theorem5_merging_increases_probability(self):
        before, after = A.theorem5_merging_increases_violation(
            100, 1.7, 2.0, [20, 25, 55]
        )
        assert after > before

    def test_theorem5_needs_three_groups(self):
        with pytest.raises(ValueError):
            A.theorem5_merging_increases_violation(100, 1.7, 2.0, [50, 50])
