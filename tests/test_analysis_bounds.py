"""Tests for the probability bounds (paper Appendix A)."""

import math

import pytest

from repro.analysis.bounds import (
    binom_pmf,
    binom_tail_ge,
    binom_tail_le,
    chernoff_lower_tail,
    chernoff_upper_tail,
    geometric_success_within,
    hypergeometric_tail,
)
from repro.errors import AnalysisDomainError


class TestChernoff:
    def test_lower_tail_formula(self):
        assert chernoff_lower_tail(100.0, 0.5) == pytest.approx(
            math.exp(-0.25 * 100 / 2)
        )

    def test_upper_tail_formula(self):
        assert chernoff_upper_tail(100.0, 0.5) == pytest.approx(
            math.exp(-0.25 * 100 / 2.5)
        )

    def test_lower_tail_domain(self):
        with pytest.raises(AnalysisDomainError):
            chernoff_lower_tail(10.0, 0.0)
        with pytest.raises(AnalysisDomainError):
            chernoff_lower_tail(10.0, 1.0)
        assert math.isnan(chernoff_lower_tail(10.0, 1.5, strict=False))

    def test_upper_tail_domain(self):
        with pytest.raises(AnalysisDomainError):
            chernoff_upper_tail(10.0, -0.1)

    def test_bounds_actually_bound_binomial_tails(self):
        """Chernoff must dominate the exact binomial tail."""
        r, p = 200, 0.3
        mean = r * p
        for delta in (0.1, 0.3, 0.5, 0.8):
            exact_low = binom_tail_le(r, p, int((1 - delta) * mean))
            assert exact_low <= chernoff_lower_tail(mean, delta) + 1e-12
            exact_high = binom_tail_ge(r, p, int(math.ceil((1 + delta) * mean)))
            assert exact_high <= chernoff_upper_tail(mean, delta) + 1e-12

    def test_tighter_for_larger_delta(self):
        b1 = chernoff_lower_tail(50.0, 0.2)
        b2 = chernoff_lower_tail(50.0, 0.6)
        assert b2 < b1


class TestHypergeometric:
    def test_formula(self):
        assert hypergeometric_tail(100, 30, 20, 0.1) == pytest.approx(
            math.exp(-2 * 20 * 0.01)
        )

    def test_domain(self):
        with pytest.raises(AnalysisDomainError):
            hypergeometric_tail(100, 30, 20, 0.5)  # t >= M/N
        with pytest.raises(AnalysisDomainError):
            hypergeometric_tail(100, 30, 20, 0.0)
        assert math.isnan(hypergeometric_tail(100, 30, 20, 0.5, strict=False))

    def test_invalid_population(self):
        with pytest.raises(AnalysisDomainError):
            hypergeometric_tail(0, 0, 0, 0.1)


class TestBinomialTails:
    def test_ge_le_complement(self):
        r, p = 50, 0.4
        for k in (0, 10, 25, 50):
            total = binom_tail_le(r, p, k - 1) + binom_tail_ge(r, p, k)
            assert total == pytest.approx(1.0)

    def test_edge_cases(self):
        assert binom_tail_ge(10, 0.5, 0) == 1.0
        assert binom_tail_ge(10, 0.5, 11) == 0.0
        assert binom_tail_le(10, 0.5, 10) == 1.0
        assert binom_tail_le(10, 0.5, -1) == 0.0

    def test_pmf_sums_to_one(self):
        total = sum(binom_pmf(20, 0.3, k) for k in range(21))
        assert total == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(AnalysisDomainError):
            binom_tail_ge(-1, 0.5, 0)
        with pytest.raises(AnalysisDomainError):
            binom_tail_ge(10, 1.5, 0)


class TestGeometric:
    def test_formula(self):
        assert geometric_success_within(0.5, 2) == pytest.approx(0.75)

    def test_limits(self):
        assert geometric_success_within(0.3, 0) == 0.0
        assert geometric_success_within(1.0, 1) == 1.0
        assert geometric_success_within(0.9, 100) == pytest.approx(1.0)

    def test_monotone_in_k(self):
        values = [geometric_success_within(0.2, k) for k in range(10)]
        assert values == sorted(values)

    def test_domain(self):
        with pytest.raises(AnalysisDomainError):
            geometric_success_within(1.5, 2)
