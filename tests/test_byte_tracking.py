"""Tests for communication-byte accounting."""

import pytest

from repro.adversary.behaviors import silent_factory
from repro.baselines.hotstuff.protocol import HotStuffDeployment
from repro.baselines.pbft.protocol import PbftDeployment
from repro.config import ProtocolConfig
from repro.core.protocol import ProBFTDeployment
from repro.harness.metrics import mean
from repro.harness.parallel import ExperimentEngine, TrialSpec, derive_seed
from repro.harness.registry import get_matrix, run_matrix, run_matrix_cell
from repro.harness.trial import DeploymentSpec, run_trial
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.sync.timeouts import FixedTimeout

DEPLOYMENTS = {
    "probft": ProBFTDeployment,
    "pbft": PbftDeployment,
    "hotstuff": HotStuffDeployment,
}


class TestByteTracking:
    def test_disabled_by_default(self):
        dep = ProBFTDeployment(ProtocolConfig(n=10, f=2))
        dep.run(max_time=500)
        assert dep.network.stats.bytes_total == 0

    def test_enabled_tracks_bytes(self):
        dep = ProBFTDeployment(ProtocolConfig(n=10, f=2), track_bytes=True)
        dep.run(max_time=500)
        stats = dep.network.stats
        assert stats.bytes_total > 0
        assert set(stats.bytes_by_type) == set(stats.sent_by_type)

    def test_sizes_are_canonical_encoding_lengths(self):
        from repro.crypto.hashing import stable_encode

        sim = Simulator()
        net = Network(sim, 2, track_bytes=True)
        net.register(1, lambda s, m: None)
        message = ("hello", 42)
        net.send(0, 1, message)
        assert net.stats.bytes_total == len(stable_encode(message))

    def test_size_cache_reused_for_broadcast(self):
        sim = Simulator()
        net = Network(sim, 5, track_bytes=True)
        for r in range(5):
            net.register(r, lambda s, m: None)
        message = ("payload",)
        net.broadcast(0, message)
        from repro.crypto.hashing import stable_encode

        assert net.stats.bytes_total == 4 * len(stable_encode(message))

    def test_size_cache_rechecks_identity_on_recycled_ids(self):
        """A recycled id() must never serve a dead message's size.

        CPython reuses addresses of freed objects, so a bare ``id -> size``
        cache can hand a new message the size of a dead one (observed as
        order-dependent byte totals).  The cache pins entries and re-checks
        identity; a planted stale entry must be recomputed, not served.
        """
        from repro.crypto.hashing import stable_encode

        sim = Simulator()
        net = Network(sim, 2, track_bytes=True)
        net.register(1, lambda s, m: None)
        old = ("long-dead-message-payload" * 4,)
        new = ("tiny",)
        # Simulate the collision: the cache holds `old` under new's id.
        net._size_cache[id(new)] = (old, len(stable_encode(old)))
        net.send(0, 1, new)
        assert net.stats.bytes_total == len(stable_encode(new))

    def test_size_cache_bounded(self):
        sim = Simulator()
        net = Network(sim, 2, track_bytes=True)
        net.register(1, lambda s, m: None)
        for i in range(net._SIZE_CACHE_LIMIT + 50):
            net.send(0, 1, ("msg", i))
        assert len(net._size_cache) <= net._SIZE_CACHE_LIMIT

    def test_unencodable_message_counts_zero(self):
        sim = Simulator()
        net = Network(sim, 2, track_bytes=True)
        net.register(1, lambda s, m: None)
        net.send(0, 1, object())
        assert net.stats.bytes_total == 0
        assert net.stats.sent_total == 1

    def test_view_change_proposals_are_heavier(self):
        """§3.3: a view-2 Propose ships a deterministic quorum of NewLeader
        messages; its size dominates a view-1 Propose."""
        cfg = ProtocolConfig(n=20, f=4)
        good = ProBFTDeployment(cfg, track_bytes=True).run(max_time=500)
        bad = ProBFTDeployment(
            cfg,
            track_bytes=True,
            timeout_policy=FixedTimeout(20.0),
            byzantine={0: silent_factory()},
        ).run(max_time=3000)
        good_avg = (
            good.network.stats.bytes_by_type["Propose"]
            / good.network.stats.sent_by_type["Propose"]
        )
        bad_avg = (
            bad.network.stats.bytes_by_type["Propose"]
            / bad.network.stats.sent_by_type["Propose"]
        )
        assert bad_avg > 3 * good_avg

    @pytest.mark.parametrize("protocol", sorted(DEPLOYMENTS))
    def test_every_protocol_disabled_by_default(self, protocol):
        dep = DEPLOYMENTS[protocol](ProtocolConfig(n=10, f=2))
        dep.run(max_time=500)
        assert dep.network.stats.bytes_total == 0

    @pytest.mark.parametrize("protocol", sorted(DEPLOYMENTS))
    def test_every_protocol_tracks_bytes_when_enabled(self, protocol):
        dep = DEPLOYMENTS[protocol](
            ProtocolConfig(n=10, f=2), track_bytes=True
        )
        dep.run(max_time=500)
        stats = dep.network.stats
        assert dep.all_correct_decided()
        assert stats.bytes_total > 0
        assert set(stats.bytes_by_type) == set(stats.sent_by_type)

    @pytest.mark.parametrize("protocol", sorted(DEPLOYMENTS))
    def test_trial_lifecycle_reports_bytes(self, protocol):
        """`run_trial` surfaces the deployment's byte totals, and they match
        a hand-built deployment on the same golden seed."""
        config = ProtocolConfig(n=8, f=2)
        result = run_trial(
            DeploymentSpec(
                protocol=protocol, config=config, seed=17,
                track_bytes=True, max_time=500,
            )
        )
        direct = DEPLOYMENTS[protocol](config, seed=17, track_bytes=True)
        direct.run(max_time=500)
        assert result.total_bytes == direct.network.stats.bytes_total > 0

    def test_pbft_broadcasts_cost_more_bytes_than_probft_samples(self):
        """PBFT's all-to-all vote broadcasts out-byte ProBFT's O(√n)-sample
        multicasts at moderate n — the Figure-1b comparison in bytes."""
        config = ProtocolConfig(n=40, f=10)
        pbft = PbftDeployment(config, track_bytes=True).run(max_time=500)
        probft = ProBFTDeployment(config, track_bytes=True).run(max_time=500)
        assert (
            pbft.network.stats.bytes_total > probft.network.stats.bytes_total
        )

    def test_prepare_bytes_scale_with_sample_size(self):
        """Prepare messages carry the O(sqrt(n))-sized VRF sample list."""
        small = ProBFTDeployment(ProtocolConfig(n=16, f=3), track_bytes=True)
        small.run(max_time=500)
        big = ProBFTDeployment(ProtocolConfig(n=64, f=12), track_bytes=True)
        big.run(max_time=500)
        small_avg = (
            small.network.stats.bytes_by_type["Prepare"]
            / small.network.stats.sent_by_type["Prepare"]
        )
        big_avg = (
            big.network.stats.bytes_by_type["Prepare"]
            / big.network.stats.sent_by_type["Prepare"]
        )
        assert big_avg > small_avg


class TestByteCostMatrix:
    """The ``byte-costs`` matrix: streamed == materialized, golden seeds."""

    @pytest.mark.parametrize("master_seed", [0, 42])
    def test_streamed_byte_stats_equal_materialized_sums(self, master_seed):
        """Per-cell mean bytes/messages from the constant-memory streamed
        path exactly equal batch means over materialized trial rows."""
        matrix = get_matrix("byte-costs").with_size(8)
        trials = 3
        streamed = run_matrix(matrix, trials=trials, master_seed=master_seed)

        cells = matrix.cells()
        specs = [
            TrialSpec(
                index=i,
                seed=derive_seed(master_seed, i),
                params=(cell, 5000.0),
            )
            for i, cell in enumerate(c for c in cells for _ in range(trials))
        ]
        rows = ExperimentEngine(workers=0).map(run_matrix_cell, specs)
        for k, (cell, report_row) in enumerate(zip(cells, streamed.rows)):
            chunk = rows[k * trials : (k + 1) * trials]
            assert report_row["mean_bytes"] == round(
                mean([float(r["total_bytes"]) for r in chunk]), 1
            )
            assert report_row["mean_messages"] == round(
                mean([float(r["total_messages"]) for r in chunk]), 1
            )
            assert report_row["mean_bytes"] > 0, cell.label

    def test_byte_columns_zero_without_tracking(self):
        report = run_matrix(get_matrix("smoke"), trials=2, master_seed=5)
        for row in report.rows:
            assert row["mean_bytes"] == 0.0
            assert row["bytes_stderr"] == 0.0
            assert row["mean_messages"] > 0

    def test_duplication_cell_runs_and_tracks(self):
        """Network-level duplication composes with byte tracking; receivers
        dedup so agreement and termination are untouched."""
        matrix = get_matrix("byte-costs").with_size(8)
        cell = next(
            c for c in matrix.cells() if c.adversary == "duplication"
        )
        row = run_matrix_cell(
            TrialSpec(index=0, seed=derive_seed(3, 0), params=(cell, 5000.0))
        )
        assert row["agreement_ok"]
        assert row["decided"] == row["n_correct"]
        assert row["total_bytes"] > 0
