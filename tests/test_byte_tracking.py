"""Tests for communication-byte accounting."""

import pytest

from repro.adversary.behaviors import silent_factory
from repro.config import ProtocolConfig
from repro.core.protocol import ProBFTDeployment
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.sync.timeouts import FixedTimeout


class TestByteTracking:
    def test_disabled_by_default(self):
        dep = ProBFTDeployment(ProtocolConfig(n=10, f=2))
        dep.run(max_time=500)
        assert dep.network.stats.bytes_total == 0

    def test_enabled_tracks_bytes(self):
        dep = ProBFTDeployment(ProtocolConfig(n=10, f=2), track_bytes=True)
        dep.run(max_time=500)
        stats = dep.network.stats
        assert stats.bytes_total > 0
        assert set(stats.bytes_by_type) == set(stats.sent_by_type)

    def test_sizes_are_canonical_encoding_lengths(self):
        from repro.crypto.hashing import stable_encode

        sim = Simulator()
        net = Network(sim, 2, track_bytes=True)
        net.register(1, lambda s, m: None)
        message = ("hello", 42)
        net.send(0, 1, message)
        assert net.stats.bytes_total == len(stable_encode(message))

    def test_size_cache_reused_for_broadcast(self):
        sim = Simulator()
        net = Network(sim, 5, track_bytes=True)
        for r in range(5):
            net.register(r, lambda s, m: None)
        message = ("payload",)
        net.broadcast(0, message)
        from repro.crypto.hashing import stable_encode

        assert net.stats.bytes_total == 4 * len(stable_encode(message))

    def test_unencodable_message_counts_zero(self):
        sim = Simulator()
        net = Network(sim, 2, track_bytes=True)
        net.register(1, lambda s, m: None)
        net.send(0, 1, object())
        assert net.stats.bytes_total == 0
        assert net.stats.sent_total == 1

    def test_view_change_proposals_are_heavier(self):
        """§3.3: a view-2 Propose ships a deterministic quorum of NewLeader
        messages; its size dominates a view-1 Propose."""
        cfg = ProtocolConfig(n=20, f=4)
        good = ProBFTDeployment(cfg, track_bytes=True).run(max_time=500)
        bad = ProBFTDeployment(
            cfg,
            track_bytes=True,
            timeout_policy=FixedTimeout(20.0),
            byzantine={0: silent_factory()},
        ).run(max_time=3000)
        good_avg = (
            good.network.stats.bytes_by_type["Propose"]
            / good.network.stats.sent_by_type["Propose"]
        )
        bad_avg = (
            bad.network.stats.bytes_by_type["Propose"]
            / bad.network.stats.sent_by_type["Propose"]
        )
        assert bad_avg > 3 * good_avg

    def test_prepare_bytes_scale_with_sample_size(self):
        """Prepare messages carry the O(sqrt(n))-sized VRF sample list."""
        small = ProBFTDeployment(ProtocolConfig(n=16, f=3), track_bytes=True)
        small.run(max_time=500)
        big = ProBFTDeployment(ProtocolConfig(n=64, f=12), track_bytes=True)
        big.run(max_time=500)
        small_avg = (
            small.network.stats.bytes_by_type["Prepare"]
            / small.network.stats.sent_by_type["Prepare"]
        )
        big_avg = (
            big.network.stats.bytes_by_type["Prepare"]
            / big.network.stats.sent_by_type["Prepare"]
        )
        assert big_avg > small_avg
