"""Tests for repro.crypto.vrf (paper §2.4)."""

import hashlib
from dataclasses import replace

import pytest

from repro.crypto.keys import KeyRegistry
from repro.crypto.vrf import (
    VRF,
    MemoizedVRF,
    VRFOutput,
    _KeyedStream,
    _sample_from_key,
    phase_seed,
)
from repro.errors import VRFError


@pytest.fixture
def vrf():
    return VRF(KeyRegistry(30))


class TestProve:
    def test_sample_size_and_distinctness(self, vrf):
        out = vrf.prove(3, "seed", 10)
        assert len(out.sample) == 10
        assert len(set(out.sample)) == 10
        assert all(0 <= r < 30 for r in out.sample)

    def test_deterministic(self, vrf):
        assert vrf.prove(3, "seed", 10) == vrf.prove(3, "seed", 10)

    def test_different_seeds_different_samples(self, vrf):
        # Collision resistance: distinct seeds give (a.s.) distinct samples.
        a = vrf.prove(3, phase_seed(1, "prepare"), 10)
        b = vrf.prove(3, phase_seed(1, "commit"), 10)
        assert a.sample != b.sample or a.proof != b.proof

    def test_different_replicas_different_samples(self, vrf):
        a = vrf.prove(3, "seed", 10)
        b = vrf.prove(4, "seed", 10)
        assert a.proof != b.proof

    def test_full_sample(self, vrf):
        out = vrf.prove(0, "s", 30)
        assert sorted(out.sample) == list(range(30))

    def test_invalid_sizes(self, vrf):
        with pytest.raises(VRFError):
            vrf.prove(0, "s", 0)
        with pytest.raises(VRFError):
            vrf.prove(0, "s", 31)


class TestVerify:
    def test_valid_output_verifies(self, vrf):
        out = vrf.prove(5, "seed", 8)
        assert vrf.verify(5, "seed", 8, out)

    def test_wrong_replica_rejected(self, vrf):
        out = vrf.prove(5, "seed", 8)
        assert not vrf.verify(6, "seed", 8, out)

    def test_wrong_seed_rejected(self, vrf):
        out = vrf.prove(5, "seed", 8)
        assert not vrf.verify(5, "other", 8, out)

    def test_wrong_size_rejected(self, vrf):
        out = vrf.prove(5, "seed", 8)
        assert not vrf.verify(5, "seed", 9, out)

    def test_tampered_sample_rejected(self, vrf):
        out = vrf.prove(5, "seed", 8)
        replaced = next(r for r in range(30) if r not in out.sample)
        tampered = replace(out, sample=(replaced,) + tuple(out.sample[1:]))
        assert not vrf.verify(5, "seed", 8, tampered)

    def test_forged_proof_rejected(self, vrf):
        out = vrf.prove(5, "seed", 8)
        forged = replace(out, proof=b"\x00" * 32)
        assert not vrf.verify(5, "seed", 8, forged)

    def test_uniqueness(self, vrf):
        """A prover cannot produce two different valid outputs for one input."""
        out = vrf.prove(5, "seed", 8)
        # Any alternative sample fails verification (proof is a function of
        # (sk, seed, s) and the sample is a function of the proof).
        other = vrf.prove(5, "other-seed", 8)
        hybrid = VRFOutput(sample=other.sample, proof=out.proof)
        assert not vrf.verify(5, "seed", 8, hybrid)

    def test_require_valid(self, vrf):
        out = vrf.prove(5, "seed", 8)
        vrf.require_valid(5, "seed", 8, out)
        with pytest.raises(VRFError):
            vrf.require_valid(6, "seed", 8, out)

    def test_unknown_replica_rejected(self, vrf):
        out = vrf.prove(5, "seed", 8)
        assert not vrf.verify(99, "seed", 8, out)


class TestUniformity:
    def test_inclusion_frequency_roughly_uniform(self, vrf):
        """Pseudorandomness sanity: each replica appears in ~s/n of samples."""
        n, s, draws = 30, 10, 600
        counts = [0] * n
        for k in range(draws):
            out = vrf.prove(k % n, f"seed-{k}", s)
            for r in out.sample:
                counts[r] += 1
        expected = draws * s / n
        for c in counts:
            assert 0.6 * expected < c < 1.4 * expected

    def test_membership_prob_matches_s_over_n(self, vrf):
        n, s, draws = 30, 10, 900
        hits = sum(
            1 for k in range(draws) if 7 in vrf.prove(k % n, f"z{k}", s).sample
        )
        assert abs(hits / draws - s / n) < 0.06


class TestPhaseSeed:
    def test_format(self):
        assert phase_seed(3, "prepare") == "3||prepare"
        assert phase_seed(3, "commit") == "3||commit"

    def test_domain_scoping(self):
        assert phase_seed(3, "prepare", "slot-1") == "slot-1#3||prepare"
        assert phase_seed(3, "prepare", "slot-1") != phase_seed(3, "prepare", "slot-2")

    def test_distinct_across_views_and_phases(self):
        seeds = {
            phase_seed(v, t)
            for v in range(1, 10)
            for t in ("prepare", "commit")
        }
        assert len(seeds) == 18


class TestSparseShuffleEquivalence:
    """The sparse dict-swap shuffle must equal the dense Fisher–Yates."""

    @staticmethod
    def _dense_sample(key, n, s):
        # Reference implementation: materialize the full array and run the
        # textbook partial Fisher–Yates off the same keyed stream.
        stream = _KeyedStream(key)
        pool = list(range(n))
        for i in range(s):
            j = i + stream.next_uint(n - i)
            pool[i], pool[j] = pool[j], pool[i]
        return tuple(pool[:s])

    def test_matches_dense_reference_across_shapes(self):
        for tag in ("k0", "k1", "k2"):
            key = hashlib.sha256(tag.encode()).digest()
            for n, s in [(1, 1), (7, 7), (30, 10), (64, 1), (500, 45), (500, 77)]:
                assert _sample_from_key(key, n, s) == self._dense_sample(
                    key, n, s
                ), (tag, n, s)

    def test_golden_pinned_samples(self):
        # Frozen outputs: any change to the stream or swap order (an
        # equivalence-breaking "optimization") trips these immediately.
        golden = {
            ("golden-a", 30, 10): (24, 2, 13, 15, 21, 17, 25, 12, 20, 16),
            ("golden-c", 7, 7): (0, 6, 2, 1, 4, 5, 3),
            ("golden-b", 500, 45): (
                134, 226, 123, 94, 267, 339, 33, 430, 248, 419, 215, 2, 234,
                496, 284, 318, 390, 198, 414, 317, 443, 263, 391, 29, 255,
                101, 472, 261, 20, 358, 364, 136, 466, 73, 115, 225, 485,
                304, 350, 451, 126, 287, 269, 353, 243,
            ),
        }
        for (tag, n, s), expected in golden.items():
            key = hashlib.sha256(tag.encode()).digest()
            assert _sample_from_key(key, n, s) == expected

    def test_distinct_ids_at_scale(self):
        key = hashlib.sha256(b"distinct").digest()
        sample = _sample_from_key(key, 2000, 90)
        assert len(set(sample)) == 90
        assert all(0 <= r < 2000 for r in sample)


class TestVRFOutputMembers:
    def test_members_cached_per_object(self, vrf):
        out = vrf.prove(3, "seed", 10)
        members = out.members()
        assert members == frozenset(out.sample)
        assert out.members() is members  # built once, reused

    def test_contains_and_len(self, vrf):
        out = vrf.prove(3, "seed", 10)
        assert out.sample[0] in out
        absent = next(r for r in range(30) if r not in out.sample)
        assert absent not in out
        assert len(out) == 10


class TestMemoizedVRF:
    @pytest.fixture
    def mvrf(self):
        return MemoizedVRF(KeyRegistry(30))

    def test_bit_identical_to_fresh_vrf(self, mvrf, vrf):
        for replica in (0, 5, 29):
            for s in (1, 10, 30):
                assert mvrf.prove(replica, "z", s) == vrf.prove(replica, "z", s)

    def test_prove_memo_hits_on_repeat(self, mvrf):
        a = mvrf.prove(3, "seed", 10)
        b = mvrf.prove(3, "seed", 10)
        assert a is b
        assert mvrf.prove_hits == 1 and mvrf.prove_misses == 1

    def test_verify_memo_identity_pinned(self, mvrf):
        out = mvrf.prove(3, "seed", 10)
        assert mvrf.verify(3, "seed", 10, out)
        assert mvrf.verify(3, "seed", 10, out)
        assert mvrf.verify_hits == 1 and mvrf.verify_misses == 1
        # An equal-but-distinct object misses (identity key, not equality).
        clone = VRFOutput(sample=out.sample, proof=out.proof)
        assert mvrf.verify(3, "seed", 10, clone)
        assert mvrf.verify_misses == 2

    def test_verify_memo_rejects_forgery_consistently(self, mvrf):
        out = mvrf.prove(3, "seed", 10)
        forged = replace(out, proof=b"\x00" * 32)
        assert not mvrf.verify(3, "seed", 10, forged)
        assert not mvrf.verify(3, "seed", 10, forged)  # cached False
        assert mvrf.verify_hits == 1

    def test_prove_with_never_memoized(self, mvrf):
        key = hashlib.sha256(b"corrupted").digest()
        a = mvrf.prove_with(key, 3, "seed", 10)
        b = mvrf.prove_with(key, 3, "seed", 10)
        assert a == b and a is not b
        assert mvrf.prove_misses == 0  # registry-path memo untouched
