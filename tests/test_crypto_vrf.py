"""Tests for repro.crypto.vrf (paper §2.4)."""

from dataclasses import replace

import pytest

from repro.crypto.keys import KeyRegistry
from repro.crypto.vrf import VRF, VRFOutput, phase_seed
from repro.errors import VRFError


@pytest.fixture
def vrf():
    return VRF(KeyRegistry(30))


class TestProve:
    def test_sample_size_and_distinctness(self, vrf):
        out = vrf.prove(3, "seed", 10)
        assert len(out.sample) == 10
        assert len(set(out.sample)) == 10
        assert all(0 <= r < 30 for r in out.sample)

    def test_deterministic(self, vrf):
        assert vrf.prove(3, "seed", 10) == vrf.prove(3, "seed", 10)

    def test_different_seeds_different_samples(self, vrf):
        # Collision resistance: distinct seeds give (a.s.) distinct samples.
        a = vrf.prove(3, phase_seed(1, "prepare"), 10)
        b = vrf.prove(3, phase_seed(1, "commit"), 10)
        assert a.sample != b.sample or a.proof != b.proof

    def test_different_replicas_different_samples(self, vrf):
        a = vrf.prove(3, "seed", 10)
        b = vrf.prove(4, "seed", 10)
        assert a.proof != b.proof

    def test_full_sample(self, vrf):
        out = vrf.prove(0, "s", 30)
        assert sorted(out.sample) == list(range(30))

    def test_invalid_sizes(self, vrf):
        with pytest.raises(VRFError):
            vrf.prove(0, "s", 0)
        with pytest.raises(VRFError):
            vrf.prove(0, "s", 31)


class TestVerify:
    def test_valid_output_verifies(self, vrf):
        out = vrf.prove(5, "seed", 8)
        assert vrf.verify(5, "seed", 8, out)

    def test_wrong_replica_rejected(self, vrf):
        out = vrf.prove(5, "seed", 8)
        assert not vrf.verify(6, "seed", 8, out)

    def test_wrong_seed_rejected(self, vrf):
        out = vrf.prove(5, "seed", 8)
        assert not vrf.verify(5, "other", 8, out)

    def test_wrong_size_rejected(self, vrf):
        out = vrf.prove(5, "seed", 8)
        assert not vrf.verify(5, "seed", 9, out)

    def test_tampered_sample_rejected(self, vrf):
        out = vrf.prove(5, "seed", 8)
        replaced = next(r for r in range(30) if r not in out.sample)
        tampered = replace(out, sample=(replaced,) + tuple(out.sample[1:]))
        assert not vrf.verify(5, "seed", 8, tampered)

    def test_forged_proof_rejected(self, vrf):
        out = vrf.prove(5, "seed", 8)
        forged = replace(out, proof=b"\x00" * 32)
        assert not vrf.verify(5, "seed", 8, forged)

    def test_uniqueness(self, vrf):
        """A prover cannot produce two different valid outputs for one input."""
        out = vrf.prove(5, "seed", 8)
        # Any alternative sample fails verification (proof is a function of
        # (sk, seed, s) and the sample is a function of the proof).
        other = vrf.prove(5, "other-seed", 8)
        hybrid = VRFOutput(sample=other.sample, proof=out.proof)
        assert not vrf.verify(5, "seed", 8, hybrid)

    def test_require_valid(self, vrf):
        out = vrf.prove(5, "seed", 8)
        vrf.require_valid(5, "seed", 8, out)
        with pytest.raises(VRFError):
            vrf.require_valid(6, "seed", 8, out)

    def test_unknown_replica_rejected(self, vrf):
        out = vrf.prove(5, "seed", 8)
        assert not vrf.verify(99, "seed", 8, out)


class TestUniformity:
    def test_inclusion_frequency_roughly_uniform(self, vrf):
        """Pseudorandomness sanity: each replica appears in ~s/n of samples."""
        n, s, draws = 30, 10, 600
        counts = [0] * n
        for k in range(draws):
            out = vrf.prove(k % n, f"seed-{k}", s)
            for r in out.sample:
                counts[r] += 1
        expected = draws * s / n
        for c in counts:
            assert 0.6 * expected < c < 1.4 * expected

    def test_membership_prob_matches_s_over_n(self, vrf):
        n, s, draws = 30, 10, 900
        hits = sum(
            1 for k in range(draws) if 7 in vrf.prove(k % n, f"z{k}", s).sample
        )
        assert abs(hits / draws - s / n) < 0.06


class TestPhaseSeed:
    def test_format(self):
        assert phase_seed(3, "prepare") == "3||prepare"
        assert phase_seed(3, "commit") == "3||commit"

    def test_domain_scoping(self):
        assert phase_seed(3, "prepare", "slot-1") == "slot-1#3||prepare"
        assert phase_seed(3, "prepare", "slot-1") != phase_seed(3, "prepare", "slot-2")

    def test_distinct_across_views_and_phases(self):
        seeds = {
            phase_seed(v, t)
            for v in range(1, 10)
            for t in ("prepare", "commit")
        }
        assert len(seeds) == 18
