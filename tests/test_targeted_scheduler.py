"""Tests for the receiver-targeted adversarial scheduler."""

import pytest

from repro.config import ProtocolConfig
from repro.core.invariants import audit_deployment
from repro.core.protocol import ProBFTDeployment
from repro.net.faults import ReceiverTargetedChaos
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.sync.timeouts import FixedTimeout


class TestPolicy:
    def test_only_victims_delayed_pre_gst(self):
        chaos = ReceiverTargetedChaos(victims=[3, 4], extra=100.0)
        assert chaos.extra_delay(0.0, 50.0, 0, 3) == 100.0
        assert chaos.extra_delay(0.0, 50.0, 0, 2) == 0.0
        assert chaos.extra_delay(60.0, 50.0, 0, 3) == 0.0

    def test_sender_agnostic(self):
        """The paper's §2.1 constraint: delay independent of the sender."""
        chaos = ReceiverTargetedChaos(victims=[3], extra=10.0)
        delays = {chaos.extra_delay(0.0, 50.0, src, 3) for src in range(10)}
        assert delays == {10.0}

    def test_invalid_extra(self):
        with pytest.raises(ValueError):
            ReceiverTargetedChaos(victims=[1], extra=-1.0)

    def test_network_clamps_to_gst_deadline(self):
        sim = Simulator()
        net = Network(
            sim,
            4,
            latency=ConstantLatency(1.0),
            gst=20.0,
            chaos=ReceiverTargetedChaos(victims=[1], extra=1e9),
        )
        net.register(1, lambda s, m: None)
        t = net.send(0, 1, "m")
        assert t <= 21.0  # GST + delta


class TestProtocolUnderTargeting:
    def test_victims_decide_after_gst(self):
        """Starved replicas catch up once GST passes; agreement holds."""
        cfg = ProtocolConfig(n=13, f=4)
        victims = [9, 10, 11, 12]
        dep = ProBFTDeployment(
            cfg,
            seed=4,
            latency=ConstantLatency(1.0),
            gst=40.0,
            chaos=ReceiverTargetedChaos(victims=victims),
            timeout_policy=FixedTimeout(60.0),
        )
        dep.run(max_time=5000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        assert audit_deployment(dep).ok
        # Victims decided strictly later than the unstarved replicas.
        victim_times = [dep.decisions[v].time for v in victims]
        other_times = [
            d.time for r, d in dep.decisions.items() if r not in victims
        ]
        assert min(victim_times) >= max(other_times)
        assert min(victim_times) >= 40.0  # only after GST

    def test_targeting_quorum_sized_victim_set_safe(self):
        """Even starving more than q replicas cannot break safety."""
        cfg = ProtocolConfig(n=16, f=3)
        victims = list(range(8, 16))  # half the system
        dep = ProBFTDeployment(
            cfg,
            seed=5,
            latency=ConstantLatency(1.0),
            gst=50.0,
            chaos=ReceiverTargetedChaos(victims=victims),
            timeout_policy=FixedTimeout(80.0),
        )
        dep.run(max_time=5000)
        assert dep.agreement_ok
        assert dep.all_correct_decided()
