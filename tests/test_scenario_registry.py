"""Tests for the scenario registry and the scenario matrix."""

from __future__ import annotations

import itertools

import pytest

from repro.harness.parallel import TrialSpec, derive_seed
from repro.harness.registry import (
    ADVERSARIES,
    LATENCIES,
    MATRICES,
    PROTOCOLS,
    MatrixCell,
    ScenarioMatrix,
    build_scenario,
    get_matrix,
    get_scenario,
    list_matrices,
    list_scenarios,
    run_matrix,
    run_matrix_cell,
    scenario,
)

from .helpers import saturated_config


class TestRegistry:
    def test_canonical_scenarios_registered(self):
        assert list_scenarios() == sorted(
            [
                "happy",
                "silent-leader",
                "crash",
                "pre-gst-chaos",
                "equivocation",
                "flooding",
            ]
        )

    @pytest.mark.parametrize("name", [
        "happy",
        "silent-leader",
        "crash",
        "pre-gst-chaos",
        "equivocation",
        "flooding",
    ])
    def test_every_scenario_builds_and_decides(self, name):
        """Each registered scenario reaches a correct decision at n=8."""
        deployment = build_scenario(name, saturated_config(), seed=1)
        deployment.run(max_time=5000)
        assert deployment.all_correct_decided()
        assert deployment.agreement_ok

    def test_unknown_name_raises_clear_keyerror(self):
        with pytest.raises(KeyError, match="unknown scenario 'nope'"):
            get_scenario("nope")
        with pytest.raises(KeyError, match="silent-leader"):
            # The error enumerates what *is* registered.
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            scenario("happy")(lambda config, seed=0: None)

    def test_specs_carry_descriptions(self):
        for name in list_scenarios():
            assert get_scenario(name).description


class TestMatrixExpansion:
    def test_full_cross_product_enumerated(self):
        matrix = get_matrix("full")
        cells = matrix.cells(supported_only=False)
        assert len(cells) == len(PROTOCOLS) * len(ADVERSARIES) * len(LATENCIES)
        combos = {(c.protocol, c.adversary, c.latency) for c in cells}
        assert combos == set(itertools.product(PROTOCOLS, ADVERSARIES, LATENCIES))

    def test_no_cell_is_unsupported(self):
        """Every protocol × adversary combination has a registered behavior
        (the PBFT/HotStuff forgery analogues closed the last gaps)."""
        matrix = get_matrix("full")
        cells = matrix.cells(supported_only=False)
        assert all(c.supported for c in cells)
        assert matrix.cells(supported_only=True) == cells

    def test_unknown_axis_value_rejected(self):
        with pytest.raises(ValueError, match="unknown matrix axis"):
            ScenarioMatrix(name="bad", protocols=("paxos",))

    def test_with_size_changes_only_size(self):
        small = get_matrix("full").with_size(8)
        assert small.n == 8
        assert small.protocols == PROTOCOLS
        assert small.resolved_f() == 2  # (8-1)//3

    def test_named_matrices_lookup(self):
        assert set(list_matrices()) == set(MATRICES)
        with pytest.raises(KeyError, match="unknown matrix 'x'"):
            get_matrix("x")


class TestMatrixExecution:
    def test_unsupported_cell_refuses_to_run(self):
        """A cell whose adversary has no registered behavior cannot run."""
        cell = MatrixCell(
            protocol="pbft", adversary="time-travel", latency="constant", n=8, f=2
        )
        assert not cell.supported
        spec = TrialSpec(index=0, seed=derive_seed(0, 0), params=(cell, 100.0))
        with pytest.raises(ValueError, match="unsupported"):
            run_matrix_cell(spec)

    def test_every_supported_cell_decides_with_agreement(self):
        """All 84 protocol×adversary×latency combos run green — including
        equivocation/flooding against the deterministic baselines."""
        report = run_matrix(get_matrix("full").with_size(8), trials=1, master_seed=3)
        assert len(report.rows) == 3 * 7 * 4
        assert report.all_agreement_ok
        for row in report.rows:
            assert row["decide_rate"] == 1.0

    def test_report_shape_matches_headers(self):
        report = run_matrix(get_matrix("smoke"), trials=2, master_seed=1)
        assert report.trials == 2
        for row, rendered in zip(report.rows, report.table_rows()):
            assert rendered == [row[h] for h in report.headers]

    def test_serial_and_parallel_reports_identical(self):
        matrix = get_matrix("smoke")
        serial = run_matrix(matrix, trials=3, master_seed=9, workers=0)
        pooled = run_matrix(matrix, trials=3, master_seed=9, workers=2)
        assert serial.rows == pooled.rows

    def test_trials_validated(self):
        with pytest.raises(ValueError, match="trials"):
            run_matrix(get_matrix("smoke"), trials=0)


class TestNewAxes:
    """The targeted-scheduler adversary and exponential-latency cells."""

    def test_targeted_scheduler_supported_everywhere(self):
        for protocol in PROTOCOLS:
            cell = MatrixCell(
                protocol=protocol,
                adversary="targeted-scheduler",
                latency="exponential",
                n=8,
                f=2,
            )
            assert cell.supported

    def test_targeted_scheduler_cell_decides_after_gst(self):
        cell = MatrixCell(
            protocol="probft",
            adversary="targeted-scheduler",
            latency="constant",
            n=8,
            f=2,
        )
        spec = TrialSpec(index=0, seed=derive_seed(5, 0), params=(cell, 5000.0))
        row = run_matrix_cell(spec)
        assert row["all_decided"] and row["agreement_ok"]
        # Victims are starved until GST=30; nobody can finish before it.
        assert row["last_decision_time"] > 30.0

    def test_exponential_cells_slower_than_constant(self):
        rows = {}
        for latency in ("constant", "exponential"):
            cell = MatrixCell(
                protocol="probft", adversary="none", latency=latency, n=8, f=2
            )
            spec = TrialSpec(index=0, seed=derive_seed(7, 0), params=(cell, 5000.0))
            rows[latency] = run_matrix_cell(spec)
        assert rows["constant"]["last_decision_time"] == 3.0
        assert rows["exponential"]["last_decision_time"] != 3.0


class TestTrialBudgets:
    def test_label_beats_adversary_beats_default(self):
        matrix = ScenarioMatrix(
            name="b",
            protocols=("probft",),
            adversaries=("none", "silent"),
            latencies=("constant",),
            n=8,
            budget=2,
            budgets=(("silent", 5), ("probft/silent/constant", 9)),
        )
        cells = {c.adversary: c for c in matrix.cells()}
        assert matrix.cell_trials(cells["silent"]) == 9
        assert matrix.cell_trials(cells["none"]) == 2
        assert matrix.total_trials() == 11

    def test_fallback_when_no_budget(self):
        matrix = get_matrix("smoke")
        for cell in matrix.cells():
            assert matrix.cell_trials(cell) == 1
            assert matrix.cell_trials(cell, fallback=7) == 7

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            ScenarioMatrix(name="bad", budget=0)
        with pytest.raises(ValueError, match="budget"):
            ScenarioMatrix(name="bad", budgets=(("silent", 0),))

    def test_run_matrix_applies_budgets(self):
        matrix = ScenarioMatrix(
            name="budgeted",
            protocols=("probft",),
            adversaries=("none", "silent"),
            latencies=("constant",),
            n=8,
            budgets=(("silent", 3),),
        )
        report = run_matrix(matrix, master_seed=2)
        assert report.trials is None
        by_adversary = {row["adversary"]: row for row in report.rows}
        assert by_adversary["none"]["trials"] == 1
        assert by_adversary["silent"]["trials"] == 3

    def test_uniform_override_wins(self):
        matrix = MATRICES["schedulers"]
        report = run_matrix(matrix.with_size(8), trials=1, master_seed=2)
        assert all(row["trials"] == 1 for row in report.rows)
        assert report.trials == 1
