"""Metamorphic fuzzing of the safety predicates.

Strategy: start from a *valid* artefact (prepared certificate, NewLeader
quorum, Propose message), apply a random corrupting mutation, and assert the
predicate rejects the mutant.  Any surviving mutant would be a forgery the
protocol accepts — i.e. a safety bug.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.leader import leader_of_view
from repro.core.predicates import safe_proposal, valid_new_leader
from repro.messages.probft import Prepare, Propose
from repro.quorum.certificates import validate_prepared_certificate

from .helpers import (
    make_crypto,
    make_new_leader,
    make_prepare,
    make_prepared_cert,
    make_propose,
    make_statement,
    quorum_new_leaders,
    saturated_config,
)

CFG = saturated_config()
CRYPTO = make_crypto(CFG)


def _validate_cert(cert, view=1, value=b"v", holder=5):
    return validate_prepared_certificate(
        cert=cert,
        view=view,
        value=value,
        holder=holder,
        config=CFG,
        signatures=CRYPTO.signatures,
        vrf=CRYPTO.vrf,
        leader_of_view=leader_of_view,
    )


class TestCertificateMutations:
    @given(st.integers(0, 5), st.binary(min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_signature_bitflips_rejected(self, index, junk):
        cert = list(make_prepared_cert(CRYPTO, CFG, 1, b"v"))
        victim = cert[index % len(cert)]
        cert[index % len(cert)] = replace(
            victim, signature=junk.ljust(32, b"\x00")[:32]
        )
        assert not _validate_cert(tuple(cert))

    @given(st.integers(0, 5), st.integers(0, 7))
    @settings(max_examples=40)
    def test_signer_swaps_rejected(self, index, new_signer):
        cert = list(make_prepared_cert(CRYPTO, CFG, 1, b"v"))
        victim = cert[index % len(cert)]
        if new_signer == victim.signer:
            return
        cert[index % len(cert)] = replace(victim, signer=new_signer)
        assert not _validate_cert(tuple(cert))

    @given(st.integers(0, 5))
    @settings(max_examples=20)
    def test_cross_view_vote_injection_rejected(self, index):
        cert = list(make_prepared_cert(CRYPTO, CFG, 1, b"v"))
        # Replace one vote with a perfectly valid vote... from view 2.
        other_statement = make_statement(CRYPTO, CFG, 2, b"v", signer=1)
        sender = cert[index % len(cert)].signer
        cert[index % len(cert)] = make_prepare(CRYPTO, CFG, sender, other_statement)
        assert not _validate_cert(tuple(cert))

    @given(st.integers(0, 5))
    @settings(max_examples=20)
    def test_sample_swap_rejected(self, index):
        """A vote whose sample belongs to a different sender must fail."""
        cert = list(make_prepared_cert(CRYPTO, CFG, 1, b"v"))
        i = index % len(cert)
        j = (i + 1) % len(cert)
        vote_i: Prepare = cert[i].payload
        vote_j: Prepare = cert[j].payload
        hybrid = CRYPTO.signatures.sign(
            cert[i].signer,
            Prepare(statement=vote_i.statement, sample=vote_j.sample),
        )
        cert[i] = hybrid
        assert not _validate_cert(tuple(cert))

    @given(st.integers(1, 5))
    @settings(max_examples=20)
    def test_truncation_below_q_rejected(self, drop):
        cert = make_prepared_cert(CRYPTO, CFG, 1, b"v")
        truncated = cert[: max(0, len(cert) - drop)]
        assert not _validate_cert(truncated)


class TestProposeMutations:
    @given(st.binary(min_size=1, max_size=8))
    @settings(max_examples=30)
    def test_value_swap_after_signing_rejected(self, new_value):
        propose = make_propose(CRYPTO, CFG, view=1, value=b"honest")
        if new_value == b"honest":
            return
        inner = propose.payload
        tampered_statement = replace(
            inner.statement,
            payload=replace(inner.statement.payload, value=new_value),
        )
        tampered = replace(
            propose,
            payload=Propose(
                view=inner.view,
                statement=tampered_statement,
                justification=inner.justification,
            ),
        )
        assert not safe_proposal(tampered, CFG, CRYPTO)

    @given(st.integers(0, 7))
    @settings(max_examples=30)
    def test_justification_member_swap_rejected(self, index):
        """Replacing a NewLeader with one for a different target view fails."""
        justification = list(quorum_new_leaders(CRYPTO, CFG, view=2))
        victim = justification[index % len(justification)]
        wrong_view = make_new_leader(CRYPTO, CFG, victim.signer, view=3)
        justification[index % len(justification)] = wrong_view
        propose = make_propose(
            CRYPTO, CFG, view=2, value=b"v", justification=tuple(justification)
        )
        assert not safe_proposal(propose, CFG, CRYPTO)

    @given(st.integers(2, 6))
    @settings(max_examples=20)
    def test_replayed_justification_from_other_view_rejected(self, view):
        """A leader cannot reuse view-k NewLeaders to justify view k+1."""
        justification = quorum_new_leaders(CRYPTO, CFG, view=view)
        propose = make_propose(
            CRYPTO, CFG, view=view + 1, value=b"v", justification=justification
        )
        assert not safe_proposal(propose, CFG, CRYPTO)


class TestNewLeaderMutations:
    @given(st.integers(0, 7), st.integers(1, 4))
    @settings(max_examples=30)
    def test_prepared_view_inflation_rejected(self, sender, claimed_view):
        """Claiming a prepared view without a matching cert must fail."""
        cert = make_prepared_cert(CRYPTO, CFG, view=1, value=b"v")
        msg = make_new_leader(
            CRYPTO,
            CFG,
            sender,
            view=claimed_view + 2,
            prepared_view=claimed_view + 1,  # cert is for view 1
            prepared_value=b"v",
            cert=cert,
        )
        if claimed_view + 1 == 1:
            return  # would actually be consistent
        assert not valid_new_leader(msg, claimed_view + 2, CFG, CRYPTO)

    @given(st.binary(min_size=1, max_size=6))
    @settings(max_examples=30)
    def test_prepared_value_swap_rejected(self, other_value):
        if other_value == b"v":
            return
        cert = make_prepared_cert(CRYPTO, CFG, view=1, value=b"v")
        msg = make_new_leader(
            CRYPTO, CFG, 5, view=2,
            prepared_view=1, prepared_value=other_value, cert=cert,
        )
        assert not valid_new_leader(msg, 2, CFG, CRYPTO)
