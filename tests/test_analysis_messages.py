"""Tests for message/step count formulas (Figure 1, §3.3) — checked against
the actual simulator where applicable."""

import pytest

from repro.analysis import messages as M
from repro.config import ProtocolConfig
from repro.harness.runner import good_case_metrics


class TestFormulas:
    def test_pbft_messages(self):
        assert M.pbft_messages(100) == 99 + 2 * 100 * 99

    def test_hotstuff_messages(self):
        assert M.hotstuff_messages(100) == 8 * 99

    def test_probft_messages_integer(self):
        # n=100, l=2, o=1.7: q=20, s=34 -> 99 + 2*100*34.
        assert M.probft_messages(100, 1.7) == 99 + 6800

    def test_probft_messages_continuous(self):
        value = M.probft_messages(100, 1.7, continuous=True)
        assert value == pytest.approx(99 + 2 * 100 * 1.7 * 2 * 10.0)

    def test_probft_expected_network_messages_below_simple(self):
        assert M.probft_expected_network_messages(100, 1.7) < M.probft_messages(
            100, 1.7
        )

    def test_steps_constants(self):
        assert M.PBFT_STEPS == 3
        assert M.PROBFT_STEPS == 3
        assert M.HOTSTUFF_STEPS == 8


class TestPaperClaims:
    def test_probft_fraction_of_pbft_shrinks_with_n(self):
        ratios = [M.probft_to_pbft_ratio(n, 1.7) for n in (100, 200, 300, 400)]
        assert ratios == sorted(ratios, reverse=True)

    def test_paper_18_25_percent_claim_at_large_n(self):
        """§5: ProBFT with o=1.7 uses ~18-25% of PBFT's messages (upper
        range of Figure 1b; at n=100 the ratio is ~35%)."""
        assert 0.15 < M.probft_to_pbft_ratio(400, 1.7) < 0.25
        assert 0.18 < M.probft_to_pbft_ratio(250, 1.7) < 0.28

    def test_probft_always_between_hotstuff_and_pbft(self):
        for n in (100, 200, 400):
            assert (
                M.hotstuff_messages(n)
                < M.probft_messages(n, 1.7)
                < M.pbft_messages(n)
            )

    def test_figure1b_series_structure(self):
        series = M.figure1b_series([100, 200], o_values=(1.6, 1.8))
        assert set(series) == {"PBFT", "HotStuff", "ProBFT o=1.6", "ProBFT o=1.8"}
        for rows in series.values():
            assert [n for n, _v in rows] == [100, 200]

    def test_complexity_table_rows(self):
        table = M.complexity_table()
        protos = {row.protocol for row in table}
        assert protos == {"PBFT", "HotStuff", "ProBFT"}
        probft = next(r for r in table if r.protocol == "ProBFT")
        assert probft.steps == 3
        assert "sqrt" in probft.message_complexity


class TestFormulasMatchSimulation:
    """The strongest check: measured counts equal the formulas."""

    def test_pbft_measured(self):
        result = good_case_metrics("pbft", ProtocolConfig(n=20, f=3))
        assert result.protocol_messages == M.pbft_messages(20)
        assert result.steps == pytest.approx(M.PBFT_STEPS)

    def test_hotstuff_measured(self):
        result = good_case_metrics("hotstuff", ProtocolConfig(n=20, f=3))
        assert result.protocol_messages == M.hotstuff_messages(20)
        assert result.steps == pytest.approx(M.HOTSTUFF_STEPS)

    def test_probft_measured_close_to_formula(self):
        cfg = ProtocolConfig(n=50, f=10)
        result = good_case_metrics("probft", cfg)
        formula = M.probft_messages(50, cfg.o, cfg.l)
        expected = M.probft_expected_network_messages(50, cfg.o, cfg.l)
        assert result.protocol_messages <= formula
        # Within a few expected-self-send deviations of the expectation.
        assert abs(result.protocol_messages - expected) < 0.05 * formula
        assert result.steps == pytest.approx(M.PROBFT_STEPS)
