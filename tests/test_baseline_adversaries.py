"""Golden-seed conformance suite for the baseline Byzantine analogues.

Mirrors ``tests/test_adversary.py`` (ProBFT) for the deterministic
baselines: under the ported equivocation and flooding attacks each baseline
must preserve safety outright, while liveness may measurably degrade (view
changes, later decisions).  Outcomes are pinned on golden seeds — under
constant latency the deterministic protocols make them exactly reproducible:

* **PBFT, n = 8** (``n − f`` even): neither split half can reach the
  ``⌈(n+f+1)/2⌉`` prepare quorum, view 1 stalls, and view 2's correct
  leader decides a fresh value.
* **PBFT, n = 7** (``n − f`` odd): the larger half *exactly* reaches the
  quorum, its members decide the attack value in view 1 — and the
  view-change certificate then forces the same value on everyone else.
  Agreement holds in both regimes because the two supports sum to
  ``n + f < 2·quorum``: at most one value can ever quorum.
* **HotStuff**: votes flow to the equivocating leader, but no value's
  support reaches ``n − f`` for *both* proposals, so the leader can never
  mint two conflicting QCs; it stalls, and view 2 decides fresh.  Its
  forged-QC DECIDE (certified by the colluders alone) must be rejected.
"""

from __future__ import annotations

import pytest

from repro.baselines.hotstuff.adversary import (
    hotstuff_equivocation_map,
    hotstuff_flooding_factory,
)
from repro.baselines.pbft.adversary import (
    pbft_equivocation_map,
    pbft_flooding_factory,
)
from repro.config import ProtocolConfig
from repro.harness.trial import DeploymentSpec, TrialContext, run_trial
from repro.sync.timeouts import FixedTimeout

ATTACK_VALUES = {b"attack-A", b"attack-B"}


def _attack_result(protocol: str, config: ProtocolConfig, byzantine, seed=0):
    return run_trial(
        DeploymentSpec(
            protocol=protocol,
            config=config,
            seed=seed,
            timeout_policy=FixedTimeout(30.0),
            byzantine=byzantine,
            max_time=5000.0,
        )
    )


def _happy_result(protocol: str, config: ProtocolConfig, seed=0):
    return run_trial(
        DeploymentSpec(
            protocol=protocol,
            config=config,
            seed=seed,
            timeout_policy=FixedTimeout(30.0),
            max_time=5000.0,
        )
    )


class TestPbftEquivocation:
    def test_safety_across_seeds(self):
        """The headline property: agreement under the Fig-4c analogue."""
        config = ProtocolConfig(n=10, f=3)
        for seed in range(8):
            byzantine, _plan = pbft_equivocation_map(config)
            result = _attack_result("pbft", config, byzantine, seed=seed)
            assert result.agreement_ok, f"violation at seed {seed}"
            assert result.all_decided

    def test_golden_stalled_view_one(self):
        """n=8: neither half quorums; a fresh value decides in view 2."""
        config = ProtocolConfig(n=8, f=2)
        byzantine, _plan = pbft_equivocation_map(config)
        result = _attack_result("pbft", config, byzantine)
        assert result.agreement_ok and result.all_decided
        assert result.decision_views == (2,)
        assert result.decided_values == (b"value-1",)

    def test_golden_half_decides_then_certificate_wins(self):
        """n=7: the larger half exactly quorums in view 1; the view-change
        certificate forces its attack value on the stalled half."""
        config = ProtocolConfig(n=7, f=2)
        byzantine, _plan = pbft_equivocation_map(config)
        result = _attack_result("pbft", config, byzantine)
        assert result.agreement_ok and result.all_decided
        assert result.decision_views == (1, 2)
        assert result.decided_values == (b"attack-B",)

    def test_liveness_measurably_degrades(self):
        config = ProtocolConfig(n=8, f=2)
        byzantine, _plan = pbft_equivocation_map(config)
        attacked = _attack_result("pbft", config, byzantine)
        happy = _happy_result("pbft", config)
        assert happy.max_view == 1
        assert attacked.max_view >= 2
        assert attacked.last_decision_time > happy.last_decision_time

    def test_at_most_one_value_ever_decided(self):
        config = ProtocolConfig(n=13, f=4)
        byzantine, _plan = pbft_equivocation_map(config)
        result = _attack_result("pbft", config, byzantine)
        assert len(result.decided_values) == 1

    def test_needs_at_least_one_byzantine(self):
        with pytest.raises(ValueError):
            pbft_equivocation_map(ProtocolConfig(n=10, f=2), n_byzantine=0)

    def test_later_view_attack_rejected(self):
        from repro.baselines.pbft.adversary import EquivocatingPbftLeader

        with pytest.raises(ValueError):
            EquivocatingPbftLeader(
                0, ProtocolConfig(n=10, f=2), None, None, None, attack_view=2
            )


class TestHotStuffEquivocation:
    def test_safety_across_seeds(self):
        config = ProtocolConfig(n=10, f=3)
        for seed in range(8):
            byzantine, _plan = hotstuff_equivocation_map(config)
            result = _attack_result("hotstuff", config, byzantine, seed=seed)
            assert result.agreement_ok, f"violation at seed {seed}"
            assert result.all_decided

    @pytest.mark.parametrize("n,f", [(7, 2), (8, 2), (10, 3)])
    def test_golden_leader_stalls_and_view_two_decides_fresh(self, n, f):
        """No dual QC can form, the leader stalls view 1, and the forged
        colluder-only DECIDE certificate is rejected everywhere — so the
        attack values never appear in any decision."""
        config = ProtocolConfig(n=n, f=f)
        byzantine, _plan = hotstuff_equivocation_map(config)
        result = _attack_result("hotstuff", config, byzantine)
        assert result.agreement_ok and result.all_decided
        assert result.decision_views == (2,)
        assert result.decided_values == (b"value-1",)
        assert not set(result.decided_values) & ATTACK_VALUES

    def test_liveness_measurably_degrades(self):
        config = ProtocolConfig(n=8, f=2)
        byzantine, _plan = hotstuff_equivocation_map(config)
        attacked = _attack_result("hotstuff", config, byzantine)
        happy = _happy_result("hotstuff", config)
        assert happy.max_view == 1
        assert attacked.max_view >= 2
        assert attacked.last_decision_time > happy.last_decision_time

    def test_needs_at_least_one_byzantine(self):
        with pytest.raises(ValueError):
            hotstuff_equivocation_map(ProtocolConfig(n=10, f=2), n_byzantine=0)

    def test_later_view_attack_rejected(self):
        from repro.baselines.hotstuff.adversary import EquivocatingHsLeader

        with pytest.raises(ValueError):
            EquivocatingHsLeader(
                0, ProtocolConfig(n=10, f=2), None, None, None, attack_view=2
            )


@pytest.mark.parametrize(
    "protocol,flooding_factory",
    [("pbft", pbft_flooding_factory), ("hotstuff", hotstuff_flooding_factory)],
)
class TestBaselineFlooding:
    def _flooded(self, protocol, flooding_factory, seed=0):
        config = ProtocolConfig(n=10, f=2)
        context = TrialContext(
            DeploymentSpec(
                protocol=protocol,
                config=config,
                seed=seed,
                timeout_policy=FixedTimeout(30.0),
                byzantine={config.n - 1: flooding_factory()},
                max_time=5000.0,
            )
        )
        return context.execute(), context.deployment

    def test_flood_does_not_corrupt_consensus(self, protocol, flooding_factory):
        result, _deployment = self._flooded(protocol, flooding_factory)
        assert result.agreement_ok and result.all_decided
        # The flood changes nothing: decided in view 1 on the honest
        # leader's value, exactly like the unflooded golden run.
        assert result.decision_views == (1,)
        assert result.decided_values == (b"value-0",)

    def test_fake_value_never_decided(self, protocol, flooding_factory):
        for seed in range(5):
            result, _deployment = self._flooded(
                protocol, flooding_factory, seed=seed
            )
            assert b"flood-value" not in result.decided_values

    def test_flooder_actually_floods(self, protocol, flooding_factory):
        _result, deployment = self._flooded(protocol, flooding_factory)
        flooder = max(deployment.byzantine_ids)
        assert deployment.network.stats.sent_by_replica[flooder] > 50
