"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import binom_tail_ge, binom_tail_le
from repro.analysis.quorum_probability import prob_quorum_exact
from repro.config import (
    deterministic_quorum_size,
    max_faults,
    probabilistic_quorum_size,
    vrf_sample_size,
)
from repro.core.leader import leader_of_view, mode_values
from repro.crypto.context import CryptoContext
from repro.crypto.hashing import digest, stable_encode
from repro.net.simulator import Simulator
from repro.quorum.probabilistic import QuorumCollector

# One shared context: key generation is deterministic, so reuse is sound.
_CRYPTO = CryptoContext.create(24, master_seed=b"prop")


encodable = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**63), 2**63)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.binary(max_size=32)
    | st.text(max_size=32),
    lambda children: st.lists(children, max_size=4)
    | st.tuples(children, children)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


class TestEncodingProperties:
    @given(encodable)
    @settings(max_examples=80)
    def test_encoding_is_deterministic(self, value):
        assert stable_encode(value) == stable_encode(value)

    @given(encodable, encodable)
    @settings(max_examples=80)
    def test_digest_injective_on_samples(self, a, b):
        if stable_encode(a) != stable_encode(b):
            assert digest(a) != digest(b)


class TestSignatureProperties:
    @given(st.integers(0, 23), st.binary(min_size=0, max_size=64))
    @settings(max_examples=60)
    def test_sign_verify_roundtrip(self, signer, payload):
        signed = _CRYPTO.signatures.sign(signer, payload)
        assert _CRYPTO.signatures.verify(signed)

    @given(
        st.integers(0, 23),
        st.integers(0, 23),
        st.binary(min_size=1, max_size=32),
    )
    @settings(max_examples=60)
    def test_no_cross_signer_verification(self, signer, claimed, payload):
        from dataclasses import replace

        signed = _CRYPTO.signatures.sign(signer, payload)
        forged = replace(signed, signer=claimed)
        assert _CRYPTO.signatures.verify(forged) == (signer == claimed)


class TestVRFProperties:
    @given(
        st.integers(0, 23),
        st.text(min_size=1, max_size=16),
        st.integers(1, 24),
    )
    @settings(max_examples=80)
    def test_sample_well_formed_and_verifiable(self, replica, seed, s):
        out = _CRYPTO.vrf.prove(replica, seed, s)
        assert len(out.sample) == s
        assert len(set(out.sample)) == s
        assert all(0 <= member < 24 for member in out.sample)
        assert _CRYPTO.vrf.verify(replica, seed, s, out)

    @given(
        st.integers(0, 23),
        st.text(min_size=1, max_size=16),
        st.text(min_size=1, max_size=16),
        st.integers(1, 24),
    )
    @settings(max_examples=60)
    def test_cross_seed_verification_fails(self, replica, seed1, seed2, s):
        out = _CRYPTO.vrf.prove(replica, seed1, s)
        assert _CRYPTO.vrf.verify(replica, seed2, s, out) == (seed1 == seed2)


class TestConfigProperties:
    @given(st.integers(4, 2000))
    def test_max_faults_resilience(self, n):
        f = max_faults(n)
        assert 3 * f < n
        assert 3 * (f + 1) >= n

    @given(st.integers(4, 2000))
    def test_deterministic_quorum_intersection(self, n):
        """Any two deterministic quorums intersect in > f replicas' worth,
        guaranteeing a correct replica in the intersection."""
        f = max_faults(n)
        quorum = deterministic_quorum_size(n, f)
        assert 2 * quorum - n >= f + 1

    @given(st.integers(4, 2000), st.floats(1.0, 4.0))
    def test_probabilistic_quorum_bounds(self, n, l):
        q = probabilistic_quorum_size(n, l)
        assert 1 <= q
        assert q >= l * math.sqrt(n) - 1
        assert q <= l * math.sqrt(n) + 1

    @given(st.integers(4, 2000), st.floats(1.0, 4.0), st.floats(1.0, 3.0))
    def test_sample_size_never_exceeds_n(self, n, l, o):
        q = probabilistic_quorum_size(n, l)
        assert 1 <= vrf_sample_size(n, q, o) <= n


class TestLeaderProperties:
    @given(st.integers(1, 10_000), st.integers(4, 100))
    def test_leader_in_range(self, view, n):
        assert 0 <= leader_of_view(view, n) < n

    @given(st.integers(1, 1000), st.integers(4, 100))
    def test_rotation_periodic(self, view, n):
        assert leader_of_view(view, n) == leader_of_view(view + n, n)

    @given(st.lists(st.binary(min_size=1, max_size=4), min_size=1, max_size=30))
    def test_mode_values_are_actual_modes(self, values):
        modes = mode_values(values)
        counts = {v: values.count(v) for v in set(values)}
        top = max(counts.values())
        assert modes == frozenset(v for v, c in counts.items() if c == top)


class TestCollectorProperties:
    @given(
        st.integers(1, 10),
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 5)),
            max_size=60,
        ),
    )
    def test_fires_exactly_once_at_threshold(self, threshold, events):
        collector = QuorumCollector(threshold)
        fires = 0
        for sender, key in events:
            if collector.add(key, sender, (sender, key)):
                fires += 1
        for key in set(k for _s, k in events):
            distinct = len({s for s, k in events if k == key})
            assert collector.count(key) == distinct
            assert collector.has_quorum(key) == (distinct >= threshold)
        assert fires == sum(
            1
            for key in set(k for _s, k in events)
            if len({s for s, k in events if k == key}) >= threshold
        )


class TestSimulatorProperties:
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40))
    @settings(suppress_health_check=[HealthCheck.too_slow])
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestAnalysisProperties:
    @given(
        st.integers(10, 400),
        st.integers(1, 120),
        st.integers(1, 50),
    )
    @settings(max_examples=60)
    def test_exact_quorum_prob_monotone_in_r(self, n, r, q):
        s = min(n, 2 * q)
        p1 = prob_quorum_exact(n, r, s, q)
        p2 = prob_quorum_exact(n, r + 10, s, q)
        assert p2 >= p1 - 1e-12

    @given(st.integers(1, 300), st.floats(0.01, 0.99), st.integers(0, 300))
    @settings(max_examples=60)
    def test_binom_tails_complementary(self, r, p, k):
        total = binom_tail_le(r, p, k - 1) + binom_tail_ge(r, p, k)
        assert math.isclose(total, 1.0, rel_tol=1e-9)
