"""Tests for the streamlined (view-change-free) ProBFT variant."""

import pytest

from repro.config import ProtocolConfig
from repro.net.latency import UniformLatency
from repro.streamlined import GENESIS, Block, StreamDeployment
from repro.streamlined.block import vote_seed


class TestBlocks:
    def test_hash_deterministic_and_distinct(self):
        a = Block(epoch=1, parent=GENESIS.hash(), payload=b"x")
        b = Block(epoch=1, parent=GENESIS.hash(), payload=b"x")
        c = Block(epoch=1, parent=GENESIS.hash(), payload=b"y")
        assert a.hash() == b.hash()
        assert a.hash() != c.hash()
        assert a.hash() != GENESIS.hash()

    def test_vote_seed_scoping(self):
        assert vote_seed(3) == "3||stream-vote"
        assert vote_seed(3, "chain-1") != vote_seed(3)
        assert vote_seed(3) != vote_seed(4)


class TestHappyChain:
    def test_chain_grows_and_finalizes(self):
        dep = StreamDeployment(ProtocolConfig(n=16, f=3), seed=1, max_epochs=20)
        dep.run(min_finalized_height=5, max_time=200)
        assert dep.min_finalized_height() >= 5
        assert dep.chains_consistent()

    def test_finalized_blocks_have_consecutive_structure(self):
        dep = StreamDeployment(ProtocolConfig(n=16, f=3), seed=2, max_epochs=20)
        dep.run(min_finalized_height=4, max_time=200)
        chain = dep.replicas[0].finalized_chain
        assert chain[0] == GENESIS
        for parent, child in zip(chain, chain[1:]):
            assert child.parent == parent.hash()
            assert child.epoch > parent.epoch

    def test_throughput_one_block_per_epoch(self):
        """In the synchronous good case every epoch notarizes one block."""
        dep = StreamDeployment(
            ProtocolConfig(n=16, f=3), seed=3, max_epochs=12, epoch_duration=3.0
        )
        dep.run(min_finalized_height=8, max_time=100)
        # Height h finalized by roughly epoch h+2 (Streamlet lag of one).
        assert dep.sim.now <= 12 * 3.0

    def test_payloads_come_from_epoch_leaders(self):
        dep = StreamDeployment(ProtocolConfig(n=10, f=2), seed=4, max_epochs=15)
        dep.run(min_finalized_height=3, max_time=200)
        for block in dep.replicas[0].finalized_chain[1:]:
            leader = (block.epoch - 1) % 10
            assert block.payload == f"block-e{block.epoch}-r{leader}".encode()


class TestFaults:
    def test_silent_epoch_leaders_skipped(self):
        """Byzantine (silent) leaders waste their epochs; the chain still
        grows — with NO view-change messages of any kind."""
        cfg = ProtocolConfig(n=16, f=3)
        dep = StreamDeployment(
            cfg, seed=5, max_epochs=30, byzantine_ids=[0, 14, 15]
        )
        dep.run(min_finalized_height=3, max_time=300)
        assert dep.min_finalized_height() >= 3
        assert dep.chains_consistent()
        # No synchronizer / NewLeader traffic exists in this protocol.
        assert dep.network.stats.sent("Wish") == 0
        assert dep.network.stats.sent("NewLeader") == 0
        # Skipped epochs: finalized blocks' epochs have gaps at Byzantine
        # leaders' epochs.
        epochs = {b.epoch for b in dep.replicas[1].finalized_chain[1:]}
        assert 1 not in epochs  # epoch 1's leader (replica 0) was silent

    def test_jittery_network_consistent(self):
        cfg = ProtocolConfig(n=13, f=3)
        dep = StreamDeployment(
            cfg,
            seed=6,
            latency=UniformLatency(0.3, 1.0, seed=6),
            epoch_duration=3.0,
            max_epochs=25,
        )
        dep.run(min_finalized_height=4, max_time=300)
        assert dep.chains_consistent()

    @pytest.mark.parametrize("seed", range(4))
    def test_consistency_across_seeds(self, seed):
        dep = StreamDeployment(
            ProtocolConfig(n=12, f=2), seed=seed, max_epochs=20
        )
        dep.run(min_finalized_height=3, max_time=300)
        assert dep.chains_consistent()

    def test_too_many_byzantine_rejected(self):
        with pytest.raises(ValueError):
            StreamDeployment(
                ProtocolConfig(n=10, f=2), byzantine_ids=[7, 8, 9]
            )


class TestMessageComplexity:
    def test_votes_scale_with_sample_size_not_n_squared(self):
        cfg = ProtocolConfig(n=36, f=7)
        dep = StreamDeployment(cfg, seed=7, max_epochs=10)
        dep.run(min_finalized_height=3, max_time=100)
        epochs_run = max(r.current_epoch for r in dep.replicas.values())
        votes = dep.network.stats.sent("StreamVote")
        # Per epoch: at most n senders x sample size (minus self-sends).
        assert votes <= epochs_run * cfg.n * cfg.sample_size
        assert votes > 0.3 * epochs_run * cfg.n * cfg.sample_size
