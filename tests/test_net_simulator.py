"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.net.simulator import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(9.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_zero_delay_runs_after_current_event(self):
        sim = Simulator()
        order = []

        def outer():
            sim.schedule(0.0, lambda: order.append("inner"))
            order.append("outer")

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: fired.append("x")))
        sim.run()
        assert fired == ["x"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.pending_events == 1


class TestRunControl:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append("late"))
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0
        sim.run()  # remaining event still fires afterwards
        assert fired == ["late"]

    def test_run_until_with_no_events_advances_clock(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_stop_when_predicate(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(stop_when=lambda: len(fired) >= 3)
        assert len(fired) == 3

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as e:
                errors.append(e)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1


class TestCancellationCompaction:
    def test_pending_events_is_live_counter(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending_events == 10
        handles[0].cancel()
        handles[1].cancel()
        handles[1].cancel()  # idempotent: no double decrement
        assert sim.pending_events == 8
        sim.step()  # fires the earliest live event (t=3)
        assert sim.pending_events == 7

    def test_tombstone_majority_compacts_heap(self):
        sim = Simulator()
        total = 4 * Simulator._COMPACT_FLOOR
        handles = [
            sim.schedule(float(i + 1), lambda: None) for i in range(total)
        ]
        assert len(sim._heap) == total
        # Cancel just over half; the lazy sweep must drop every tombstone.
        for h in handles[: total // 2 + 1]:
            h.cancel()
        live = total - (total // 2 + 1)
        assert sim.pending_events == live
        assert len(sim._heap) == live
        assert all(entry[3] is not None for entry in sim._heap)

    def test_small_heaps_are_not_compacted(self):
        sim = Simulator()
        total = Simulator._COMPACT_FLOOR - 2
        handles = [
            sim.schedule(float(i + 1), lambda: None) for i in range(total)
        ]
        for h in handles:
            h.cancel()
        # Below the floor the tombstones stay; the pop loop skims them.
        assert len(sim._heap) == total
        assert sim.pending_events == 0
        assert sim.step() is False
        assert sim._heap == []

    def test_survivors_fire_in_order_after_compaction(self):
        sim = Simulator()
        fired = []
        total = 2 * Simulator._COMPACT_FLOOR
        handles = [
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
            for i in range(total)
        ]
        for h in handles[::2]:  # cancel every even slot -> majority sweep
            h.cancel()
        for h in handles[1::4]:
            h.cancel()
        expected = [i for i in range(total) if i % 2 == 1 and (i - 1) % 4 != 0]
        sim.run()
        assert fired == expected
        assert sim.pending_events == 0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        sim.run()
        assert fired == ["x"]
        before = sim.pending_events
        handle.cancel()  # must not decrement counters or mark cancelled
        handle.cancel()
        assert sim.pending_events == before == 0
        # A fresh event still schedules and fires cleanly afterwards.
        sim.schedule(1.0, lambda: fired.append("y"))
        assert sim.pending_events == 1
        sim.run()
        assert fired == ["x", "y"]

    def test_compaction_preserves_cancelled_flag_semantics(self):
        sim = Simulator()
        total = 4 * Simulator._COMPACT_FLOOR
        handles = [
            sim.schedule(float(i + 1), lambda: None) for i in range(total)
        ]
        doomed = handles[: total // 2 + 1]
        for h in doomed:
            h.cancel()
        # Handles keep answering correctly even though their entries were
        # swept out of the heap.
        assert all(h.cancelled for h in doomed)
        assert not any(h.cancelled for h in handles[total // 2 + 1 :])
