"""Tests for prepared certificates (the ``prepared`` predicate)."""

from dataclasses import replace

import pytest

from repro.core.leader import leader_of_view
from repro.messages.probft import Prepare
from repro.quorum.certificates import validate_prepared_certificate

from .helpers import (
    make_crypto,
    make_prepare,
    make_prepared_cert,
    make_statement,
    saturated_config,
)


@pytest.fixture
def cfg():
    return saturated_config()


@pytest.fixture
def crypto(cfg):
    return make_crypto(cfg)


def validate(cert, cfg, crypto, view=1, value=b"v", holder=5):
    return validate_prepared_certificate(
        cert=cert,
        view=view,
        value=value,
        holder=holder,
        config=cfg,
        signatures=crypto.signatures,
        vrf=crypto.vrf,
        leader_of_view=leader_of_view,
    )


class TestValidCertificates:
    def test_valid_certificate_accepted(self, cfg, crypto):
        cert = make_prepared_cert(crypto, cfg, view=1, value=b"v")
        assert validate(cert, cfg, crypto)

    def test_value_none_accepts_any_consistent_value(self, cfg, crypto):
        cert = make_prepared_cert(crypto, cfg, view=1, value=b"v")
        assert validate(cert, cfg, crypto, value=None)

    def test_more_than_q_messages_fine(self, cfg, crypto):
        cert = make_prepared_cert(
            crypto, cfg, view=1, value=b"v", senders=range(cfg.q + 2)
        )
        assert validate(cert, cfg, crypto)

    def test_later_view_certificate(self, cfg, crypto):
        cert = make_prepared_cert(crypto, cfg, view=3, value=b"v")
        assert validate(cert, cfg, crypto, view=3)


class TestInvalidCertificates:
    def test_too_few_messages(self, cfg, crypto):
        cert = make_prepared_cert(
            crypto, cfg, view=1, value=b"v", senders=range(cfg.q - 1)
        )
        assert not validate(cert, cfg, crypto)

    def test_wrong_value_rejected(self, cfg, crypto):
        cert = make_prepared_cert(crypto, cfg, view=1, value=b"v")
        assert not validate(cert, cfg, crypto, value=b"other")

    def test_wrong_view_rejected(self, cfg, crypto):
        cert = make_prepared_cert(crypto, cfg, view=1, value=b"v")
        assert not validate(cert, cfg, crypto, view=2)

    def test_duplicate_senders_rejected(self, cfg, crypto):
        statement = make_statement(crypto, cfg, 1, b"v")
        one = make_prepare(crypto, cfg, 0, statement)
        cert = tuple([one] * cfg.q)
        assert not validate(cert, cfg, crypto)

    def test_statement_not_by_leader_rejected(self, cfg, crypto):
        bad_statement = make_statement(crypto, cfg, 1, b"v", signer=3)  # leader(1)=0
        cert = tuple(
            make_prepare(crypto, cfg, s, bad_statement) for s in range(cfg.q)
        )
        assert not validate(cert, cfg, crypto)

    def test_mixed_values_rejected(self, cfg, crypto):
        a = make_prepared_cert(crypto, cfg, 1, b"a", senders=range(cfg.q - 1))
        b = make_prepared_cert(crypto, cfg, 1, b"b", senders=[cfg.q])
        assert not validate(a + b, cfg, crypto, value=None)

    def test_tampered_outer_signature_rejected(self, cfg, crypto):
        cert = list(make_prepared_cert(crypto, cfg, 1, b"v"))
        cert[0] = replace(cert[0], signature=b"\x00" * 32)
        assert not validate(tuple(cert), cfg, crypto)

    def test_forged_vrf_sample_rejected(self, cfg, crypto):
        cert = list(make_prepared_cert(crypto, cfg, 1, b"v"))
        prepare: Prepare = cert[0].payload
        forged_sample = replace(prepare.sample, proof=b"\x11" * 32)
        forged = crypto.signatures.sign(
            cert[0].signer, Prepare(statement=prepare.statement, sample=forged_sample)
        )
        cert[0] = forged
        assert not validate(tuple(cert), cfg, crypto)

    def test_non_prepare_payload_rejected(self, cfg, crypto):
        statement = make_statement(crypto, cfg, 1, b"v")
        bogus = crypto.signatures.sign(0, statement.payload)
        cert = make_prepared_cert(crypto, cfg, 1, b"v", senders=range(cfg.q - 1))
        assert not validate(cert + (bogus,), cfg, crypto)

    def test_wrong_domain_rejected(self, cfg, crypto):
        other_cfg = saturated_config(seed_domain="slot-9")
        cert = make_prepared_cert(crypto, other_cfg, 1, b"v")
        assert not validate(cert, cfg, crypto)

    def test_empty_certificate_rejected(self, cfg, crypto):
        assert not validate((), cfg, crypto)
