"""Tests for leader rotation and the proposal-selection rule."""

import pytest

from repro.core.leader import (
    compute_proposal,
    leader_of_view,
    max_prepared_view,
    mode_values,
)
from repro.messages.probft import NewLeader

from .helpers import make_crypto, make_new_leader, saturated_config


class TestLeaderRotation:
    def test_round_robin(self):
        assert leader_of_view(1, 4) == 0
        assert leader_of_view(2, 4) == 1
        assert leader_of_view(4, 4) == 3
        assert leader_of_view(5, 4) == 0

    def test_every_replica_leads_within_n_views(self):
        n = 7
        leaders = {leader_of_view(v, n) for v in range(1, n + 1)}
        assert leaders == set(range(n))

    def test_rejects_view_zero(self):
        with pytest.raises(ValueError):
            leader_of_view(0, 4)


class TestModeValues:
    def test_unique_mode(self):
        assert mode_values([b"a", b"a", b"b"]) == frozenset({b"a"})

    def test_tie_returns_all(self):
        assert mode_values([b"a", b"b"]) == frozenset({b"a", b"b"})

    def test_empty(self):
        assert mode_values([]) == frozenset()


class TestMaxPreparedView:
    def test_zero_when_none_prepared(self):
        msgs = [
            NewLeader(view=2, prepared_view=0, prepared_value=None, cert=())
            for _ in range(3)
        ]
        assert max_prepared_view(msgs) == 0

    def test_takes_max(self):
        msgs = [
            NewLeader(view=5, prepared_view=v, prepared_value=b"x", cert=())
            for v in (1, 3, 2)
        ]
        assert max_prepared_view(msgs) == 3


class TestComputeProposal:
    @pytest.fixture
    def setup(self):
        cfg = saturated_config()
        return cfg, make_crypto(cfg)

    def test_no_prepared_uses_own_value(self, setup):
        cfg, crypto = setup
        msgs = [make_new_leader(crypto, cfg, s, view=2) for s in range(5)]
        value, v_max = compute_proposal(msgs, b"mine")
        assert value == b"mine"
        assert v_max is None

    def test_prepared_value_wins(self, setup):
        cfg, crypto = setup
        msgs = [make_new_leader(crypto, cfg, s, view=3) for s in range(4)]
        msgs.append(
            make_new_leader(crypto, cfg, 4, view=3, prepared_view=1,
                            prepared_value=b"decided")
        )
        value, v_max = compute_proposal(msgs, b"mine")
        assert value == b"decided"
        assert v_max == 1

    def test_newest_view_beats_popularity(self, setup):
        cfg, crypto = setup
        # Two senders prepared "old" in view 1, one prepared "new" in view 2.
        msgs = [
            make_new_leader(crypto, cfg, 0, view=3, prepared_view=1,
                            prepared_value=b"old"),
            make_new_leader(crypto, cfg, 1, view=3, prepared_view=1,
                            prepared_value=b"old"),
            make_new_leader(crypto, cfg, 2, view=3, prepared_view=2,
                            prepared_value=b"new"),
        ]
        value, v_max = compute_proposal(msgs, b"mine")
        assert value == b"new"
        assert v_max == 2

    def test_mode_among_newest_view(self, setup):
        cfg, crypto = setup
        msgs = [
            make_new_leader(crypto, cfg, s, view=4, prepared_view=2,
                            prepared_value=b"major")
            for s in range(3)
        ] + [
            make_new_leader(crypto, cfg, 3, view=4, prepared_view=2,
                            prepared_value=b"minor")
        ]
        value, v_max = compute_proposal(msgs, b"mine")
        assert value == b"major"
        assert v_max == 2

    def test_tie_broken_deterministically(self, setup):
        cfg, crypto = setup
        msgs = [
            make_new_leader(crypto, cfg, 0, view=3, prepared_view=1,
                            prepared_value=b"bbb"),
            make_new_leader(crypto, cfg, 1, view=3, prepared_view=1,
                            prepared_value=b"aaa"),
        ]
        value, _ = compute_proposal(msgs, b"mine")
        assert value == b"aaa"  # smallest in byte order
