"""Robustness / failure-injection tests: duplication, mixed faults, scale."""

import pytest

from repro.adversary.behaviors import crash_factory, silent_factory
from repro.adversary.flooding import flooding_factory
from repro.config import ProtocolConfig
from repro.core.invariants import audit_deployment
from repro.core.protocol import ProBFTDeployment
from repro.net.faults import PreGstChaos
from repro.net.latency import UniformLatency
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.sync.timeouts import FixedTimeout


class TestMessageDuplication:
    @pytest.mark.parametrize("dup", [0.1, 0.4])
    def test_duplication_preserves_correctness(self, dup):
        dep = ProBFTDeployment(
            ProtocolConfig(n=16, f=3), seed=1, duplicate_prob=dup
        )
        dep.run(max_time=2000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        assert audit_deployment(dep).ok

    def test_duplicates_actually_delivered(self):
        sim = Simulator()
        net = Network(sim, 2, duplicate_prob=0.5, duplicate_seed=3)
        received = []
        net.register(0, lambda s, m: received.append(m))
        net.register(1, lambda s, m: received.append(m))
        for i in range(100):
            net.send(0, 1, f"m{i}")
        sim.run()
        assert len(received) > 110  # ~50% duplicated

    def test_invalid_duplicate_prob(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, 2, duplicate_prob=1.0)


class TestMixedFaults:
    def test_silent_plus_crash_plus_flooder(self):
        """Budget of f split across three different fault behaviours."""
        cfg = ProtocolConfig(n=16, f=3)
        dep = ProBFTDeployment(
            cfg,
            seed=5,
            timeout_policy=FixedTimeout(25.0),
            byzantine={
                13: silent_factory(),
                14: crash_factory(crash_time=1.5),
                15: flooding_factory(),
            },
        )
        dep.run(max_time=3000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        assert audit_deployment(dep).ok

    def test_faults_plus_chaos_plus_duplication(self):
        cfg = ProtocolConfig(n=13, f=4)
        dep = ProBFTDeployment(
            cfg,
            seed=6,
            latency=UniformLatency(0.5, 2.0, seed=6),
            gst=30.0,
            chaos=PreGstChaos(max_extra=25.0, seed=6),
            timeout_policy=FixedTimeout(30.0),
            duplicate_prob=0.15,
            byzantine={11: silent_factory(), 12: flooding_factory()},
        )
        dep.run(max_time=5000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok


class TestScale:
    def test_n_200_decides_quickly(self):
        """A laptop-scale 'big' deployment still decides in 3 steps."""
        cfg = ProtocolConfig(n=200, f=40)
        dep = ProBFTDeployment(cfg, seed=2)
        dep.run(max_time=500)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        # Message complexity advantage at this size: < 25% of PBFT.
        from repro.analysis.messages import pbft_messages

        # Integer rounding (q=29, s=50 at n=200) puts the ratio at ~25.3%.
        assert dep.network.stats.sent_total < 0.27 * pbft_messages(200)

    def test_minimum_system_n4(self):
        cfg = ProtocolConfig(n=4, f=1)
        dep = ProBFTDeployment(cfg, seed=3)
        dep.run(max_time=500)
        assert dep.all_correct_decided()
        assert dep.agreement_ok


class TestSeededAgreementSweep:
    """A mini-fuzz: many seeds, adversarial conditions, agreement must hold."""

    @pytest.mark.parametrize("seed", range(8))
    def test_equivocation_plus_chaos_never_disagrees(self, seed):
        from repro.adversary.plans import equivocation_attack_deployment

        cfg = ProtocolConfig(n=15, f=3)
        dep, _plan = equivocation_attack_deployment(
            cfg,
            seed=seed,
            latency=UniformLatency(0.5, 1.5, seed=seed),
            timeout_policy=FixedTimeout(25.0),
        )
        dep.run(max_time=5000)
        assert dep.agreement_ok
        assert audit_deployment(dep).ok
