"""Property-based tests for the accumulator merge algebra.

The sharded/distributed fan-in rests on three algebraic claims about
``Welford.merge`` / ``StreamingProportion.merge`` / ``CellAccumulator.merge``:

* **merge-of-splits == batch** — accumulators built over any ordered
  partition of a stream, merged in partition order, equal the single
  accumulator over the whole stream;
* **associativity** — ``(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)``;
* **commutativity-with-reordering** — the *count-like* state (counts,
  success tallies, hence proportions and Wilson intervals) is invariant
  under merging shards in any order; float sums commute exactly whenever
  the observations are exactly representable (the booleans/counts our
  cells produce) and within rounding otherwise.

Each property is checked with hypothesis when it is installed and through
seeded randomized sweeps otherwise (CI installs only requirements.txt, so
the seeded path is the floor; both explore random values *and* random
partition points).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.harness.metrics import StreamingProportion, Welford
from repro.harness.registry import CellAccumulator, MatrixCell

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment dependent
    HAVE_HYPOTHESIS = False

CELL = MatrixCell(
    protocol="probft", adversary="silent", latency="constant", n=8, f=2
)

#: Seeded fallback sweep size (hypothesis drives its own example count).
FALLBACK_CASES = 200


# ----------------------------------------------------------------------
# Shared generators and property checks (both drivers funnel through these)
# ----------------------------------------------------------------------


def split_points(rng: random.Random, length: int, parts: int):
    """Ordered cut points partitioning ``range(length)`` into ``parts``."""
    if length == 0:
        return [0] * (parts - 1)
    return sorted(rng.randint(0, length) for _ in range(parts - 1))


def partition(values, cuts):
    pieces = []
    start = 0
    for cut in list(cuts) + [len(values)]:
        pieces.append(values[start:cut])
        start = cut
    return pieces


def welford_of(values) -> Welford:
    return Welford().extend(values)


def assert_welford_equal(a: Welford, b: Welford, exact: bool) -> None:
    assert a.count == b.count
    if a.count == 0:
        assert math.isnan(a.mean) and math.isnan(b.mean)
        return
    if exact:
        assert a.total == b.total
        assert a.mean == b.mean
        assert a.variance == pytest.approx(b.variance, rel=1e-9, abs=1e-9)
    else:
        assert a.total == pytest.approx(b.total, rel=1e-9)
        assert a.mean == pytest.approx(b.mean, rel=1e-9)
        assert a.variance == pytest.approx(b.variance, rel=1e-6, abs=1e-6)


def check_welford_merge_of_splits(values, cuts, exact):
    whole = welford_of(values)
    merged = Welford()
    for piece in partition(values, cuts):
        merged.merge(welford_of(piece))
    assert_welford_equal(merged, whole, exact)


def check_welford_associativity(values, cuts, exact):
    a, b, c = partition(values, cuts)
    left = welford_of(a).merge(welford_of(b)).merge(welford_of(c))
    right = welford_of(a).merge(welford_of(b).merge(welford_of(c)))
    assert_welford_equal(left, right, exact)


def check_welford_reorder_counts(values, cuts, order):
    """Count-like state is permutation-invariant; on exactly-representable
    values the float sums commute exactly too."""
    pieces = partition(values, cuts)
    forward = Welford()
    for piece in pieces:
        forward.merge(welford_of(piece))
    shuffled = Welford()
    for index in order:
        shuffled.merge(welford_of(pieces[index]))
    assert shuffled.count == forward.count
    if all(float(v).is_integer() for v in values):
        assert shuffled.total == forward.total
        assert shuffled.variance == pytest.approx(forward.variance, rel=1e-9, abs=1e-9)


def proportion_of(outcomes) -> StreamingProportion:
    acc = StreamingProportion()
    for outcome in outcomes:
        acc.add(outcome)
    return acc


def check_proportion_merge_of_splits(outcomes, cuts):
    whole = proportion_of(outcomes)
    merged = StreamingProportion()
    for piece in partition(outcomes, cuts):
        merged.merge(proportion_of(piece))
    assert (merged.successes, merged.trials) == (whole.successes, whole.trials)
    assert merged.interval == whole.interval  # exact, Wilson included


def check_proportion_reorder(outcomes, cuts, order):
    pieces = partition(outcomes, cuts)
    forward = StreamingProportion()
    for piece in pieces:
        forward.merge(proportion_of(piece))
    shuffled = StreamingProportion()
    for index in order:
        shuffled.merge(proportion_of(pieces[index]))
    assert (shuffled.successes, shuffled.trials) == (
        forward.successes,
        forward.trials,
    )


def make_row(rng: random.Random) -> dict:
    """A synthetic trial row with exactly-representable observations — the
    same shape ``run_matrix_cell`` emits (decide ratios are kept 0/1 so the
    float algebra is exact, as in real constant-latency cells)."""
    n_correct = rng.randint(1, 8)
    decided = rng.choice([0, n_correct])
    return {
        "decided": decided,
        "n_correct": n_correct,
        "all_decided": decided == n_correct,
        "agreement_ok": rng.random() < 0.8,
        "max_view": rng.randint(1, 5),
        "last_decision_time": float(rng.randint(0, 64)),
        "total_messages": rng.randint(0, 512),
        "total_bytes": rng.randint(0, 4096),
    }


def cell_acc_of(rows) -> CellAccumulator:
    acc = CellAccumulator(CELL)
    for row in rows:
        acc.add(row)
    return acc


def check_cell_merge_of_splits(rows, cuts):
    whole = cell_acc_of(rows)
    merged = CellAccumulator(CELL)
    for piece in partition(rows, cuts):
        merged.merge(cell_acc_of(piece))
    assert merged.trials == whole.trials
    if rows:
        # Exactly-representable observations: the whole summary (rounded
        # rates, Wilson interval, cost columns) matches bit-for-bit.
        assert merged.summary() == whole.summary()


def check_cell_associativity(rows, cuts):
    a, b, c = partition(rows, cuts)
    left = cell_acc_of(a).merge(cell_acc_of(b)).merge(cell_acc_of(c))
    right = cell_acc_of(a).merge(cell_acc_of(b).merge(cell_acc_of(c)))
    assert left.trials == right.trials
    if rows:
        assert left.summary() == right.summary()


# ----------------------------------------------------------------------
# Seeded randomized driver (always runs; the CI floor)
# ----------------------------------------------------------------------


class TestSeededRandomized:
    def test_welford_merge_of_splits_integers_exact(self):
        rng = random.Random(0xA1)
        for _ in range(FALLBACK_CASES):
            values = [float(rng.randint(-100, 100)) for _ in range(rng.randint(0, 48))]
            cuts = split_points(rng, len(values), rng.randint(2, 5))
            check_welford_merge_of_splits(values, cuts, exact=True)

    def test_welford_merge_of_splits_floats_close(self):
        rng = random.Random(0xA2)
        for _ in range(FALLBACK_CASES):
            values = [rng.uniform(-1e6, 1e6) for _ in range(rng.randint(0, 48))]
            cuts = split_points(rng, len(values), rng.randint(2, 5))
            check_welford_merge_of_splits(values, cuts, exact=False)

    def test_welford_associativity(self):
        rng = random.Random(0xA3)
        for _ in range(FALLBACK_CASES):
            exact = rng.random() < 0.5
            values = (
                [float(rng.randint(-50, 50)) for _ in range(rng.randint(0, 36))]
                if exact
                else [rng.gauss(0.0, 100.0) for _ in range(rng.randint(0, 36))]
            )
            cuts = split_points(rng, len(values), 3)
            check_welford_associativity(values, cuts, exact=exact)

    def test_welford_reorder_commutes_on_counts(self):
        rng = random.Random(0xA4)
        for _ in range(FALLBACK_CASES):
            values = [float(rng.randint(0, 10)) for _ in range(rng.randint(0, 36))]
            parts = rng.randint(2, 5)
            cuts = split_points(rng, len(values), parts)
            order = list(range(parts))
            rng.shuffle(order)
            check_welford_reorder_counts(values, cuts, order)

    def test_proportion_merge_of_splits(self):
        rng = random.Random(0xB1)
        for _ in range(FALLBACK_CASES):
            outcomes = [rng.random() < 0.3 for _ in range(rng.randint(0, 64))]
            cuts = split_points(rng, len(outcomes), rng.randint(2, 5))
            check_proportion_merge_of_splits(outcomes, cuts)

    def test_proportion_reorder_commutes(self):
        rng = random.Random(0xB2)
        for _ in range(FALLBACK_CASES):
            outcomes = [rng.random() < 0.7 for _ in range(rng.randint(0, 64))]
            parts = rng.randint(2, 5)
            cuts = split_points(rng, len(outcomes), parts)
            order = list(range(parts))
            rng.shuffle(order)
            check_proportion_reorder(outcomes, cuts, order)

    def test_cell_accumulator_merge_of_splits(self):
        rng = random.Random(0xC1)
        for _ in range(60):
            rows = [make_row(rng) for _ in range(rng.randint(0, 24))]
            cuts = split_points(rng, len(rows), rng.randint(2, 4))
            check_cell_merge_of_splits(rows, cuts)

    def test_cell_accumulator_associativity(self):
        rng = random.Random(0xC2)
        for _ in range(60):
            rows = [make_row(rng) for _ in range(rng.randint(0, 24))]
            cuts = split_points(rng, len(rows), 3)
            check_cell_associativity(rows, cuts)


# ----------------------------------------------------------------------
# Hypothesis driver (richer search when the library is available)
# ----------------------------------------------------------------------

if HAVE_HYPOTHESIS:
    int_values = st.lists(
        st.integers(-100, 100).map(float), min_size=0, max_size=48
    )
    float_values = st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        min_size=0,
        max_size=48,
    )
    outcome_lists = st.lists(st.booleans(), min_size=0, max_size=64)

    def cuts_for(draw, length, parts):
        return sorted(
            draw(st.integers(0, length)) for _ in range(parts - 1)
        )

    class TestHypothesis:
        @settings(max_examples=120, deadline=None)
        @given(values=int_values, data=st.data())
        def test_welford_merge_of_splits_integers_exact(self, values, data):
            cuts = cuts_for(data.draw, len(values), data.draw(st.integers(2, 5)))
            check_welford_merge_of_splits(values, cuts, exact=True)

        @settings(max_examples=120, deadline=None)
        @given(values=float_values, data=st.data())
        def test_welford_merge_of_splits_floats_close(self, values, data):
            cuts = cuts_for(data.draw, len(values), data.draw(st.integers(2, 5)))
            check_welford_merge_of_splits(values, cuts, exact=False)

        @settings(max_examples=120, deadline=None)
        @given(values=int_values, data=st.data())
        def test_welford_associativity(self, values, data):
            cuts = cuts_for(data.draw, len(values), 3)
            check_welford_associativity(values, cuts, exact=True)

        @settings(max_examples=120, deadline=None)
        @given(values=int_values, data=st.data())
        def test_welford_reorder_commutes_on_counts(self, values, data):
            parts = data.draw(st.integers(2, 5))
            cuts = cuts_for(data.draw, len(values), parts)
            order = data.draw(st.permutations(list(range(parts))))
            check_welford_reorder_counts(values, cuts, order)

        @settings(max_examples=120, deadline=None)
        @given(outcomes=outcome_lists, data=st.data())
        def test_proportion_merge_of_splits(self, outcomes, data):
            cuts = cuts_for(data.draw, len(outcomes), data.draw(st.integers(2, 5)))
            check_proportion_merge_of_splits(outcomes, cuts)

        @settings(max_examples=120, deadline=None)
        @given(outcomes=outcome_lists, data=st.data())
        def test_proportion_reorder_commutes(self, outcomes, data):
            parts = data.draw(st.integers(2, 5))
            cuts = cuts_for(data.draw, len(outcomes), parts)
            order = data.draw(st.permutations(list(range(parts))))
            check_proportion_reorder(outcomes, cuts, order)

        @settings(max_examples=40, deadline=None)
        @given(seed=st.integers(0, 2**32 - 1), data=st.data())
        def test_cell_accumulator_merge_of_splits(self, seed, data):
            rng = random.Random(seed)
            rows = [make_row(rng) for _ in range(data.draw(st.integers(0, 24)))]
            cuts = cuts_for(data.draw, len(rows), data.draw(st.integers(2, 4)))
            check_cell_merge_of_splits(rows, cuts)

        @settings(max_examples=40, deadline=None)
        @given(seed=st.integers(0, 2**32 - 1), data=st.data())
        def test_cell_accumulator_associativity(self, seed, data):
            rng = random.Random(seed)
            rows = [make_row(rng) for _ in range(data.draw(st.integers(0, 24)))]
            cuts = cuts_for(data.draw, len(rows), 3)
            check_cell_associativity(rows, cuts)
