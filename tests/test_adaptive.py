"""Adaptive Wilson-interval trial budgets: rules, driver, every surface.

The subsystem's hard guarantees, pinned on golden seeds:

* stopping rules are pure functions of the folded submission-order prefix,
  evaluated only at ``chunk`` checkpoints — so ``trials_used`` is
  **identical on every backend and worker count**;
* an adaptive run's estimates are **bit-identical to the same-length
  prefix of the fixed-budget run** (seeds derive from the fixed-budget
  index layout, never from earlier cells' adaptive usage);
* degenerate Wilson intervals (zero trials, all-success/all-failure) are
  total and exact, so rules can consult them from trial zero.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.cli import main as cli_main
from repro.harness.adaptive import (
    All,
    Any,
    DEFAULT_CHUNK,
    FixedBudget,
    ProportionProgress,
    STOP_BUDGET,
    STOP_MAX_TRIALS,
    STOP_TARGET_WIDTH,
    StoppingRule,
    TargetWidth,
    consume_adaptive,
)
from repro.harness.metrics import StreamingProportion, wilson_interval
from repro.harness.parallel import TrialSpec, derive_seed
from repro.harness.registry import (
    CellAccumulator,
    MATRICES,
    ScenarioMatrix,
    get_matrix,
    run_matrix,
    run_matrix_cell,
)
from repro.montecarlo.experiments import (
    estimate_termination,
    estimate_viewchange_decide,
)

BACKEND_NAMES = ("serial", "pool", "async", "sharded")

#: Two cheap full-protocol cells at n=8; all-success agreement, so the
#: all-success Wilson width formula z²/(t+z²) predicts the stopping point.
GOLDEN_MATRIX = ScenarioMatrix(
    name="adaptive-golden",
    protocols=("probft",),
    adversaries=("none", "silent"),
    latencies=("constant",),
    n=8,
)


class _FakeProgress:
    def __init__(self) -> None:
        self.trials = 0
        self.widths = {"m": 1.0}

    def width(self, metric: str) -> float:
        return self.widths[metric]


class _RecordingRule(StoppingRule):
    """Fires at a threshold; records every checkpoint it was consulted at."""

    def __init__(self, stop_at=None):
        self.stop_at = stop_at
        self.consulted = []

    def decision(self, progress):
        self.consulted.append(progress.trials)
        if self.stop_at is not None and progress.trials >= self.stop_at:
            return "recorded-stop"
        return None


class TestRules:
    def test_fixed_budget(self):
        progress = _FakeProgress()
        rule = FixedBudget(10)
        progress.trials = 9
        assert rule.decision(progress) is None
        progress.trials = 10
        assert rule.decision(progress) == STOP_BUDGET
        with pytest.raises(ValueError, match="budget"):
            FixedBudget(0)

    def test_target_width_fires_on_narrow_interval(self):
        progress = _FakeProgress()
        rule = TargetWidth(0.1, metric="m")
        progress.trials = 5
        progress.widths["m"] = 0.5
        assert rule.decision(progress) is None
        progress.widths["m"] = 0.1
        assert rule.decision(progress) == STOP_TARGET_WIDTH

    def test_target_width_min_trials_gate(self):
        progress = _FakeProgress()
        rule = TargetWidth(0.5, metric="m", min_trials=20)
        progress.trials = 19
        progress.widths["m"] = 0.0
        assert rule.decision(progress) is None
        progress.trials = 20
        assert rule.decision(progress) == STOP_TARGET_WIDTH

    def test_target_width_max_trials_cap(self):
        progress = _FakeProgress()
        rule = TargetWidth(0.01, metric="m", max_trials=50)
        progress.trials = 49
        progress.widths["m"] = 0.9
        assert rule.decision(progress) is None
        progress.trials = 50
        assert rule.decision(progress) == STOP_MAX_TRIALS
        # Convergence at the cap still reports convergence, not surrender.
        progress.widths["m"] = 0.005
        assert rule.decision(progress) == STOP_TARGET_WIDTH

    def test_target_width_validation(self):
        with pytest.raises(ValueError, match="width"):
            TargetWidth(0.0)
        with pytest.raises(ValueError, match="width"):
            TargetWidth(1.5)
        with pytest.raises(ValueError, match="min_trials"):
            TargetWidth(0.1, min_trials=0)
        with pytest.raises(ValueError, match="max_trials"):
            TargetWidth(0.1, min_trials=10, max_trials=5)

    def test_any_first_firing_reason_wins(self):
        progress = _FakeProgress()
        progress.trials = 100
        progress.widths["m"] = 0.05
        rule = Any(TargetWidth(0.1, metric="m"), FixedBudget(50))
        assert rule.decision(progress) == STOP_TARGET_WIDTH
        progress.widths["m"] = 0.9
        assert rule.decision(progress) == STOP_BUDGET

    def test_all_requires_every_rule(self):
        progress = _FakeProgress()
        progress.trials = 100
        progress.widths["m"] = 0.5
        rule = All(TargetWidth(0.6, metric="m"), FixedBudget(200))
        assert rule.decision(progress) is None
        progress.trials = 200
        assert rule.decision(progress) == f"{STOP_TARGET_WIDTH}+{STOP_BUDGET}"

    def test_operator_composition(self):
        either = TargetWidth(0.1, metric="m") | FixedBudget(50)
        both = TargetWidth(0.1, metric="m") & FixedBudget(50)
        assert isinstance(either, Any) and len(either.rules) == 2
        assert isinstance(both, All) and len(both.rules) == 2

    def test_empty_composites_rejected(self):
        with pytest.raises(ValueError):
            Any()
        with pytest.raises(ValueError):
            All()


class TestProportionProgress:
    def test_trials_and_width(self):
        props = {"hit": StreamingProportion()}
        progress = ProportionProgress(props)
        assert progress.trials == 0
        assert progress.width("hit") == 1.0  # zero-information interval
        for outcome in (True, True, False, True):
            props["hit"].add(outcome)
        assert progress.trials == 4
        low, high = props["hit"].interval
        assert progress.width("hit") == high - low

    def test_unknown_metric_lists_available(self):
        progress = ProportionProgress(
            {"a": StreamingProportion(), "b": StreamingProportion()}
        )
        with pytest.raises(KeyError, match="a, b"):
            progress.width("zzz")

    def test_needs_counters(self):
        with pytest.raises(ValueError):
            ProportionProgress({})


class TestConsumeAdaptive:
    def test_checkpoints_only_at_chunk_boundaries(self):
        progress = _FakeProgress()
        rule = _RecordingRule(stop_at=12)

        def fold(_value):
            progress.trials += 1

        used, reason = consume_adaptive(iter(range(100)), fold, progress, rule, chunk=4)
        assert used == 12
        assert reason == "recorded-stop"
        assert rule.consulted == [4, 8, 12]  # never between checkpoints

    def test_exhaustion_resolves_to_budget(self):
        progress = _FakeProgress()
        rule = _RecordingRule(stop_at=None)

        def fold(_value):
            progress.trials += 1

        used, reason = consume_adaptive(iter(range(5)), fold, progress, rule, chunk=4)
        assert used == 5
        assert reason == STOP_BUDGET
        # One checkpoint mid-stream, one final consult at exhaustion.
        assert rule.consulted == [4, 5]

    def test_stream_closed_on_early_stop(self):
        closed = []

        def stream():
            try:
                for i in range(100):
                    yield i
            finally:
                closed.append(True)

        progress = _FakeProgress()
        rule = _RecordingRule(stop_at=4)

        def fold(_value):
            progress.trials += 1

        used, _reason = consume_adaptive(stream(), fold, progress, rule, chunk=4)
        assert used == 4
        assert closed == [True]

    def test_chunk_validated(self):
        with pytest.raises(ValueError, match="chunk"):
            consume_adaptive(iter([]), lambda v: None, _FakeProgress(), FixedBudget(1), chunk=0)

    def test_trial_cap_checkpoint_off_the_chunk_grid(self):
        """A declared cap is honored to the trial even when it is not a
        multiple of chunk — the driver inserts an extra checkpoint at it
        instead of overshooting to the next chunk boundary."""
        progress = _FakeProgress()

        def fold(_value):
            progress.trials += 1

        used, reason = consume_adaptive(
            iter(range(1000)), fold, progress, FixedBudget(10), chunk=32
        )
        assert used == 10  # not 32
        assert reason == STOP_BUDGET

        progress = _FakeProgress()
        progress.widths["m"] = 0.9  # never converges
        used, reason = consume_adaptive(
            iter(range(1000)),
            fold,
            progress,
            TargetWidth(0.001, metric="m", max_trials=40),
            chunk=32,
        )
        assert used == 40  # not 64
        assert reason == STOP_MAX_TRIALS

    def test_trial_cap_composition(self):
        assert FixedBudget(10).trial_cap() == 10
        assert TargetWidth(0.1, max_trials=40).trial_cap() == 40
        assert TargetWidth(0.1).trial_cap() is None
        # Any: the earliest member cap binds; All: the latest, and only
        # when every member is capped.
        assert Any(TargetWidth(0.1), FixedBudget(50)).trial_cap() == 50
        assert Any(FixedBudget(20), FixedBudget(50)).trial_cap() == 20
        assert All(FixedBudget(20), FixedBudget(50)).trial_cap() == 50
        assert All(TargetWidth(0.1), FixedBudget(50)).trial_cap() is None

    def test_uncapped_custom_rule_keeps_chunk_grid(self):
        """Rules without a declared cap keep the pure chunk schedule (the
        default trial_cap() is None)."""
        progress = _FakeProgress()
        rule = _RecordingRule(stop_at=5)

        def fold(_value):
            progress.trials += 1

        used, reason = consume_adaptive(iter(range(100)), fold, progress, rule, chunk=4)
        assert used == 8  # first chunk boundary at/after the threshold
        assert rule.consulted == [4, 8]


class TestDegenerateIntervals:
    """Zero-trial and all-success/all-failure cells are total and exact."""

    def test_zero_trials_is_the_unit_interval(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        assert StreamingProportion().interval == (0.0, 1.0)
        assert StreamingProportion().interval_width == 1.0

    def test_invalid_counts_still_raise(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)  # successes out of range for 0 trials
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)
        with pytest.raises(ValueError):
            wilson_interval(3, -3)

    @pytest.mark.parametrize("trials", [1, 2, 7, 50, 1000])
    def test_all_success_upper_endpoint_exact(self, trials):
        low, high = wilson_interval(trials, trials)
        assert high == 1.0  # pinned exactly, not within-epsilon
        assert 0.0 < low < 1.0

    @pytest.mark.parametrize("trials", [1, 2, 7, 50, 1000])
    def test_all_failure_lower_endpoint_exact(self, trials):
        low, high = wilson_interval(0, trials)
        assert low == 0.0
        assert 0.0 < high < 1.0

    def test_all_success_width_formula(self):
        """Width after t all-success trials is z²/(t+z²) — the budget
        heuristic the docs quote."""
        z = 1.96
        for trials in (8, 16, 73):
            low, high = wilson_interval(trials, trials)
            assert (high - low) == pytest.approx(z * z / (trials + z * z), rel=1e-9)

    def test_cell_accumulator_width_from_zero(self):
        cell = GOLDEN_MATRIX.cells()[0]
        accumulator = CellAccumulator(cell)
        assert accumulator.width("agreement_rate") == 1.0
        with pytest.raises(KeyError, match="agreement_rate"):
            accumulator.width("decide_rate")


def _fixed_prefix_summary(cell, base, used, master_seed, max_time=5000.0):
    """The fixed-budget run's first ``used`` trials of one cell, re-folded."""
    accumulator = CellAccumulator(cell)
    for j in range(used):
        index = base + j
        accumulator.add(
            run_matrix_cell(
                TrialSpec(index, derive_seed(master_seed, index), (cell, max_time))
            )
        )
    return accumulator.summary()


class TestAdaptiveMatrix:
    CAP = 24
    SEED = 11
    WIDTH = 0.35  # all-success: stops once z²/(t+z²) <= 0.35, i.e. t >= 8
    CHUNK = 6

    def _adaptive(self, **kwargs):
        return run_matrix(
            GOLDEN_MATRIX,
            trials=self.CAP,
            master_seed=self.SEED,
            target_width=self.WIDTH,
            chunk=self.CHUNK,
            **kwargs,
        )

    def test_stops_early_with_reason(self):
        report = self._adaptive()
        assert report.adaptive
        assert report.target_width == self.WIDTH and report.chunk == self.CHUNK
        for row in report.rows:
            assert row["trials"] == self.CAP
            assert row["trials_used"] == 12  # first multiple of 6 with t >= 8
            assert row["stop_reason"] == STOP_TARGET_WIDTH
            assert row["interval_width"] <= self.WIDTH

    def test_adaptive_is_bit_identical_prefix_of_fixed_run(self):
        """The acceptance criterion: every adaptive cell's estimates equal
        the same-length prefix of the fixed-budget run — whose seeds use the
        *cap* layout, so cell k's base is k*CAP regardless of usage."""
        report = self._adaptive()
        for k, (cell, row) in enumerate(zip(GOLDEN_MATRIX.cells(), report.rows)):
            used = row["trials_used"]
            assert used <= self.CAP
            expected = _fixed_prefix_summary(cell, k * self.CAP, used, self.SEED)
            for key, value in expected.items():
                if key == "trials":
                    assert row["trials_used"] == value
                else:
                    assert row[key] == value, key  # exact, not approx

    def test_identical_across_all_backends(self):
        reference = self._adaptive()
        for name in BACKEND_NAMES:
            got = self._adaptive(workers=2, backend=name)
            assert got.rows == reference.rows, name  # incl. trials_used

    def test_rule_never_firing_equals_fixed_run(self):
        """A width no cell can reach makes the adaptive run spend the full
        budget — and match the fixed run row-for-row (modulo stop columns)."""
        fixed = run_matrix(GOLDEN_MATRIX, trials=8, master_seed=3)
        adaptive = run_matrix(
            GOLDEN_MATRIX,
            trials=8,
            master_seed=3,
            target_width=0.001,
            chunk=4,
        )
        for frow, arow in zip(fixed.rows, adaptive.rows):
            assert arow["trials_used"] == 8
            assert arow["stop_reason"] == STOP_MAX_TRIALS
            for key, value in frow.items():
                assert arow[key] == value, key

    def test_explicit_stopping_rule(self):
        report = run_matrix(
            GOLDEN_MATRIX,
            trials=self.CAP,
            master_seed=self.SEED,
            stopping=FixedBudget(6),
            chunk=6,
        )
        for row in report.rows:
            assert row["trials_used"] == 6
            assert row["stop_reason"] == STOP_BUDGET

    def test_matrix_declared_widths(self):
        matrix = ScenarioMatrix(
            name="declared",
            protocols=("probft",),
            adversaries=("none", "silent"),
            latencies=("constant",),
            n=8,
            budget=24,
            target_widths=(("silent", 0.35),),
        )
        assert matrix.adaptive
        cells = {c.adversary: c for c in matrix.cells()}
        assert matrix.cell_target_width(cells["silent"]) == 0.35
        assert matrix.cell_target_width(cells["none"]) is None
        report = run_matrix(matrix, master_seed=self.SEED, chunk=6)
        by_adversary = {row["adversary"]: row for row in report.rows}
        # The width-less cell runs its whole budget (FixedBudget fallback);
        # the targeted cell stops early.
        assert by_adversary["none"]["trials_used"] == 24
        assert by_adversary["none"]["stop_reason"] == STOP_BUDGET
        assert by_adversary["silent"]["trials_used"] == 12
        assert by_adversary["silent"]["stop_reason"] == STOP_TARGET_WIDTH

    def test_with_size_carries_widths(self):
        matrix = MATRICES["adaptive-demo"].with_size(10)
        assert matrix.target_width == MATRICES["adaptive-demo"].target_width

    def test_adaptive_demo_matrix_registered(self):
        matrix = get_matrix("adaptive-demo")
        assert matrix.adaptive
        assert matrix.budget == 64

    def test_validation(self):
        with pytest.raises(ValueError, match="not both"):
            run_matrix(
                GOLDEN_MATRIX,
                trials=4,
                target_width=0.2,
                stopping=FixedBudget(2),
            )
        with pytest.raises(ValueError, match="target_width"):
            run_matrix(GOLDEN_MATRIX, trials=4, target_width=1.5)
        with pytest.raises(ValueError, match="chunk"):
            run_matrix(GOLDEN_MATRIX, trials=4, target_width=0.2, chunk=0)
        with pytest.raises(ValueError, match="target_width"):
            ScenarioMatrix(name="bad", target_width=0.0)
        with pytest.raises(ValueError, match="target width"):
            ScenarioMatrix(name="bad", target_widths=(("silent", 2.0),))

    def test_fixed_runs_unchanged(self):
        """No adaptive input → no adaptive columns, classic headers."""
        report = run_matrix(GOLDEN_MATRIX, trials=2, master_seed=1)
        assert not report.adaptive
        assert report.chunk is None
        assert "trials_used" not in report.rows[0]
        assert "trials_used" not in report.headers
        for row, rendered in zip(report.rows, report.table_rows()):
            assert rendered == [row[h] for h in report.headers]

    def test_adaptive_headers_roundtrip(self):
        report = self._adaptive()
        assert "trials_used" in report.headers
        assert "stop_reason" in report.headers
        for row, rendered in zip(report.rows, report.table_rows()):
            assert rendered == [row[h] for h in report.headers]


class TestAdaptiveEstimators:
    def test_termination_stopping_prefix_identity(self):
        rule = TargetWidth(0.15, metric="per_replica_decides", max_trials=400)
        adaptive = estimate_termination(
            32, 6, 1.7, trials=400, seed=9, stopping=rule, chunk=32
        )
        assert adaptive.trials < 400
        assert adaptive.stop_reason == STOP_TARGET_WIDTH
        low, high = adaptive.estimates["per_replica_decides"].interval
        assert high - low <= 0.15
        prefix = estimate_termination(32, 6, 1.7, trials=adaptive.trials, seed=9)
        assert prefix.stop_reason is None
        assert {k: v for k, v in prefix.estimates.items()} == dict(
            adaptive.estimates
        )
        assert prefix.mean_prepared_fraction == adaptive.mean_prepared_fraction

    def test_trials_used_identical_across_backends(self):
        rule = TargetWidth(0.15, metric="per_replica_decides")
        reference = estimate_termination(
            32, 6, 1.7, trials=400, seed=9, stopping=rule, chunk=32
        )
        for name in BACKEND_NAMES:
            got = estimate_termination(
                32,
                6,
                1.7,
                trials=400,
                seed=9,
                stopping=TargetWidth(0.15, metric="per_replica_decides"),
                chunk=32,
                workers=2,
                backend=name,
            )
            assert got.trials == reference.trials, name
            assert got.stop_reason == reference.stop_reason, name
            assert dict(got.estimates) == dict(reference.estimates), name

    def test_viewchange_composed_rule(self):
        rule = Any(
            TargetWidth(0.1, metric="decides_from_partial_prepare"),
            FixedBudget(128),
        )
        result = estimate_viewchange_decide(
            32, 6, 1.7, trials=1000, seed=4, stopping=rule, chunk=32
        )
        assert result.trials <= 1000
        assert result.stop_reason in (STOP_TARGET_WIDTH, STOP_BUDGET)
        # The cap member bounds the spend even if the width never resolves.
        assert result.trials <= 128 or result.stop_reason == STOP_TARGET_WIDTH

    def test_unknown_stopping_metric_raises_with_choices(self):
        with pytest.raises(KeyError, match="per_replica_decides"):
            estimate_termination(
                32,
                6,
                1.7,
                trials=64,
                seed=9,
                stopping=TargetWidth(0.1, metric="nope"),
                chunk=8,
            )

    def test_fixed_estimator_results_unchanged(self):
        result = estimate_termination(32, 6, 1.7, trials=40, seed=9)
        assert result.trials == 40
        assert result.stop_reason is None

    def test_estimator_max_trials_never_overshot(self):
        """The estimator path has no spec-stream clamp of its own, so the
        rule's cap must bound the spend even off the chunk grid."""
        rule = TargetWidth(0.001, metric="per_replica_decides", max_trials=40)
        result = estimate_termination(
            32, 6, 1.7, trials=5000, seed=9, stopping=rule, chunk=32
        )
        assert result.trials == 40  # not 64
        assert result.stop_reason == STOP_MAX_TRIALS
        # And the capped run is still a bit-identical fixed-run prefix.
        prefix = estimate_termination(32, 6, 1.7, trials=40, seed=9)
        assert dict(prefix.estimates) == dict(result.estimates)


class TestAdaptiveCli:
    def run_cli(self, capsys, *argv):
        code = cli_main(list(argv))
        return code, capsys.readouterr()

    def test_target_width_json_report(self, capsys):
        code, captured = self.run_cli(
            capsys,
            "sweep",
            "--trials",
            "24",
            "--target-width",
            "0.35",
            "--chunk",
            "6",
            "--json",
        )
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["target_width"] == 0.35
        assert payload["chunk"] == 6
        for row in payload["rows"]:
            assert row["trials_used"] <= payload["trials"]
            assert row["stop_reason"] == STOP_TARGET_WIDTH
            assert row["interval_width"] <= 0.35
            assert not isinstance(row["interval_width"], str)

    def test_fixed_json_report_has_no_adaptive_keys(self, capsys):
        code, captured = self.run_cli(
            capsys, "sweep", "--trials", "2", "--json"
        )
        assert code == 0
        payload = json.loads(captured.out)
        assert "target_width" not in payload
        assert "trials_used" not in payload["rows"][0]
        assert "interval_width" in payload["rows"][0]

    def test_invalid_target_width_rejected(self, capsys):
        code, captured = self.run_cli(
            capsys, "sweep", "--target-width", "1.5"
        )
        assert code == 2
        assert "--target-width" in captured.err

    def test_invalid_chunk_rejected(self, capsys):
        code, captured = self.run_cli(
            capsys, "sweep", "--target-width", "0.2", "--chunk", "0"
        )
        assert code == 2
        assert "--chunk" in captured.err

    def test_help_epilog_documents_adaptive(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "--help"])
        captured = capsys.readouterr()
        assert "--target-width" in captured.out
        assert "adaptive" in captured.out
