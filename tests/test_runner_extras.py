"""Additional harness-runner coverage: retries, result fields, determinism."""

import math

import pytest

from repro.config import ProtocolConfig
from repro.harness.runner import (
    RunResult,
    good_case_metrics,
    run_hotstuff,
    run_pbft,
    run_probft,
)


class TestRequireView1:
    def test_retry_finds_view1_run(self):
        """At n=64 some seeds need a view change; retrying must find a
        view-1 run and report it."""
        cfg = ProtocolConfig(n=64, f=12)
        result = good_case_metrics("probft", cfg, require_view1=True)
        assert result.max_view == 1
        assert result.all_decided

    def test_exhausted_retries_raise(self):
        cfg = ProtocolConfig(n=64, f=12)
        with pytest.raises(RuntimeError):
            good_case_metrics(
                "probft", cfg, require_view1=True, max_retries=0
            )


class TestRunResult:
    def test_steps_nan_when_nothing_decided(self):
        result = RunResult(
            protocol="probft",
            n=4,
            f=1,
            decided=0,
            n_correct=4,
            all_decided=False,
            agreement_ok=True,
            decided_values=(),
            decision_views=(),
            max_view=0,
            sim_time=1.0,
            last_decision_time=float("nan"),
        )
        assert math.isnan(result.steps)
        assert result.protocol_messages == 0

    def test_protocol_messages_subtracts_all_sync_types(self):
        result = RunResult(
            protocol="probft",
            n=4,
            f=1,
            decided=4,
            n_correct=4,
            all_decided=True,
            agreement_ok=True,
            decided_values=(b"v",),
            decision_views=(1,),
            max_view=1,
            sim_time=3.0,
            last_decision_time=3.0,
            messages_by_type={"Propose": 3, "Wish": 7},
            total_messages=10,
        )
        assert result.protocol_messages == 3


class TestCrossProtocolDeterminism:
    @pytest.mark.parametrize("runner", [run_probft, run_pbft, run_hotstuff])
    def test_same_seed_same_result(self, runner):
        cfg = ProtocolConfig(n=10, f=2)
        a = runner(cfg, seed=13, max_time=500)
        b = runner(cfg, seed=13, max_time=500)
        assert a.total_messages == b.total_messages
        assert a.last_decision_time == b.last_decision_time
        assert a.decided_values == b.decided_values

    def test_distinct_protocols_distinct_footprints(self):
        # n must be large enough that ProBFT's sample does not saturate to n
        # (at n=10, s = min(n, ceil(o*q)) = 10 and ProBFT degenerates to
        # PBFT's all-to-all pattern — itself a nice sanity fact).
        cfg = ProtocolConfig(n=20, f=3)
        totals = {
            runner(cfg, seed=1, max_time=500).protocol_messages
            for runner in (run_probft, run_pbft, run_hotstuff)
        }
        assert len(totals) == 3
