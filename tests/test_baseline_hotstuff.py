"""Tests for the single-shot HotStuff baseline."""

import pytest

from repro.adversary.behaviors import silent_factory
from repro.baselines.hotstuff.protocol import HotStuffDeployment
from repro.config import ProtocolConfig
from repro.net.latency import ConstantLatency
from repro.sync.timeouts import FixedTimeout


class TestHotStuffHappyPath:
    @pytest.mark.parametrize("n,f", [(4, 1), (10, 3), (31, 10)])
    def test_all_decide_same_value(self, n, f):
        dep = HotStuffDeployment(ProtocolConfig(n=n, f=f))
        dep.run(max_time=500)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        assert dep.decided_values() == {b"value-0"}

    def test_eight_steps(self):
        """Basic HotStuff pays extra latency for linearity (Figure 1a)."""
        dep = HotStuffDeployment(
            ProtocolConfig(n=10, f=3), latency=ConstantLatency(1.0)
        )
        dep.run(max_time=500)
        assert max(d.time for d in dep.decisions.values()) == pytest.approx(8.0)

    def test_linear_message_count(self):
        n = 20
        dep = HotStuffDeployment(ProtocolConfig(n=n, f=3))
        dep.run(max_time=500)
        stats = dep.network.stats
        assert stats.sent("HsNewView") == n - 1
        assert stats.sent("HsProposal") == 4 * (n - 1)
        assert stats.sent("HsVote") == 3 * (n - 1)
        assert stats.sent_total == 8 * (n - 1)

    def test_scales_linearly(self):
        t40 = HotStuffDeployment(ProtocolConfig(n=40, f=13)).run(max_time=500)
        t80 = HotStuffDeployment(ProtocolConfig(n=80, f=26)).run(max_time=500)
        ratio = t80.network.stats.sent_total / t40.network.stats.sent_total
        assert 1.8 < ratio < 2.2


class TestHotStuffViewChange:
    def test_silent_leader_recovers(self):
        dep = HotStuffDeployment(
            ProtocolConfig(n=10, f=2),
            timeout_policy=FixedTimeout(30.0),
            byzantine={0: silent_factory()},
        )
        dep.run(max_time=2000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        assert all(d.view >= 2 for d in dep.decisions.values())

    def test_agreement_across_seeds(self):
        for seed in range(5):
            dep = HotStuffDeployment(ProtocolConfig(n=7, f=2), seed=seed)
            dep.run(max_time=1000)
            assert dep.agreement_ok


class TestQuorumCertificates:
    def test_qc_verification_rejects_duplicates(self):
        from repro.baselines.hotstuff.replica import HotStuffReplica
        from repro.messages.hotstuff import HsQuorumCert, HsVotePayload

        cfg = ProtocolConfig(n=4, f=1)
        dep = HotStuffDeployment(cfg)
        replica: HotStuffReplica = dep.replicas[0]
        vote = dep.crypto.signatures.sign(
            1, HsVotePayload(view=1, value=b"v", phase="prepare")
        )
        qc = HsQuorumCert(view=1, value=b"v", phase="prepare", votes=(vote,) * 3)
        assert not replica._verify_qc(qc)

    def test_qc_verification_accepts_quorum(self):
        from repro.baselines.hotstuff.replica import HotStuffReplica
        from repro.messages.hotstuff import HsQuorumCert, HsVotePayload

        cfg = ProtocolConfig(n=4, f=1)
        dep = HotStuffDeployment(cfg)
        replica: HotStuffReplica = dep.replicas[0]
        votes = tuple(
            dep.crypto.signatures.sign(
                s, HsVotePayload(view=1, value=b"v", phase="prepare")
            )
            for s in range(3)
        )
        qc = HsQuorumCert(view=1, value=b"v", phase="prepare", votes=votes)
        assert replica._verify_qc(qc)

    def test_qc_with_mismatched_votes_rejected(self):
        from repro.baselines.hotstuff.replica import HotStuffReplica
        from repro.messages.hotstuff import HsQuorumCert, HsVotePayload

        cfg = ProtocolConfig(n=4, f=1)
        dep = HotStuffDeployment(cfg)
        replica: HotStuffReplica = dep.replicas[0]
        votes = tuple(
            dep.crypto.signatures.sign(
                s, HsVotePayload(view=1, value=b"v", phase="prepare")
            )
            for s in range(2)
        ) + (
            dep.crypto.signatures.sign(
                2, HsVotePayload(view=1, value=b"OTHER", phase="prepare")
            ),
        )
        qc = HsQuorumCert(view=1, value=b"v", phase="prepare", votes=votes)
        assert not replica._verify_qc(qc)


class TestPhases:
    def test_phase_ordering(self):
        from repro.messages.hotstuff import HsPhase

        assert HsPhase.PREPARE.next_phase() is HsPhase.PRE_COMMIT
        assert HsPhase.PRE_COMMIT.next_phase() is HsPhase.COMMIT
        assert HsPhase.COMMIT.next_phase() is HsPhase.DECIDE
        assert HsPhase.DECIDE.next_phase() is None
