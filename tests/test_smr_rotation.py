"""Rotating slot leadership, open-loop arrivals, and recovery accounting.

Covers the ``leader_offset`` protocol knob and its per-slot rotation
wiring, the bit-identity contract (rotate-off cells match the committed
``BENCH_smr_serving.json`` golden rows), rotation-on determinism across
engine backends, log/snapshot consistency with the equivocator parked at
every rotated seat, open-loop Poisson workloads at thousands of clients,
and the recovery satellites: recovered records excluded from latency
percentiles, majority-slot attribution under a divergent Byzantine
report, and the zero-throughput guard for recovered-only trials.
"""

import json
import pathlib

import pytest

from repro.config import ProtocolConfig
from repro.core.leader import leader_of, leader_of_view
from repro.errors import ConfigError
from repro.harness.parallel import ExperimentEngine
from repro.smr.app import CounterApp
from repro.smr.client import SMRClient, majority_slot
from repro.smr.replica import SMRReplica, slot_leader_offset
from repro.smr.service import SMRDeployment
from repro.smr.workload import (
    OPEN_LOOP_RATES,
    ServingSpec,
    WorkloadGenerator,
    WorkloadSpec,
    build_serving_deployment,
    run_serving_trial,
    run_serving_trial_spec,
    serving_cells,
    serving_throughput,
    serving_trials,
)
from repro.smr.workload import _equivocating_slot_factory

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_smr_serving.json"

# Mirrors tests/test_smr_serving.py: small but exercises batching,
# pipelining, and the closed loop.
SMALL = dict(num_clients=6, requests_per_client=3, max_time=5_000.0)


class TestLeaderOffset:
    def test_offset_zero_matches_historical_schedule(self):
        config = ProtocolConfig(n=9, f=2)
        for view in range(1, 20):
            assert leader_of(view, config) == leader_of_view(view, config.n)

    def test_offset_shifts_schedule(self):
        config = ProtocolConfig(n=9, f=2, leader_offset=3)
        assert leader_of(1, config) == 3
        assert leader_of(7, config) == 0  # wraps past n
        for view in range(1, 20):
            assert leader_of(view, config) == (view - 1 + 3) % 9

    @pytest.mark.parametrize("offset", [-1, 9, 100])
    def test_offset_out_of_range_rejected(self, offset):
        with pytest.raises(ConfigError):
            ProtocolConfig(n=9, f=2, leader_offset=offset)

    def test_slot_leader_offset_rotation(self):
        n = 9
        # Rotation off: every slot keeps the historical view-1 leader 0.
        assert all(
            slot_leader_offset(slot, n, rotate_leaders=False) == 0
            for slot in range(1, 2 * n)
        )
        # Rotation on: view-1 leadership of slot s falls on (s + 1) mod n,
        # so n consecutive slots cover every seat exactly once.
        leaders = {
            (slot_leader_offset(slot, n, rotate_leaders=True)) % n
            for slot in range(1, n + 1)
        }
        assert leaders == set(range(n))

    def test_smr_replica_rejects_preoffset_config(self):
        """Slot configs carry the rotation; a caller-supplied offset would
        silently compose with it."""
        config = ProtocolConfig(n=9, f=2, leader_offset=1)
        with pytest.raises(ValueError, match="leader_offset"):
            SMRReplica(
                replica_id=0,
                config=config,
                crypto=None,
                transport=None,
                app=CounterApp(),
                num_slots=1,
            )


class TestGoldenArtifactIdentity:
    """Rotate-off serving is bit-identical to the committed golden rows."""

    @pytest.fixture(scope="class")
    def artifact(self):
        return json.loads(ARTIFACT.read_text())

    def test_matrix_rows_reproduce(self, artifact):
        golden = [
            row
            for row in artifact["rows"]
            if row["arrival"] == "closed" and not row["rotate_leaders"]
        ]
        assert golden, "artifact lost its fixed-leader closed-loop rows"
        for row in golden:
            spec = ServingSpec(
                adversary=row["adversary"],
                load=row["load"],
                seed=artifact["seed"],
            )
            rerun = run_serving_trial(spec).row()
            assert rerun == row, (row["adversary"], row["load"])

    def test_rotation_ablation_claim_holds(self, artifact):
        """The committed ablation records rotated >= 3x fixed throughput."""
        ablation = artifact["rotation_ablation"]
        assert ablation["speedup"] >= 3.0
        assert (
            ablation["rotated_throughput"]
            >= 3.0 * ablation["fixed_throughput"]
        )


class TestRotationDeterminism:
    def test_rotation_off_is_default_identity(self):
        base = run_serving_trial(ServingSpec(**SMALL))
        explicit = run_serving_trial(
            ServingSpec(rotate_leaders=False, **SMALL)
        )
        assert base.latencies == explicit.latencies
        assert base.row() == explicit.row()

    def test_rotation_on_serial_matches_pool(self):
        trials = serving_trials(
            [
                ServingSpec(
                    adversary="equivocating-leader",
                    rotate_leaders=True,
                    **SMALL,
                ),
                ServingSpec(rotate_leaders=True, seed=1, **SMALL),
            ]
        )
        serial = ExperimentEngine(workers=0).map(run_serving_trial_spec, trials)
        pool = ExperimentEngine(workers=2)
        try:
            pooled = pool.map(run_serving_trial_spec, trials)
        finally:
            pool.close()
        for a, b in zip(serial, pooled):
            assert a.latencies == b.latencies
            assert a.row() == b.row()

    def test_rotation_lifts_equivocation_cell(self):
        """Rotation confines the equivocator to ~1/n of slots: the attacked
        cell's throughput strictly improves and its tail shrinks."""
        fixed = run_serving_trial(
            ServingSpec(adversary="equivocating-leader", **SMALL)
        )
        rotated = run_serving_trial(
            ServingSpec(
                adversary="equivocating-leader", rotate_leaders=True, **SMALL
            )
        )
        assert rotated.completed == fixed.completed
        assert rotated.logs_consistent
        assert rotated.throughput > fixed.throughput
        assert rotated.p99_latency < fixed.p99_latency

    def test_serving_cells_rotation_and_arrival_axes(self):
        cells = serving_cells(
            adversaries=["none"],
            loads=["high"],
            rotations=[False, True],
            arrivals=["closed", "open"],
        )
        assert len(cells) == 4
        assert {(c.rotate_leaders, c.arrival) for c in cells} == {
            (False, "closed"),
            (False, "open"),
            (True, "closed"),
            (True, "open"),
        }


class TestEquivocatorAtEveryRotatedSeat:
    """With rotation on, the Byzantine seat leads ~1/n of slots — wherever
    it sits.  Logs and snapshots must stay consistent for every seat."""

    @pytest.mark.parametrize("seat", range(9))
    def test_log_consistency(self, seat):
        cfg = ProtocolConfig(n=9, f=2)
        dep = SMRDeployment(
            cfg,
            CounterApp,
            num_slots=4,
            seed=13,
            byzantine_factories={seat: _equivocating_slot_factory},
            batch_size=2,
            rotate_leaders=True,
        )
        for i in range(8):
            dep.submit_to_all(b"ADD:%d" % (i % 4 + 1))
        dep.run(max_time=50_000)
        assert dep.all_applied(), seat
        assert dep.logs_consistent(), seat
        assert dep.snapshots_consistent(), seat


class TestOpenLoopArrivals:
    def test_open_requires_offered_rate(self):
        with pytest.raises(ValueError, match="offered_rate"):
            WorkloadSpec(arrival="open")

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ValueError, match="arrival"):
            WorkloadSpec(arrival="poisson", offered_rate=1.0)
        with pytest.raises(ValueError, match="arrival"):
            ServingSpec(arrival="poisson")

    def test_spec_defaults_rate_from_load(self):
        spec = ServingSpec(arrival="open", load="high")
        assert spec.workload().offered_rate == OPEN_LOOP_RATES["high"]
        pinned = ServingSpec(arrival="open", offered_rate=2.5)
        assert pinned.workload().offered_rate == 2.5

    def test_open_loop_completes_and_is_deterministic(self):
        spec = ServingSpec(arrival="open", **SMALL)
        first = run_serving_trial(spec)
        second = run_serving_trial(spec)
        assert first.completed == spec.workload().total_requests
        assert first.timed_out == 0
        assert first.logs_consistent
        assert first.arrival == "open"
        assert first.latencies == second.latencies
        assert first.row() == second.row()

    def test_open_loop_differs_from_closed(self):
        closed = run_serving_trial(ServingSpec(**SMALL))
        opened = run_serving_trial(ServingSpec(arrival="open", **SMALL))
        assert closed.latencies != opened.latencies

    def test_thousands_of_clients_complete(self):
        """The apply-watcher index keeps per-apply dispatch O(1), so an
        open-loop population in the thousands finishes in seconds."""
        spec = ServingSpec(
            arrival="open",
            num_clients=2000,
            requests_per_client=1,
            offered_rate=200.0,
            max_time=200_000.0,
        )
        result = run_serving_trial(spec)
        assert result.completed == 2000
        assert result.timed_out == 0
        assert result.logs_consistent


class TestRecoveredAccounting:
    """Satellites: recovered records must not pollute latency percentiles
    (S1), slot attribution survives a divergent Byzantine report (S2), and
    a recovered-only trial reports zero throughput with the recovered
    count explaining the gap (S3)."""

    def _run_once(self, spec):
        deployment = build_serving_deployment(spec)
        generator = WorkloadGenerator(
            deployment, spec.workload(), seed=spec.seed
        )
        generator.run(max_time=spec.max_time)
        return deployment, generator

    def test_recovered_excluded_from_latencies(self):
        spec = ServingSpec(**SMALL)
        deployment, first = self._run_once(spec)
        assert first.completed == spec.workload().total_requests
        # A second generator over the same deployment re-issues the same
        # (client_id, seq) envelopes: every request completes from replayed
        # history with a meaningless zero latency.
        deployment._next_client_id = 0
        replay = WorkloadGenerator(deployment, spec.workload(), seed=spec.seed)
        replay.run(max_time=spec.max_time)
        assert replay.completed == spec.workload().total_requests
        assert replay.recovered == replay.completed
        assert replay.latencies() == []
        acc = replay.latency_accumulator()
        assert acc.recovered == replay.recovered
        assert acc.mean is None and acc.p99 is None
        summary = acc.summary()
        assert summary["recovered"] == replay.recovered
        assert summary["incomplete"] == 0

    def test_recovered_only_trial_reports_zero_throughput(self):
        spec = ServingSpec(**SMALL)
        deployment, first = self._run_once(spec)
        live_tput = serving_throughput(first.records)
        assert live_tput > 0
        deployment._next_client_id = 0
        replay = WorkloadGenerator(deployment, spec.workload(), seed=spec.seed)
        replay.run(max_time=spec.max_time)
        # Every completion was recovered: no live serving happened, so the
        # throughput guard reports 0.0 and `recovered` explains the gap.
        assert serving_throughput(replay.records) == 0.0

    def test_result_row_surfaces_recovered_count(self):
        row = run_serving_trial(ServingSpec(**SMALL)).row()
        assert row["recovered"] == 0
        assert "rotate_leaders" in row and "arrival" in row

    def test_majority_slot_unit(self):
        assert majority_slot({0: 5}) == 5
        assert majority_slot({0: 5, 1: 5, 2: 7}) == 5
        # Ties break to the smallest slot, deterministically.
        assert majority_slot({0: 9, 1: 4}) == 4

    def test_client_slot_survives_divergent_byzantine_report(self):
        """One replica reporting a bogus slot for an ordered request must
        not become the record's slot attribution."""
        cfg = ProtocolConfig(n=9, f=2)
        dep = SMRDeployment(cfg, CounterApp, num_slots=2, seed=7, batch_size=1)
        client = SMRClient(dep)
        record = client.submit(b"ADD:1")
        assert record is not None
        # A Byzantine replica claims an absurd slot *first*; the honest
        # majority then applies the request in its real slot.
        bogus = max(dep.replicas) + 1  # id outside the honest set
        dep._record_apply(bogus, 999, record.command)
        dep.run(max_time=1_000)
        assert record.completed
        assert record.slot != 999
        history = client._history[record.request_id]
        assert record.slot == majority_slot(history)

    def test_late_client_majority_slot_from_history(self):
        cfg = ProtocolConfig(n=9, f=2)
        dep = SMRDeployment(cfg, CounterApp, num_slots=1, seed=3, batch_size=1)
        issuer = SMRClient(dep)
        record = issuer.submit(b"ADD:2")
        dep.run(max_time=1_000)
        assert record.completed
        # Poison one replayed history entry, then re-attach: the majority
        # still pins the real slot.
        dep.applied[max(dep.replicas) + 1] = [(777, record.command)]
        late = SMRClient(dep, client_id=issuer.client_id)
        replayed = late.submit(b"ADD:2", seq=record.seq)
        assert replayed.recovered
        assert replayed.slot == record.slot != 777
