"""Tests for the experiment harness (runner, metrics, scenarios)."""

import math

import pytest

from repro.config import ProtocolConfig
from repro.harness.metrics import (
    LatencyAccumulator,
    ProportionEstimate,
    mean,
    percentile,
    stddev,
    wilson_interval,
)
from repro.harness.runner import (
    good_case_metrics,
    run_hotstuff,
    run_pbft,
    run_probft,
)


class TestMetrics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert math.isnan(mean([]))

    def test_stddev(self):
        assert stddev([2.0, 4.0]) == pytest.approx(math.sqrt(2.0))
        assert stddev([5.0]) == 0.0

    def test_wilson_interval_contains_point(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high
        assert 0.0 <= low and high <= 1.0

    def test_wilson_interval_extremes(self):
        """All-failure/all-success endpoints are pinned *exactly* — not
        clamped within an epsilon — so stopping rules can trust them."""
        low, high = wilson_interval(0, 50)
        assert low == 0.0 and high > 0.0
        low, high = wilson_interval(50, 50)
        assert high == 1.0 and low < 1.0
        for trials in (1, 3, 73, 10_000):
            assert wilson_interval(trials, trials)[1] == 1.0
            assert wilson_interval(0, trials)[0] == 0.0

    def test_wilson_zero_trials_is_unit_interval(self):
        """No data means no information: the degenerate cell yields the
        full (0, 1) interval instead of a ZeroDivisionError/ValueError."""
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_wilson_narrows_with_trials(self):
        w1 = wilson_interval(8, 10)
        w2 = wilson_interval(800, 1000)
        assert (w2[1] - w2[0]) < (w1[1] - w1[0])

    def test_wilson_invalid(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)  # successes out of range for zero trials
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(0, -1)

    def test_proportion_estimate(self):
        est = ProportionEstimate(90, 100)
        assert est.point == pytest.approx(0.9)
        assert est.compatible_with(0.9)
        assert not est.compatible_with(0.2)
        assert "0.9" in str(est)

    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile([7.0], 99) == 7.0

    def test_percentile_order_insensitive(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_percentile_empty_is_none(self):
        """Regression companion to the mean-latency NaN fix: no data is an
        explicit None, never NaN."""
        assert percentile([], 50) is None

    def test_percentile_invalid_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_latency_accumulator(self):
        acc = LatencyAccumulator()
        acc.extend([3.0, 1.0, 2.0])
        acc.add(None)  # an incomplete request
        assert acc.completed == 3
        assert acc.total == 4
        assert acc.mean == pytest.approx(2.0)
        assert acc.p50 == 2.0
        summary = acc.summary()
        assert summary["completed"] == 3
        assert summary["incomplete"] == 1
        assert summary["p99_latency"] == acc.p99

    def test_latency_accumulator_empty(self):
        acc = LatencyAccumulator()
        assert acc.mean is None
        assert acc.p50 is None and acc.p99 is None and acc.p999 is None
        assert acc.summary()["mean_latency"] is None

    def test_latency_accumulator_merge(self):
        left, right = LatencyAccumulator(), LatencyAccumulator()
        left.extend([1.0, 2.0])
        right.extend([3.0])
        right.add(None)
        left.merge(right)
        assert left.completed == 3
        assert left.incomplete == 1
        assert left.mean == pytest.approx(2.0)


class TestRunners:
    def test_run_probft_result_fields(self):
        result = run_probft(ProtocolConfig(n=10, f=2), max_time=500)
        assert result.protocol == "probft"
        assert result.all_decided
        assert result.agreement_ok
        assert result.decided == result.n_correct == 10
        assert result.max_view == 1
        assert result.decision_views == (1,)
        assert result.total_messages > 0

    def test_protocol_messages_excludes_wishes(self):
        from repro.sync.timeouts import FixedTimeout
        from repro.adversary.behaviors import silent_factory

        result = run_probft(
            ProtocolConfig(n=10, f=2),
            timeout_policy=FixedTimeout(20.0),
            byzantine={0: silent_factory()},
            max_time=2000,
        )
        assert result.messages_by_type.get("Wish", 0) > 0
        assert (
            result.protocol_messages
            == result.total_messages - result.messages_by_type["Wish"]
        )

    def test_all_three_protocols_agree_on_interface(self):
        cfg = ProtocolConfig(n=10, f=2)
        for runner in (run_probft, run_pbft, run_hotstuff):
            result = runner(cfg, max_time=500)
            assert result.all_decided and result.agreement_ok

    def test_good_case_steps(self):
        cfg = ProtocolConfig(n=10, f=2)
        assert good_case_metrics("probft", cfg).steps == pytest.approx(3.0)
        assert good_case_metrics("pbft", cfg).steps == pytest.approx(3.0)
        assert good_case_metrics("hotstuff", cfg).steps == pytest.approx(8.0)

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            good_case_metrics("paxos", ProtocolConfig(n=10, f=2))
