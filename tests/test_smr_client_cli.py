"""Tests for the SMR client and the command-line interface."""

import math

import pytest

from repro.cli import build_parser, main
from repro.config import ProtocolConfig
from repro.smr.app import CounterApp
from repro.smr.client import SMRClient
from repro.smr.service import SMRDeployment


class TestSMRClient:
    def make(self, slots=3):
        dep = SMRDeployment(
            ProtocolConfig(n=7, f=2), CounterApp, num_slots=slots, seed=11
        )
        return dep, SMRClient(dep)

    def test_requests_complete_with_latency(self):
        dep, client = self.make()
        client.submit(b"INC")
        client.submit(b"ADD:4")
        dep.run(max_time=20_000)
        assert client.all_completed()
        for record in client.requests:
            assert record.latency is not None and record.latency > 0
            assert record.slot is not None
            assert len(record.acked_by) >= dep.config.f + 1

    def test_mean_latency(self):
        dep, client = self.make()
        client.submit(b"INC")
        dep.run(max_time=20_000)
        assert not math.isnan(client.mean_latency())
        assert client.mean_latency() >= 3.0  # at least one consensus round

    def test_duplicate_payloads_are_distinct_requests(self):
        """Regression: payload-keyed tracking made equal payloads collide
        with a ValueError; (client_id, seq) identity keeps them distinct."""
        dep, client = self.make()
        first = client.submit(b"INC")
        second = client.submit(b"INC")  # formerly raised ValueError
        assert first.request_id != second.request_id
        assert first.command != second.command
        dep.run(max_time=20_000)
        assert client.all_completed()
        assert first.slot != second.slot
        # Both increments applied: the counter reads 2 everywhere.
        assert all(
            snapshot == 2 for snapshot in dep.snapshots().values()
        )

    def test_two_clients_same_payload_both_complete(self):
        dep = SMRDeployment(
            ProtocolConfig(n=7, f=2), CounterApp, num_slots=3, seed=11
        )
        alice = SMRClient(dep)
        bob = SMRClient(dep)
        assert alice.client_id != bob.client_id
        a = alice.submit(b"INC")
        b = bob.submit(b"INC")
        dep.run(max_time=20_000)
        assert a.completed and b.completed
        assert all(snapshot == 2 for snapshot in dep.snapshots().values())

    def test_duplicate_request_id_still_rejected(self):
        _dep, client = self.make()
        client.submit(b"INC", seq=5)
        with pytest.raises(ValueError):
            client.submit(b"DEC", seq=5)

    def test_incomplete_without_run(self):
        """Regression: mean_latency returned NaN (silently poisoning report
        columns); it is now an explicit None with a timed_out count."""
        _dep, client = self.make()
        client.submit(b"INC")
        assert not client.all_completed()
        assert client.mean_latency() is None
        assert client.p50_latency() is None
        assert client.p99_latency() is None
        assert client.timed_out == 1
        summary = client.latency_summary()
        assert summary["completed"] == 0
        assert summary["incomplete"] == 1
        assert summary["mean_latency"] is None

    def test_latency_percentiles_after_run(self):
        dep, client = self.make()
        for _ in range(3):
            client.submit(b"INC")
        dep.run(max_time=20_000)
        assert client.all_completed()
        assert client.timed_out == 0
        p50, p99 = client.p50_latency(), client.p99_latency()
        assert p50 is not None and p99 is not None
        assert p50 <= p99
        assert client.mean_latency() >= 3.0

    def test_late_client_recovers_prior_requests(self):
        """Regression: a client constructed after the deployment ran missed
        already-recorded applies and hung forever; the replayed history
        completes the resubmission immediately."""
        dep = SMRDeployment(
            ProtocolConfig(n=7, f=2), CounterApp, num_slots=2, seed=11
        )
        early = SMRClient(dep)
        record = early.submit(b"INC")
        dep.run(max_time=20_000)
        assert record.completed
        # A re-attached client (same identity) resubmitting the same request
        # completes from replayed history instead of hanging.
        late = SMRClient(dep, client_id=early.client_id)
        replayed = late.submit(b"INC", seq=record.seq)
        assert replayed is not None
        assert replayed.completed
        assert replayed.recovered
        assert replayed.slot == record.slot

    def test_late_client_sees_live_applies(self):
        dep = SMRDeployment(
            ProtocolConfig(n=7, f=2), CounterApp, num_slots=2, seed=11
        )
        dep.start()
        dep.sim.run(until=1.0)  # deployment already running
        client = SMRClient(dep)
        record = client.submit(b"INC")
        dep.run(max_time=20_000)
        assert record.completed and not record.recovered

    def test_apply_recorder_still_chained(self):
        dep, client = self.make(slots=2)
        client.submit(b"INC")
        dep.run(max_time=20_000)
        # The deployment's own applied record still fills in.
        assert dep.applied


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "probft", "--n", "10"])
        assert args.protocol == "probft" and args.n == 10

    def test_run_probft(self, capsys):
        code = main(["run", "probft", "--n", "10", "--f", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement" in out and "True" in out

    def test_run_pbft_and_hotstuff(self, capsys):
        assert main(["run", "pbft", "--n", "7", "--f", "2"]) == 0
        assert main(["run", "hotstuff", "--n", "7", "--f", "2"]) == 0

    def test_attack(self, capsys):
        code = main(["attack", "--n", "16", "--f", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "equivocation attack" in out

    def test_figures(self, capsys):
        code = main(["figures"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 1b" in out and "Figure 5" in out

    def test_smr(self, capsys):
        code = main(["smr", "--n", "7", "--f", "2", "--slots", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "logs consistent" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweepProfile:
    def test_profile_writes_pstats_and_top25_table(self, tmp_path, capsys):
        """``sweep --profile PATH`` leaves a loadable .pstats file plus the
        top-25 cumulative table next to it, without touching stdout."""
        import pstats

        target = tmp_path / "prof"
        code = main(
            [
                "sweep",
                "smoke",
                "--trials",
                "1",
                "--max-time",
                "600",
                "--json",
                "--profile",
                str(target),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        # stdout stays valid JSON; the profile table goes to stderr.
        import json

        json.loads(captured.out)
        assert "cumulative" in captured.err
        stats_path = tmp_path / "prof.pstats"
        table_path = tmp_path / "prof.top25.txt"
        assert stats_path.exists() and table_path.exists()
        stats = pstats.Stats(str(stats_path))
        assert stats.total_calls > 0
        table = table_path.read_text()
        assert "Ordered by: cumulative time" in table
        assert "run_matrix" in table

    def test_profile_flag_absent_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert (
            main(["sweep", "smoke", "--trials", "1", "--max-time", "600", "--json"])
            == 0
        )
        assert list(tmp_path.glob("*.pstats")) == []
