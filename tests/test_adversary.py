"""Tests for the Byzantine adversary framework."""

import pytest

from repro.adversary.behaviors import CrashReplica, crash_factory, silent_factory
from repro.adversary.equivocation import (
    general_split,
    optimal_split,
    suboptimal_split,
)
from repro.adversary.plans import equivocation_attack_deployment
from repro.config import ProtocolConfig
from repro.core.protocol import ProBFTDeployment
from repro.harness import scenarios
from repro.net.latency import ConstantLatency
from repro.sync.timeouts import FixedTimeout


class TestSplitStrategies:
    def test_optimal_split_shape(self):
        byz = [0, 8, 9]
        plan = optimal_split(10, byz, b"a", b"b")
        (v1, g1), (v2, g2) = plan.assignments
        assert v1 == b"a" and v2 == b"b"
        # Byzantine replicas are in both groups.
        for b in byz:
            assert b in g1 and b in g2
        # Correct replicas split disjointly and evenly-ish.
        correct1 = g1 - set(byz)
        correct2 = g2 - set(byz)
        assert not correct1 & correct2
        assert len(correct1 | correct2) == 7
        assert abs(len(correct1) - len(correct2)) <= 1

    def test_suboptimal_split_covers_everyone(self):
        plan = suboptimal_split(10, b"a", b"b")
        (v1, g1), (v2, g2) = plan.assignments
        assert g1 | g2 == set(range(10))
        assert not g1 & g2

    def test_general_split_properties(self):
        plan = general_split(20, [b"a", b"b", b"c"], seed=1)
        assert len(plan.assignments) == 3
        all_members = set()
        for _v, members in plan.assignments:
            all_members |= members
        assert len(all_members) <= 20  # some replicas may be omitted

    def test_general_split_needs_two_values(self):
        with pytest.raises(ValueError):
            general_split(10, [b"only"])

    def test_group_of(self):
        plan = optimal_split(10, [0], b"a", b"b")
        assert plan.group_of(0) in (b"a", b"b")
        assert plan.group_of(1) is not None


class TestSilentAndCrash:
    def test_silent_replica_sends_nothing(self):
        dep = ProBFTDeployment(
            ProtocolConfig(n=10, f=2),
            byzantine={5: silent_factory()},
            timeout_policy=FixedTimeout(30.0),
        )
        dep.run(max_time=1000)
        assert dep.network.stats.sent_by_replica[5] == 0
        assert dep.all_correct_decided()

    def test_crash_replica_stops_at_crash_time(self):
        dep = ProBFTDeployment(
            ProtocolConfig(n=10, f=2),
            latency=ConstantLatency(1.0),
            byzantine={9: crash_factory(crash_time=1.5)},
            timeout_policy=FixedTimeout(30.0),
        )
        dep.run(max_time=1000, stop_when_decided=False)
        replica: CrashReplica = dep.replicas[9]
        assert replica.crashed

    def test_f_crashes_tolerated(self):
        dep = scenarios.crash_case(ProtocolConfig(n=13, f=4))
        dep.run(max_time=2000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok


class TestEquivocationAttack:
    def test_attack_never_violates_agreement(self):
        """The headline safety property, hammered across seeds."""
        for seed in range(10):
            dep, _plan = equivocation_attack_deployment(
                ProtocolConfig(n=20, f=4),
                seed=seed,
                timeout_policy=FixedTimeout(20.0),
            )
            dep.run(max_time=5000)
            assert dep.agreement_ok, f"violation at seed {seed}"
            assert dep.all_correct_decided()

    def test_attack_sends_two_proposals(self):
        dep, plan = equivocation_attack_deployment(
            ProtocolConfig(n=12, f=2), timeout_policy=FixedTimeout(20.0)
        )
        dep.run(max_time=30)
        assert len(plan.values) == 2
        # The equivocating leader sent Propose messages.
        assert dep.network.stats.sent_by_replica[0] > 0

    def test_some_replicas_block_the_view(self):
        """Cross-group votes expose the equivocation to someone."""
        blocked_any = False
        for seed in range(5):
            dep, _ = equivocation_attack_deployment(
                ProtocolConfig(n=20, f=4),
                seed=seed,
                timeout_policy=FixedTimeout(1000.0),
            )
            dep.run(max_time=20, stop_when_decided=False)
            blocked = [
                r
                for r, rep in dep.correct_replicas().items()
                if rep.view_blocked
            ]
            blocked_any = blocked_any or bool(blocked)
        assert blocked_any

    def test_decisions_follow_split_values(self):
        dep, plan = equivocation_attack_deployment(
            ProtocolConfig(n=20, f=4), timeout_policy=FixedTimeout(20.0)
        )
        dep.run(max_time=5000)
        decided = dep.decided_values()
        # Whatever was decided must be one of the attack values (a correct
        # view-2 leader re-proposes a prepared attack value) or a fresh
        # correct-leader value if nothing was prepared.
        assert len(decided) <= 1

    def test_needs_at_least_one_byzantine(self):
        with pytest.raises(ValueError):
            equivocation_attack_deployment(
                ProtocolConfig(n=10, f=2), n_byzantine=0
            )


class TestFlooding:
    def test_flooding_does_not_corrupt_consensus(self):
        dep = scenarios.flooding_case(ProtocolConfig(n=10, f=2))
        dep.run(max_time=1000)
        assert dep.all_correct_decided()
        assert dep.agreement_ok
        assert dep.decided_values() == {b"value-0"}

    def test_flood_messages_are_rejected_not_counted(self):
        """Forged votes never contribute to quorums: decisions still need
        the normal number of steps, and no replica prepares the fake value."""
        dep = scenarios.flooding_case(ProtocolConfig(n=10, f=2))
        dep.run(max_time=1000)
        for r, rep in dep.correct_replicas().items():
            assert rep.prepared_value != b"flood-value"

    def test_flooder_actually_floods(self):
        dep = scenarios.flooding_case(ProtocolConfig(n=10, f=2))
        dep.run(max_time=1000)
        flooder = max(dep.byzantine_ids)
        assert dep.network.stats.sent_by_replica[flooder] > 50


class TestEquivocationApiGuards:
    def test_later_view_attack_rejected(self):
        from repro.adversary.equivocation import EquivocatingLeader

        plan = optimal_split(10, [0], b"a", b"b")
        with pytest.raises(ValueError):
            EquivocatingLeader(
                0, ProtocolConfig(n=10, f=2), None, None, plan, attack_view=2
            )
