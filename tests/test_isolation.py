"""Cross-deployment and cross-instance isolation tests."""

import pytest

from repro.config import ProtocolConfig
from repro.core.protocol import ProBFTDeployment
from repro.crypto.context import CryptoContext
from repro.crypto.vrf import phase_seed


class TestDeploymentIsolation:
    def test_different_seeds_different_keys(self):
        a = ProBFTDeployment(ProtocolConfig(n=5, f=1), seed=1)
        b = ProBFTDeployment(ProtocolConfig(n=5, f=1), seed=2)
        assert (
            a.crypto.registry.public_key(0) != b.crypto.registry.public_key(0)
        )

    def test_cross_deployment_messages_rejected(self):
        """Messages signed in one deployment never verify in another."""
        a = ProBFTDeployment(ProtocolConfig(n=5, f=1), seed=1)
        b = ProBFTDeployment(ProtocolConfig(n=5, f=1), seed=2)
        signed = a.crypto.signatures.sign(0, "hello")
        assert a.crypto.signatures.verify(signed)
        assert not b.crypto.signatures.verify(signed)

    def test_cross_deployment_vrf_rejected(self):
        a = CryptoContext.create(8, master_seed=b"one")
        b = CryptoContext.create(8, master_seed=b"two")
        out = a.vrf.prove(3, "seed", 4)
        assert a.vrf.verify(3, "seed", 4, out)
        assert not b.vrf.verify(3, "seed", 4, out)

    def test_two_deployments_run_independently(self):
        a = ProBFTDeployment(ProtocolConfig(n=8, f=1), seed=1)
        b = ProBFTDeployment(ProtocolConfig(n=8, f=1), seed=2)
        a.run(max_time=500)
        b.run(max_time=500)
        assert a.all_correct_decided() and b.all_correct_decided()
        assert a.sim is not b.sim
        assert a.network.stats is not b.network.stats


class TestDomainIsolation:
    def test_statements_do_not_cross_domains(self):
        """A replica in domain A ignores proposals signed for domain B."""
        from repro.core.predicates import safe_proposal

        from .helpers import make_crypto, make_propose, saturated_config

        cfg_a = saturated_config(seed_domain="instance-A")
        cfg_b = saturated_config(seed_domain="instance-B")
        crypto = make_crypto(cfg_a)
        propose_b = make_propose(crypto, cfg_b, view=1, value=b"v")
        assert safe_proposal(propose_b, cfg_b, crypto)
        assert not safe_proposal(propose_b, cfg_a, crypto)

    def test_vrf_samples_differ_across_domains(self):
        crypto = CryptoContext.create(30)
        a = crypto.vrf.prove(1, phase_seed(1, "prepare", "slot-1"), 10)
        b = crypto.vrf.prove(1, phase_seed(1, "prepare", "slot-2"), 10)
        assert a.proof != b.proof

    def test_domain_scoped_runs_both_complete(self):
        """Two domain-scoped deployments (as the SMR layer creates) both
        decide; their VRF samples and signatures are unrelated."""
        for domain in ("slot-1", "slot-2"):
            cfg = ProtocolConfig(n=10, f=2, seed_domain=domain)
            dep = ProBFTDeployment(cfg, seed=3)
            dep.run(max_time=500)
            assert dep.all_correct_decided()
            assert dep.agreement_ok
