"""Property-based quorum-bound checks for equivocation split strategies.

The reason no equivocation attack can break the deterministic baselines is
pure arithmetic: for any split of the correct replicas into two groups, the
two values' supports (group plus every colluding Byzantine replica) sum to
``n + f``, which is strictly below twice either deterministic quorum —
PBFT's ``⌈(n+f+1)/2⌉`` and HotStuff's ``n − f`` — so at most one value can
ever gather a quorum.  This suite hammers that invariant over seeded-random
``(n, f)`` instances, for :func:`repro.adversary.equivocation.optimal_split`
and for the per-protocol attack plans the baseline adversary modules build.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary.equivocation import (
    SplitStrategy,
    general_split,
    optimal_split,
    suboptimal_split,
)
from repro.baselines.hotstuff.adversary import hotstuff_equivocation_map
from repro.baselines.pbft.adversary import pbft_equivocation_map
from repro.config import ProtocolConfig, deterministic_quorum_size, max_faults

#: Seeded-random (n, f) instances: every valid f for n, across a size sweep.
_RNG = random.Random("split-quorum-bounds")
_CASES = []
for _ in range(60):
    n = _RNG.randint(4, 80)
    f = _RNG.randint(1, max_faults(n))
    _CASES.append((n, f))
# Pin the extremes the random draw may miss.
_CASES += [(4, 1), (7, 2), (100, 33), (97, 32)]


def _byz_ids(n: int, f: int):
    """The canonical attack layout: leader 0 plus the tail of the ID range."""
    return [0] + list(range(n - (f - 1), n)) if f > 1 else [0]


def _supports(plan: SplitStrategy, byz_ids):
    return [len(plan.supporters(v, byz_ids)) for v in plan.values]


class TestOptimalSplitQuorumBounds:
    @pytest.mark.parametrize("n,f", _CASES)
    def test_byzantine_support_never_yields_two_quorums(self, n, f):
        byz = _byz_ids(n, f)
        plan = optimal_split(n, byz, b"a", b"b")
        supports = _supports(plan, byz)
        det_quorum = deterministic_quorum_size(n, f)
        hs_quorum = n - f
        # The two supports sum to n + f: correct replicas split disjointly,
        # Byzantine replicas count for both sides.
        assert sum(supports) == n + f
        # At most one value can reach either deterministic quorum.
        assert sum(supports) < 2 * det_quorum
        assert sum(supports) < 2 * hs_quorum
        assert min(supports) < det_quorum
        assert min(supports) < hs_quorum

    @pytest.mark.parametrize("n,f", _CASES)
    def test_max_support_matches_group_arithmetic(self, n, f):
        byz = _byz_ids(n, f)
        plan = optimal_split(n, byz, b"a", b"b")
        # Larger correct half rounds up; every Byzantine replica piles on.
        expected = (n - f + 1) // 2 + f
        assert plan.max_support(byz) == expected

    @pytest.mark.parametrize("n,f", _CASES)
    def test_suboptimal_split_same_bound(self, n, f):
        byz = _byz_ids(n, f)
        plan = suboptimal_split(n, b"a", b"b")
        supports = _supports(plan, byz)
        # Groups cover all n replicas; adding the f colluders to each side
        # still cannot push both past a deterministic quorum.
        assert sum(supports) <= n + 2 * f
        assert min(supports) < deterministic_quorum_size(n, f)

    def test_supporters_unknown_value_rejected(self):
        plan = optimal_split(10, [0], b"a", b"b")
        with pytest.raises(KeyError):
            plan.supporters(b"missing", [0])

    def test_general_split_supports_are_subsets_of_n(self):
        plan = general_split(30, [b"a", b"b", b"c"], seed=5)
        for value in plan.values:
            assert plan.supporters(value, [0]) <= frozenset(range(30))


class TestPerProtocolAttackPlans:
    """The baseline attack builders inherit the same quorum safety margin."""

    @pytest.mark.parametrize("n,f", _CASES)
    def test_pbft_plan_cannot_double_quorum(self, n, f):
        config = ProtocolConfig(n=n, f=f)
        byzantine, plan = pbft_equivocation_map(config)
        assert len(byzantine) == f  # never exceeds the fault threshold
        supports = _supports(plan, list(byzantine))
        assert sum(supports) < 2 * config.det_quorum

    @pytest.mark.parametrize("n,f", _CASES)
    def test_hotstuff_plan_cannot_double_quorum(self, n, f):
        config = ProtocolConfig(n=n, f=f)
        byzantine, plan = hotstuff_equivocation_map(config)
        assert len(byzantine) == f
        supports = _supports(plan, list(byzantine))
        hs_quorum = config.n - config.f
        assert sum(supports) < 2 * hs_quorum
        # The smaller side is always at least one vote short, so the
        # escalation branch in EquivocatingHsLeader can never fire.
        assert min(supports) < hs_quorum
