"""Setup shim.

This environment has no network and no ``wheel`` package, so PEP 517
editable installs are unavailable; this shim lets ``pip install -e .`` fall
back to the legacy ``setup.py develop`` path.  Metadata mirrors
``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "ProBFT: Probabilistic Byzantine Fault Tolerance (PODC 2024) - "
        "full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)
