#!/usr/bin/env python3
"""The paper's worst case: an equivocating Byzantine leader (Figure 4c).

Replica 0 leads view 1 and sends value A to half the correct replicas and
value B to the other half; all other Byzantine replicas collude by
double-voting for both values toward their VRF samples.  The example shows
how ProBFT defends itself:

* cross-group Prepare messages expose the leader-signed conflict, so many
  correct replicas block the view (Algorithm 1 lines 23-25);
* probabilistic quorums for either value are unlikely to complete on both
  sides (Theorem 7);
* the synchronizer elects a correct leader in view 2, which re-proposes any
  value that might have been decided (safeProposal) — so agreement holds.

Run:  python examples/byzantine_leader.py
"""

from repro.adversary.plans import equivocation_attack_deployment
from repro.config import ProtocolConfig
from repro.net.latency import ConstantLatency
from repro.sync.timeouts import FixedTimeout


def main() -> None:
    config = ProtocolConfig(n=40, f=8)
    print("configuration:", config.describe())
    print(f"Byzantine: leader (replica 0) + {config.f - 1} colluding double-voters\n")

    deployment, plan = equivocation_attack_deployment(
        config,
        seed=7,
        latency=ConstantLatency(1.0),
        timeout_policy=FixedTimeout(20.0),
        trace=True,
    )
    deployment.run(max_time=5000)

    val1, val2 = plan.values
    group1 = [r for r in deployment.correct_ids if plan.group_of(r) == val1]
    group2 = [r for r in deployment.correct_ids if plan.group_of(r) == val2]
    print(f"attack: {val1!r} -> {len(group1)} correct replicas + all Byzantine")
    print(f"        {val2!r} -> {len(group2)} correct replicas + all Byzantine")

    blocked = [
        r
        for r, rep in deployment.correct_replicas().items()
        if any(event.kind == "block-view" for event in rep.trace)
    ]
    print(f"\nreplicas that caught the equivocation and blocked view 1: "
          f"{len(blocked)}/{len(deployment.correct_ids)}")

    decisions = {
        r: d for r, d in deployment.decisions.items()
        if r in deployment.correct_ids
    }
    by_view = {}
    for d in decisions.values():
        by_view.setdefault(d.view, []).append(d)
    for view in sorted(by_view):
        values = {d.value for d in by_view[view]}
        print(f"view {view}: {len(by_view[view])} decisions, values {sorted(values)}")

    print(f"\nall correct replicas decided: {deployment.all_correct_decided()}")
    print(f"AGREEMENT: {'OK' if deployment.agreement_ok else 'VIOLATED'} "
          f"(decided values: {sorted(deployment.decided_values())})")


if __name__ == "__main__":
    main()
