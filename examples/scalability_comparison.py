#!/usr/bin/env python3
"""Figure 1 live: PBFT vs ProBFT vs HotStuff on the same simulated network.

Runs all three protocols at growing system sizes and prints the measured
communication steps and message counts next to the paper's formulas — the
message-complexity / latency trade-off that motivates ProBFT.

Run:  python examples/scalability_comparison.py
"""

from repro.analysis import messages as M
from repro.config import ProtocolConfig
from repro.harness.runner import good_case_metrics
from repro.harness.tables import render_table


def main() -> None:
    rows = []
    for n in (20, 50, 100):
        cfg = ProtocolConfig(n=n, f=n // 5, o=1.7)
        for protocol, formula in (
            ("pbft", M.pbft_messages(n)),
            ("probft", round(M.probft_expected_network_messages(n, 1.7))),
            ("hotstuff", M.hotstuff_messages(n)),
        ):
            result = good_case_metrics(protocol, cfg, require_view1=True)
            rows.append(
                [
                    n,
                    protocol,
                    int(result.steps),
                    result.protocol_messages,
                    formula,
                    f"{result.protocol_messages / M.pbft_messages(n):.0%}",
                ]
            )
    print(
        render_table(
            ["n", "protocol", "steps", "messages (measured)",
             "messages (formula)", "vs PBFT"],
            rows,
            title=(
                "Good-case comparison (unit latency, view 1)\n"
                "ProBFT keeps PBFT's 3 steps at a fraction of the messages; "
                "HotStuff is linear but needs ~8 steps"
            ),
        )
    )
    print()
    ratio_rows = [
        [n] + [f"{M.probft_to_pbft_ratio(n, o):.1%}" for o in (1.6, 1.7, 1.8)]
        for n in (100, 200, 300, 400)
    ]
    print(
        render_table(
            ["n", "o=1.6", "o=1.7", "o=1.8"],
            ratio_rows,
            title="ProBFT / PBFT message ratio (analytic, Figure 1b)",
        )
    )


if __name__ == "__main__":
    main()
