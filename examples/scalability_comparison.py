#!/usr/bin/env python3
"""Figure 1 live: PBFT vs ProBFT vs HotStuff on the same simulated network.

Runs all three protocols at growing system sizes and prints the measured
communication steps and message counts next to the paper's formulas — the
message-complexity / latency trade-off that motivates ProBFT.

The (n, protocol) grid is evaluated through the experiment harness's
pluggable execution backends, so the same script scales from a laptop
debug run to saturating every core:

Run:  python examples/scalability_comparison.py
      python examples/scalability_comparison.py --backend pool --workers auto
      python examples/scalability_comparison.py --backend sharded
"""

import argparse

from repro.analysis import messages as M
from repro.config import ProtocolConfig
from repro.harness.backends import list_backends
from repro.harness.runner import good_case_metrics
from repro.harness.sweep import SweepPoint, run_sweep
from repro.harness.tables import render_table

N_VALUES = (20, 50, 100)
PROTOCOLS = ("pbft", "probft", "hotstuff")


def measure_point(point: SweepPoint) -> dict:
    """One grid point: a full good-case run of one protocol at one size.

    Module-level so process-based backends can pickle it.
    """
    n, protocol = point["n"], point["protocol"]
    cfg = ProtocolConfig(n=n, f=n // 5, o=1.7)
    result = good_case_metrics(protocol, cfg, require_view1=True)
    return {
        "steps": int(result.steps),
        "messages": result.protocol_messages,
    }


def formula_messages(n: int, protocol: str) -> float:
    return {
        "pbft": M.pbft_messages(n),
        "probft": round(M.probft_expected_network_messages(n, 1.7)),
        "hotstuff": M.hotstuff_messages(n),
    }[protocol]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        choices=list_backends(),
        default=None,
        help=(
            "execution backend for the measured grid (default: serial for "
            "--workers<=1, pool otherwise); results are identical either way"
        ),
    )
    parser.add_argument(
        "--workers",
        default="0",
        metavar="N|auto",
        help="worker count; 'auto' = the machine's core count",
    )
    args = parser.parse_args()

    sweep = run_sweep(
        {"n": N_VALUES, "protocol": PROTOCOLS},
        measure_point,
        workers=args.workers,
        backend=args.backend,
    )
    rows = [
        [
            point["n"],
            point["protocol"],
            out["steps"],
            out["messages"],
            formula_messages(point["n"], point["protocol"]),
            f"{out['messages'] / M.pbft_messages(point['n']):.0%}",
        ]
        for point, out in sweep.rows
    ]
    print(
        render_table(
            ["n", "protocol", "steps", "messages (measured)",
             "messages (formula)", "vs PBFT"],
            rows,
            title=(
                "Good-case comparison (unit latency, view 1)\n"
                "ProBFT keeps PBFT's 3 steps at a fraction of the messages; "
                "HotStuff is linear but needs ~8 steps"
            ),
        )
    )
    print()
    ratio_rows = [
        [n] + [f"{M.probft_to_pbft_ratio(n, o):.1%}" for o in (1.6, 1.7, 1.8)]
        for n in (100, 200, 300, 400)
    ]
    print(
        render_table(
            ["n", "o=1.6", "o=1.7", "o=1.8"],
            ratio_rows,
            title="ProBFT / PBFT message ratio (analytic, Figure 1b)",
        )
    )


if __name__ == "__main__":
    main()
