#!/usr/bin/env python3
"""Streamlined ProBFT: a blockchain with no view-change sub-protocol (§7).

Sixteen replicas (three of them Byzantine-silent, including the very first
epoch leader) build a chain: every epoch a round-robin leader proposes a
block, replicas vote to VRF samples, q votes notarize, and three consecutive
notarized epochs finalize.  Failed leaders just waste an epoch — nobody
sends a NewLeader or Wish message, ever.

Run:  python examples/streamlined_chain.py
"""

from repro.config import ProtocolConfig
from repro.streamlined import StreamDeployment


def main() -> None:
    config = ProtocolConfig(n=16, f=3)
    print("configuration:", config.describe())
    byzantine = [0, 14, 15]
    print(f"Byzantine (silent) replicas: {byzantine} — replica 0 leads epoch 1\n")

    deployment = StreamDeployment(
        config, seed=11, max_epochs=30, byzantine_ids=byzantine
    )
    deployment.run(min_finalized_height=6, max_time=200)

    replica = deployment.replicas[1]
    print(f"epochs run:        {replica.current_epoch}")
    print(f"finalized height:  {deployment.min_finalized_height()}")
    print(f"chains consistent: {deployment.chains_consistent()}")
    stats = deployment.network.stats
    print(f"messages:          {dict(sorted(stats.sent_by_type.items()))}")
    print(f"view-change traffic: {stats.sent('Wish') + stats.sent('NewLeader')} "
          "(streamlined: none by construction)\n")

    print("finalized chain (replica 1):")
    for block in replica.finalized_chain:
        label = "genesis" if block.epoch == 0 else f"epoch {block.epoch:2d}"
        print(f"  {label}: {block.payload.decode():24} "
              f"hash={block.hash().hex()[:12]}…")
    skipped = [
        e for e in range(1, replica.current_epoch)
        if (e - 1) % config.n in byzantine
    ]
    print(f"\nepochs wasted by silent Byzantine leaders: {skipped[:8]}"
          f"{' …' if len(skipped) > 8 else ''}")


if __name__ == "__main__":
    main()
