#!/usr/bin/env python3
"""A replicated key-value store on ProBFT (the paper's future work, §7).

Replicas run a multi-slot state machine: each slot is an independent
ProBFT instance (domain-scoped messages and VRF seeds), decided commands
are applied in slot order, and two replicas are Byzantine-silent
throughout.  Clients submit through :class:`~repro.smr.client.SMRClient`,
which wraps every command in a unique ``(client_id, seq)`` request
envelope — two clients writing the same bytes are distinct requests —
and reports per-request commit latency once ``f + 1`` replicas apply it.

The second half drives the same machinery as a *service*: a closed-loop
client population (`repro.smr.workload`) measuring throughput and tail
latency, with leader-side batching amortizing consensus slots across
requests.

Run:  python examples/smr_key_value_store.py
"""

from repro.config import ProtocolConfig
from repro.smr.app import KeyValueApp
from repro.smr.client import SMRClient
from repro.smr.service import SMRDeployment
from repro.smr.workload import ServingSpec, run_serving_trial


def replicated_store() -> None:
    config = ProtocolConfig(n=10, f=2)
    print("configuration:", config.describe())

    deployment = SMRDeployment(
        config,
        KeyValueApp,
        num_slots=6,
        seed=3,
        byzantine_ids=[8, 9],  # two silent Byzantine members
    )
    alice = SMRClient(deployment)
    bob = SMRClient(deployment)
    requests = [
        alice.submit(b"SET user:1 alice"),
        bob.submit(b"SET user:2 bob"),
        alice.submit(b"SET balance:1 100"),
        bob.submit(b"DEL user:2"),
        # Same bytes as alice's write: a *distinct* request — identity is
        # (client_id, seq), not the payload.
        bob.submit(b"SET balance:1 100"),
        alice.submit(b"SET balance:1 250"),
    ]
    print(f"submitted {len(requests)} requests; replicas 8, 9 are silent\n")

    deployment.run(max_time=50_000)

    print(f"all slots applied: {deployment.all_applied()}")
    print(f"logs consistent:   {deployment.logs_consistent()}")
    print(f"states consistent: {deployment.snapshots_consistent()}")

    print("\nrequests (request id -> slot, commit latency):")
    for record in requests:
        print(
            f"  client {record.client_id} seq {record.seq}: "
            f"{record.payload!r:24} -> slot {record.slot}, "
            f"latency {record.latency:.1f}"
        )
    for client, name in ((alice, "alice"), (bob, "bob")):
        print(
            f"{name}: mean latency {client.mean_latency():.1f}, "
            f"p99 {client.p99_latency():.1f}, timed out {client.timed_out}"
        )

    reference = deployment.replicas[0]
    print("\nfinal store state:", dict(reference.log.app.store))


def serving_benchmark() -> None:
    print("\n--- closed-loop serving trial (batched vs unbatched) ---")
    for label, batch_size, pipeline in (
        ("batched (batch=8, pipeline=4)", 8, 4),
        ("unbatched (pipeline=1)", 1, 1),
    ):
        spec = ServingSpec(
            load="high",
            num_clients=16,
            requests_per_client=3,
            batch_size=batch_size,
            pipeline=pipeline,
        )
        result = run_serving_trial(spec)
        print(
            f"{label:32} throughput {result.throughput:6.3f} req/t  "
            f"p50 {result.p50_latency:5.1f}  p99 {result.p99_latency:5.1f}  "
            f"completed {result.completed}/{result.issued}"
        )


def main() -> None:
    replicated_store()
    serving_benchmark()


if __name__ == "__main__":
    main()
