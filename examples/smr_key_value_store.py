#!/usr/bin/env python3
"""A replicated key-value store on ProBFT (the paper's future work, §7).

Ten replicas run a multi-slot state machine: each slot is an independent
ProBFT instance (domain-scoped messages and VRF seeds), decided commands are
applied in slot order, and two replicas are Byzantine-silent throughout.

Run:  python examples/smr_key_value_store.py
"""

from repro.config import ProtocolConfig
from repro.smr.app import KeyValueApp
from repro.smr.service import SMRDeployment


def main() -> None:
    config = ProtocolConfig(n=10, f=2)
    print("configuration:", config.describe())

    deployment = SMRDeployment(
        config,
        KeyValueApp,
        num_slots=6,
        seed=3,
        byzantine_ids=[8, 9],  # two silent Byzantine members
    )
    workload = [
        b"SET user:1 alice",
        b"SET user:2 bob",
        b"SET balance:1 100",
        b"DEL user:2",
        b"SET balance:1 250",
    ]
    for command in workload:
        deployment.submit_to_all(command)
    print(f"submitted {len(workload)} commands; replicas 8, 9 are silent\n")

    deployment.run(max_time=50_000)

    print(f"all slots applied: {deployment.all_applied()}")
    print(f"logs consistent:   {deployment.logs_consistent()}")
    print(f"states consistent: {deployment.snapshots_consistent()}")
    print(f"simulated time:    {deployment.sim.now:.1f} "
          f"({deployment.num_slots} slots x 3 steps + slack)\n")

    reference = deployment.replicas[0]
    print("ordered log (replica 0):")
    for slot in range(1, reference.log.applied_up_to + 1):
        value = reference.log.value_of(slot)
        result = reference.log.result_of(slot)
        print(f"  slot {slot}: {value!r:30} -> {result!r}")

    print("\nfinal store state:", dict(reference.log.app.store))


if __name__ == "__main__":
    main()
