#!/usr/bin/env python3
"""Quickstart: run one ProBFT consensus instance and inspect the outcome.

Builds a 25-replica deployment on a simulated synchronous network, runs the
protocol to completion, and prints what happened — decisions, views,
message counts, and how they compare with the paper's formulas.

Run:  python examples/quickstart.py
"""

from repro import ProtocolConfig, ProBFTDeployment
from repro.analysis import messages as M
from repro.net.latency import ConstantLatency


def main() -> None:
    # n = 25 replicas, tolerating f = 5 Byzantine ones (f < n/3).
    # Probabilistic quorum size q = ceil(2 * sqrt(25)) = 10; each replica
    # multicasts votes to a VRF-chosen sample of s = ceil(1.7 * q) = 17.
    config = ProtocolConfig(n=25, f=5, l=2.0, o=1.7)
    print("configuration:", config.describe())

    deployment = ProBFTDeployment(config, latency=ConstantLatency(1.0))
    deployment.run(max_time=1000)

    decisions = deployment.decisions
    print(f"\ndecided: {len(decisions)}/{config.n} replicas")
    print(f"agreement holds: {deployment.agreement_ok}")
    values = {d.value for d in decisions.values()}
    print(f"decided value(s): {sorted(values)}")
    views = {d.view for d in decisions.values()}
    print(f"decision view(s): {sorted(views)}")
    latest = max(d.time for d in decisions.values())
    print(f"communication steps (unit latency): {latest:.0f}  (paper: 3)")

    stats = deployment.network.stats
    print("\nmessages by type:", stats.summary())
    print(
        "formula (n-1) + 2*n*s =",
        int(M.probft_messages(config.n, config.o, config.l)),
        "(self-sends stay local, so the wire count is slightly lower)",
    )
    print(
        "same-size PBFT would send",
        M.pbft_messages(config.n),
        f"messages ({M.probft_to_pbft_ratio(config.n, config.o):.0%} used by ProBFT)",
    )


if __name__ == "__main__":
    main()
