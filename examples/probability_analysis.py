#!/usr/bin/env python3
"""Figure 5 live: ProBFT's agreement and termination probabilities.

Computes the paper's closed-form bounds, exact binomial chains, and
Monte-Carlo estimates for the probabilities plotted in Figure 5, with
q = 2*sqrt(n) as in §5.

Run:  python examples/probability_analysis.py
"""

from repro.analysis import agreement as A
from repro.analysis import termination as T
from repro.harness.tables import render_series
from repro.montecarlo.experiments import (
    estimate_agreement_violation,
    estimate_termination,
)

O = 1.7
TRIALS = 400


def termination_vs_n() -> None:
    ns = [100, 150, 200, 250, 300]
    bound, exact, mc = [], [], []
    for n in ns:
        f = n // 5
        bound.append(T.lemma4_replica_terminates(n, f, O, 2.0, strict=False))
        exact.append(T.replica_terminates_exact(n, f, O, 2.0))
        result = estimate_termination(n, f, O, trials=TRIALS, seed=n)
        mc.append(result.estimates["per_replica_decides"].point)
    print(
        render_series(
            "n",
            ns,
            {"paper bound": bound, "exact chain": exact, "monte carlo": mc},
            title=(
                "Termination probability vs n  (f/n = 0.2, correct leader "
                "after GST; paper: increasing in n)"
            ),
        )
    )


def agreement_vs_f() -> None:
    ratios = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30]
    exact, mc = [], []
    for ratio in ratios:
        f = int(100 * ratio)
        exact.append(A.agreement_in_view_exact(100, f, O, 2.0))
        result = estimate_agreement_violation(
            100, f, O, trials=4 * TRIALS, seed=int(ratio * 100)
        )
        side = result.estimates["side_decides_fixed"].point
        mc.append(1.0 - side**2)
    print(
        render_series(
            "f/n",
            ratios,
            {"exact chain": exact, "monte carlo": mc},
            title=(
                "\nWithin-view agreement probability vs f/n  (n = 100, "
                "Byzantine leader, optimal split; paper: decreasing in f/n)"
            ),
        )
    )


def detection_story() -> None:
    result = estimate_agreement_violation(
        100, 20, O, trials=1500, seed=1, model_detection=True
    )
    print("\nHow loose is the quorum-only analysis? (n=100, f=20)")
    print(
        "  P(both sides form quorums, any replicas):",
        f"{result.estimates['violation_quorums'].point:.4f}",
    )
    print(
        "  ... after equivocation detection (Alg. 1 lines 23-25):",
        f"{result.estimates['violation_detected'].point:.4f}",
    )
    print("  (full-protocol simulation shows zero violations; see tests)")


def main() -> None:
    termination_vs_n()
    agreement_vs_f()
    detection_story()


if __name__ == "__main__":
    main()
