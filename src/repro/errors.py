"""Exception hierarchy for the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError, ValueError):
    """Invalid protocol configuration (e.g. f >= n/3)."""


class CryptoError(ReproError):
    """Base class for crypto substrate errors."""


class SignatureError(CryptoError):
    """A signature failed verification."""


class VRFError(CryptoError):
    """A VRF proof failed verification or was malformed."""


class UnknownReplicaError(CryptoError, KeyError):
    """A replica ID is not present in the key registry."""


class NetworkError(ReproError):
    """Base class for network simulation errors."""


class NotRegisteredError(NetworkError):
    """A message was addressed to a replica with no registered handler."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven incorrectly."""


class ProtocolError(ReproError):
    """A replica received an ill-formed message it cannot even reject cleanly.

    Correct replicas normally *ignore* invalid messages; this error is raised
    only for programming errors (e.g. wiring a replica into two networks).
    """


class QuorumError(ReproError):
    """Invalid use of a quorum collector or certificate."""


class AnalysisDomainError(ReproError, ValueError):
    """Parameters are outside the validity domain of a closed-form bound.

    Several bounds in the paper hold only for restricted parameter ranges
    (e.g. Chernoff's delta must be positive).  The analysis functions raise
    this error (or return NaN when ``strict=False``) outside the domain.
    """
