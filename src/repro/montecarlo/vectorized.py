"""Vectorized batch kernels for the sampling-level estimators.

The per-trial functions in :mod:`repro.montecarlo.experiments` are already
numpy code, but at one trial per dispatch the engine overhead (spec
construction, a handful of small array ops, Python aggregation) dominates
once ``n`` is small relative to the trial count.  The kernels here run a
*batch* of consecutive trials as one unit of work: every trial still draws
from its own ``np.random.default_rng(derive_seed(master_seed, index))``
generator — computed *inside* the batch, so results are bit-identical to
the one-trial-per-spec path on any backend — while the expensive
post-draw steps (argpartition, bincount) run once across the whole batch.

Batches travel through the normal :class:`~repro.harness.parallel
.ExperimentEngine` / Backend seam: one :class:`TrialSpec` per batch, so
``workers=``/``backend=`` parallelism applies to batches exactly as it
does to trials.

Only the analytical estimators with rectangular draws are vectorized
(prepare-quorum, termination, view-change).  The optimal-split attack
estimator keeps the general path: its per-trial work is six membership
matrices and the batch win is marginal.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

import numpy as np

from ..harness.backends import derive_seed
from ..harness.parallel import ExperimentEngine, TrialSpec

__all__ = ["run_batches", "DEFAULT_BATCH"]

#: Trials folded into one batch spec.  Large enough to amortize dispatch,
#: small enough that a pool still load-balances a few thousand trials.
DEFAULT_BATCH = 256

#: Rows of noise argpartitioned per internal chunk.  A full batch's noise
#: tensor can run to tens of megabytes; selecting in ~1 MB slices keeps the
#: working set cache-resident (argpartition output is independent per row,
#: so chunking changes nothing but locality).
_CHUNK_DOUBLES = 1 << 17

#: Rows of noise *materialized* at once.  A whole batch's noise at n=500 is
#: hundreds of megabytes; trials are grouped so one slab stays a few MB —
#: large enough to amortize per-call numpy overhead, small enough to avoid
#: page-fault churn.  Grouping is invisible in the results (each trial's
#: draws still come from its own generator).
_SLAB_ROWS = 1 << 12


def _argpartition_rows(noise: np.ndarray, s: int) -> np.ndarray:
    """Per-row partial selection of the ``s`` smallest, cache-friendly.

    Equivalent to ``np.argpartition(noise, s, axis=1)[:, :s]`` (each row is
    selected independently), applied in row chunks sized to stay in cache.
    """
    rows, n = noise.shape
    chunk = max(1, _CHUNK_DOUBLES // max(n, 1))
    if rows <= chunk:
        return np.argpartition(noise, s, axis=1)[:, :s]
    out = np.empty((rows, s), dtype=np.int64)
    for lo in range(0, rows, chunk):
        hi = min(lo + chunk, rows)
        out[lo:hi] = np.argpartition(noise[lo:hi], s, axis=1)[:, :s]
    return out


def _group_counts(
    rngs: Sequence[np.random.Generator],
    n: int,
    senders_per_trial: Sequence[int],
    s: int,
    counts_out: np.ndarray,
    lo: int,
) -> None:
    """Inclusion counts for one trial group, written to ``counts_out[lo:]``.

    Replays :func:`repro.montecarlo.sampling.inclusion_counts` for each
    trial: the noise comes from that trial's own generator (``out=`` fills
    the same stream positions as ``rng.random((m, n))``), one chunked
    argpartition covers the whole group, and each trial bincounts its own
    contiguous member rows — per-row selection and per-trial counting are
    independent, so the batched result matches the per-trial calls bit for
    bit.
    """
    total_rows = int(sum(senders_per_trial))
    if total_rows == 0:
        return
    noise = np.empty((total_rows, n), dtype=np.float64)
    row = 0
    for rng, m in zip(rngs, senders_per_trial):
        if m:
            rng.random(out=noise[row : row + m])
            row += m
    if s == n:
        members = np.broadcast_to(
            np.arange(n), (total_rows, n)
        ).astype(np.int64, copy=False)
    else:
        members = _argpartition_rows(noise, s)
    row = 0
    for t, m in enumerate(senders_per_trial):
        if m:
            counts_out[lo + t] = np.bincount(
                members[row : row + m].ravel(), minlength=n
            )
            row += m


def _inclusion_counts_matrix(
    rngs: Sequence[np.random.Generator],
    n: int,
    senders_per_trial: Sequence[int],
    s: int,
) -> np.ndarray:
    """Per-trial receiver inclusion counts, ``(trials, n)``.

    Trials are processed in slabs of at most :data:`_SLAB_ROWS` noise rows;
    ``senders_per_trial`` may be uniform (stage 1) or ragged (termination's
    commit stage, where each trial's committer count differs).
    """
    trials = len(rngs)
    counts = np.zeros((trials, n), dtype=np.int64)
    lo = 0
    while lo < trials:
        hi = lo + 1
        rows = senders_per_trial[lo]
        while hi < trials and rows + senders_per_trial[hi] <= _SLAB_ROWS:
            rows += senders_per_trial[hi]
            hi += 1
        _group_counts(
            rngs[lo:hi], n, senders_per_trial[lo:hi], s, counts, lo
        )
        lo = hi
    return counts


def _batch_rngs(
    master_seed: int, start: int, count: int
) -> List[np.random.Generator]:
    """The batch's per-trial generators, seeded exactly like the engine."""
    return [
        np.random.default_rng(derive_seed(master_seed, start + j))
        for j in range(count)
    ]


# ----------------------------------------------------------------------
# Batch trial functions (module-level so they pickle into pool workers).
# Each consumes one TrialSpec whose params carry (master_seed, start,
# count, *sizes) and returns the batch's rows in trial order — the same
# row tuples the corresponding per-trial function produces.
# ----------------------------------------------------------------------


def prepare_quorum_batch(spec: TrialSpec) -> List[tuple]:
    master_seed, start, count, n, f, q, s = spec.params
    n_correct = n - f
    rngs = _batch_rngs(master_seed, start, count)
    counts = _inclusion_counts_matrix(rngs, n, [n_correct] * count, s)
    formed = counts[:, :n_correct] >= q
    return [(bool(row[0]), bool(row.all())) for row in formed]


def termination_batch(spec: TrialSpec) -> List[tuple]:
    master_seed, start, count, n, f, q, s = spec.params
    n_correct = n - f
    rngs = _batch_rngs(master_seed, start, count)
    prep_counts = _inclusion_counts_matrix(rngs, n, [n_correct] * count, s)
    prepared = prep_counts[:, :n_correct] >= q
    ms = [int(m) for m in prepared.sum(axis=1)]
    commit_counts = _inclusion_counts_matrix(rngs, n, ms, s)
    decided = prepared & (commit_counts[:, :n_correct] >= q)
    return [
        (bool(decided[t, 0]), bool(decided[t].all()), ms[t] / n_correct)
        for t in range(count)
    ]


def viewchange_batch(spec: TrialSpec) -> List[bool]:
    master_seed, start, count, n, r, q, s = spec.params
    rngs = _batch_rngs(master_seed, start, count)
    counts = _inclusion_counts_matrix(rngs, n, [r] * count, s)
    return [bool(c >= q) for c in counts[:, 0]]


def run_batches(
    eng: ExperimentEngine,
    fn: Any,
    trials: int,
    master_seed: int,
    sizes: Tuple[Any, ...],
    batch_size: int = DEFAULT_BATCH,
) -> List[Any]:
    """Fan ``trials`` through ``fn`` in batches; flattened rows in order.

    One spec per batch goes through the engine's normal map (so pools and
    sharded backends parallelize across batches); each batch recomputes its
    trials' seeds from ``(master_seed, start index)`` internally, keeping
    the rows bit-identical to the per-trial dispatch for any batch size.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    specs = []
    start = 0
    while start < trials:
        count = min(batch_size, trials - start)
        specs.append(
            TrialSpec(
                index=len(specs),
                seed=derive_seed(master_seed, start),
                params=(master_seed, start, count) + tuple(sizes),
            )
        )
        start += count
    rows: List[Any] = []
    for batch in eng.map(fn, specs):
        rows.extend(batch)
    return rows
