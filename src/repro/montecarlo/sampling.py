"""Vectorized random-sample primitives.

Model: each sender draws ``s`` distinct replica IDs uniformly from ``n``
(exactly what the VRF does, paper §2.4) and "sends" to all of them; the
quantity of interest is, per receiver, how many senders' samples include it.
"""

from __future__ import annotations

import numpy as np


def sample_members(
    n: int, senders: int, s: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw one s-subset of ``range(n)`` per sender.

    Returns an ``(senders, s)`` int array.  Implemented as a batched partial
    argpartition of uniform noise — equivalent to ``senders`` independent
    Fisher–Yates draws.
    """
    if not 0 < s <= n:
        raise ValueError(f"need 0 < s <= n, got s={s}, n={n}")
    if senders < 0:
        raise ValueError(f"senders must be >= 0, got {senders}")
    if senders == 0:
        return np.empty((0, s), dtype=np.int64)
    noise = rng.random((senders, n))
    if s == n:
        return np.tile(np.arange(n), (senders, 1))
    return np.argpartition(noise, s, axis=1)[:, :s]


def inclusion_counts(
    n: int, senders: int, s: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-receiver count of senders whose sample includes the receiver.

    Returns an ``(n,)`` int array summing to ``senders * s``.
    """
    members = sample_members(n, senders, s, rng)
    return np.bincount(members.ravel(), minlength=n)


def membership_matrix(
    n: int, senders: int, s: int, rng: np.random.Generator
) -> np.ndarray:
    """Boolean ``(senders, n)`` matrix: ``M[k, j]`` iff sender k sampled j."""
    members = sample_members(n, senders, s, rng)
    matrix = np.zeros((senders, n), dtype=bool)
    if senders:
        rows = np.repeat(np.arange(senders), members.shape[1])
        matrix[rows, members.ravel()] = True
    return matrix
