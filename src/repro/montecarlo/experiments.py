"""Monte-Carlo estimators for ProBFT's termination and agreement probabilities.

Two levels of fidelity:

* **sampling-level** estimators replay only the VRF-sampling randomness
  (fast; thousands of trials) and mirror the events the paper's analysis
  bounds — quorum formation chains, the optimal-split attack of Figure 4c;
* **protocol-level** estimators run the full discrete-event simulation with
  real Byzantine replicas, capturing everything the analysis conservatively
  ignores (equivocation detection, view changes, safeProposal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..config import ProtocolConfig, probabilistic_quorum_size, vrf_sample_size
from ..harness.metrics import ProportionEstimate
from .sampling import inclusion_counts, membership_matrix


@dataclass
class MonteCarloResult:
    """Outcome of a sampling-level experiment."""

    trials: int
    estimates: Dict[str, ProportionEstimate] = field(default_factory=dict)

    def point(self, key: str) -> float:
        return self.estimates[key].point

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"MonteCarloResult({self.trials} trials)"]
        lines += [f"  {k}: {v}" for k, v in self.estimates.items()]
        return "\n".join(lines)


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _sizes(n: int, o: float, l: float) -> tuple:
    q = probabilistic_quorum_size(n, l)
    s = vrf_sample_size(n, q, o)
    return q, s


def estimate_prepare_quorum(
    n: int, f: int, o: float, l: float = 2.0, trials: int = 500, seed: int = 0
) -> MonteCarloResult:
    """Probability of forming a prepare quorum when all correct replicas send.

    Estimates both the per-replica probability (Theorem 2 / Corollary 2's
    target) and the all-correct-replicas-form event.
    """
    q, s = _sizes(n, o, l)
    rng = _rng(seed)
    n_correct = n - f
    replica_hits = 0
    all_hits = 0
    for _ in range(trials):
        counts = inclusion_counts(n, n_correct, s, rng)
        formed = counts[:n_correct] >= q
        replica_hits += int(formed[0])
        all_hits += int(formed.all())
    return MonteCarloResult(
        trials=trials,
        estimates={
            "per_replica_quorum": ProportionEstimate(replica_hits, trials),
            "all_correct_quorum": ProportionEstimate(all_hits, trials),
        },
    )


def estimate_termination(
    n: int, f: int, o: float, l: float = 2.0, trials: int = 500, seed: int = 0
) -> MonteCarloResult:
    """Termination in a correct-leader view (Figure 5 right panels).

    Stage 1: all ``n−f`` correct replicas multicast Prepare; a correct
    replica prepares iff ≥ q of those samples include it.  Stage 2: prepared
    replicas multicast Commit; a replica decides iff it prepared and ≥ q
    commit samples include it.  Byzantine replicas stay silent (the
    worst case Theorem 2 mentions).
    """
    q, s = _sizes(n, o, l)
    rng = _rng(seed)
    n_correct = n - f
    decide_hits = 0
    all_decide_hits = 0
    prepared_fracs = []
    for _ in range(trials):
        prep_counts = inclusion_counts(n, n_correct, s, rng)
        prepared = prep_counts[:n_correct] >= q
        m = int(prepared.sum())
        prepared_fracs.append(m / n_correct)
        commit_counts = inclusion_counts(n, m, s, rng)
        decided = prepared & (commit_counts[:n_correct] >= q)
        decide_hits += int(decided[0])
        all_decide_hits += int(decided.all())
    result = MonteCarloResult(
        trials=trials,
        estimates={
            "per_replica_decides": ProportionEstimate(decide_hits, trials),
            "all_correct_decide": ProportionEstimate(all_decide_hits, trials),
        },
    )
    result.mean_prepared_fraction = float(np.mean(prepared_fracs))
    return result


def estimate_agreement_violation(
    n: int,
    f: int,
    o: float,
    l: float = 2.0,
    trials: int = 2000,
    seed: int = 0,
    model_detection: bool = False,
) -> MonteCarloResult:
    """The optimal-split attack (Figure 4c) at the sampling level.

    Correct replicas are split into halves C1/C2; Byzantine replicas support
    both sides.  Reported events:

    * ``side_decides_fixed``  — a fixed C1 replica decides val₁ (the factor
      Lemma 5 bounds; violation ≈ this squared);
    * ``violation_quorums``   — some C1 replica decides val₁ AND some C2
      replica decides val₂, counting quorum formation only (the paper's
      analysis target);
    * with ``model_detection=True``, deciders that received any cross-side
      vote are excluded first (``violation_detected`` — closer to the real
      protocol, in which such replicas block the view instead of deciding).
    """
    q, s = _sizes(n, o, l)
    rng = _rng(seed)
    n_correct = n - f
    half = n_correct // 2
    # Layout: C1 = [0, half), C2 = [half, n_correct), F = [n_correct, n).
    side_fixed_hits = 0
    violation_hits = 0
    violation_detected_hits = 0
    for _ in range(trials):
        # Prepare phase: side-1 senders are C1 + F, side-2 senders C2 + F.
        m1 = membership_matrix(n, half, s, rng)  # C1 prepares (val1)
        m2 = membership_matrix(n, n_correct - half, s, rng)  # C2 (val2)
        mf = membership_matrix(n, f, s, rng)  # Byzantine (both values)
        prep1_counts = m1.sum(axis=0) + mf.sum(axis=0)
        prep2_counts = m2.sum(axis=0) + mf.sum(axis=0)
        prepared1 = prep1_counts[:half] >= q
        prepared2 = prep2_counts[half:n_correct] >= q

        # Commit phase: committers are the prepared correct members + F.
        c1 = membership_matrix(n, int(prepared1.sum()), s, rng)
        c2 = membership_matrix(n, int(prepared2.sum()), s, rng)
        cf = membership_matrix(n, f, s, rng)
        commit1_counts = c1.sum(axis=0) + cf.sum(axis=0)
        commit2_counts = c2.sum(axis=0) + cf.sum(axis=0)
        decided1 = prepared1 & (commit1_counts[:half] >= q)
        decided2 = prepared2 & (commit2_counts[half:n_correct] >= q)

        side_fixed_hits += int(decided1[0]) if half else 0
        violated = bool(decided1.any() and decided2.any())
        violation_hits += int(violated)

        if model_detection:
            # A C1 replica touched by any val2 vote (from C2 or the
            # committers of side 2) detects equivocation and blocks.
            cross_to_c1 = (
                m2.sum(axis=0)[:half] + c2.sum(axis=0)[:half]
            ) > 0
            cross_to_c2 = (
                m1.sum(axis=0)[half:n_correct] + c1.sum(axis=0)[half:n_correct]
            ) > 0
            d1 = decided1 & ~cross_to_c1
            d2 = decided2 & ~cross_to_c2
            violation_detected_hits += int(d1.any() and d2.any())

    estimates = {
        "side_decides_fixed": ProportionEstimate(side_fixed_hits, trials),
        "violation_quorums": ProportionEstimate(violation_hits, trials),
    }
    if model_detection:
        estimates["violation_detected"] = ProportionEstimate(
            violation_detected_hits, trials
        )
    return MonteCarloResult(trials=trials, estimates=estimates)


def estimate_protocol_agreement(
    config: ProtocolConfig,
    trials: int = 20,
    seed: int = 0,
    max_time: float = 5000.0,
) -> MonteCarloResult:
    """Full-protocol agreement under the optimal equivocation attack.

    Runs the real discrete-event simulation ``trials`` times with different
    seeds and counts actual disagreement among correct replicas.  Slow;
    intended for modest trial counts.
    """
    from ..harness.scenarios import equivocation_case

    violation_hits = 0
    undecided_runs = 0
    for t in range(trials):
        deployment, _plan = equivocation_case(config, seed=seed + t)
        deployment.run(max_time=max_time)
        if not deployment.agreement_ok:
            violation_hits += 1
        if not deployment.all_correct_decided():
            undecided_runs += 1
    return MonteCarloResult(
        trials=trials,
        estimates={
            "violation_full_protocol": ProportionEstimate(violation_hits, trials),
            "undecided_runs": ProportionEstimate(undecided_runs, trials),
        },
    )


def estimate_viewchange_decide(
    n: int,
    f: int,
    o: float,
    l: float = 2.0,
    prepared: Optional[int] = None,
    trials: int = 2000,
    seed: int = 0,
) -> MonteCarloResult:
    """Lemma 6 / Theorem 8's scenario: only ``prepared`` replicas committed.

    A value was prepared by ``r = prepared`` replicas (default the theorem's
    worst case ``(n+f)/2``); estimates the probability that a fixed replica
    receives a commit quorum from them — the event whose probability Lemma 6
    bounds and Theorem 8 multiplies into the cross-view safety argument.
    """
    q, s = _sizes(n, o, l)
    r = prepared if prepared is not None else (n + f) // 2
    rng = _rng(seed)
    hits = 0
    for _ in range(trials):
        counts = inclusion_counts(n, r, s, rng)
        hits += int(counts[0] >= q)
    return MonteCarloResult(
        trials=trials,
        estimates={"decides_from_partial_prepare": ProportionEstimate(hits, trials)},
    )
