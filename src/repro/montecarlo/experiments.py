"""Monte-Carlo estimators for ProBFT's termination and agreement probabilities.

Two levels of fidelity:

* **sampling-level** estimators replay only the VRF-sampling randomness
  (fast; thousands of trials) and mirror the events the paper's analysis
  bounds — quorum formation chains, the optimal-split attack of Figure 4c;
* **protocol-level** estimators run the full discrete-event simulation with
  real Byzantine replicas, capturing everything the analysis conservatively
  ignores (equivocation detection, view changes, safeProposal).

Every estimator fans its trials through
:class:`repro.harness.parallel.ExperimentEngine`: trial ``i`` draws from a
``numpy`` generator seeded with ``derive_seed(seed, i)``, so results are
bit-identical whether the trials run serially (``workers=0``, the default),
across a process pool (``workers=k``), or on any other execution backend
(``backend="async"``/``"sharded"`` — see :mod:`repro.harness.backends`),
and independent of completion order.  Pass ``workers=``/``backend=`` for
one-off parallelism or ``engine=`` to share a configured engine across
calls.

The rectangular sampling-level estimators (prepare-quorum, termination,
view-change) additionally accept ``vectorized=True``: trials run in
numpy batches (:mod:`repro.montecarlo.vectorized`) that recompute
``derive_seed(seed, i)`` internally, so the result is bit-identical to
the per-trial path while amortizing dispatch overhead across the batch.
Vectorized runs are fixed-budget only (``stopping`` must be ``None``).

Every estimator also takes ``stopping=`` — an adaptive
:class:`~repro.harness.adaptive.StoppingRule` (e.g. ``TargetWidth(0.02,
metric="per_replica_decides")``) evaluated every ``chunk`` trials on the
streaming Wilson counters, with ``trials`` as the hard cap.  An adaptive
run's result is bit-identical to the same-length prefix of the fixed run
(seeds are counter-derived), ``result.trials`` reports what was actually
spent, and ``result.stop_reason`` says why the run ended.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..config import ProtocolConfig, probabilistic_quorum_size, vrf_sample_size
from ..harness.adaptive import (
    DEFAULT_CHUNK,
    ProportionProgress,
    StoppingRule,
    consume_adaptive,
)
from ..harness.metrics import ProportionEstimate, StreamingProportion
from ..harness.backends import Backend
from ..harness.parallel import ExperimentEngine, TrialSpec, engine_scope
from .sampling import inclusion_counts, membership_matrix
from .vectorized import (
    DEFAULT_BATCH,
    prepare_quorum_batch,
    run_batches,
    termination_batch,
    viewchange_batch,
)


@dataclass
class MonteCarloResult:
    """Outcome of a sampling-level experiment.

    ``trials`` is what actually ran; ``stop_reason`` is ``None`` for fixed
    budgets and the stopping rule's reason (``"target-width"``/
    ``"budget"``/...) for adaptive runs.
    """

    trials: int
    estimates: Dict[str, ProportionEstimate] = field(default_factory=dict)
    stop_reason: Optional[str] = None

    def point(self, key: str) -> float:
        return self.estimates[key].point

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"MonteCarloResult({self.trials} trials)"]
        lines += [f"  {k}: {v}" for k, v in self.estimates.items()]
        return "\n".join(lines)


def _sizes(n: int, o: float, l: float) -> tuple:
    q = probabilistic_quorum_size(n, l)
    s = vrf_sample_size(n, q, o)
    return q, s


def _collect_trials(
    eng: ExperimentEngine,
    fn: Callable[[TrialSpec], Any],
    trials: int,
    seed: int,
    params: Any,
    stopping: Optional[StoppingRule],
    chunk: int,
    metrics: Dict[str, Callable[[Any], bool]],
) -> Tuple[List[Any], int, Optional[str]]:
    """Run an estimator's trials, fixed or adaptive; returns the rows.

    ``stopping=None`` is the classical fixed budget (materialized
    ``run_trials``).  With a rule, rows stream through a bounded
    (``window=chunk``) dispatch while per-metric Wilson counters fold
    online; the rule sees them as a :class:`ProportionProgress` at every
    ``chunk`` boundary and ``trials`` caps the stream — so the returned
    prefix is bit-identical to the first ``len(rows)`` rows of the fixed
    run, whatever the backend.  ``metrics`` maps each stoppable metric
    name (the estimate keys) to its boolean extractor over one row.
    """
    if stopping is None:
        return eng.run_trials(fn, trials, master_seed=seed, params=params), trials, None
    proportions = {name: StreamingProportion() for name in metrics}
    progress = ProportionProgress(proportions)
    rows: List[Any] = []

    def fold(row: Any) -> None:
        rows.append(row)
        for name, extract in metrics.items():
            proportions[name].add(bool(extract(row)))

    results = eng.run_stream(
        fn, trials, master_seed=seed, params=params, window=chunk
    )
    used, reason = consume_adaptive(results, fold, progress, stopping, chunk)
    return rows, used, reason


def _collect_vectorized(
    eng: ExperimentEngine,
    batch_fn: Callable[[TrialSpec], List[Any]],
    trials: int,
    seed: int,
    params: Tuple[Any, ...],
    stopping: Optional[StoppingRule],
    batch_size: int,
) -> Tuple[List[Any], int, Optional[str]]:
    """The batched sibling of :func:`_collect_trials` (fixed budgets only)."""
    if stopping is not None:
        raise ValueError(
            "vectorized=True runs fixed budgets only; adaptive stopping "
            "rules need the per-trial stream (pass stopping=None)"
        )
    rows = run_batches(eng, batch_fn, trials, seed, params, batch_size)
    return rows, trials, None


# ----------------------------------------------------------------------
# Per-trial functions (module-level so they pickle into pool workers).
# Each consumes exactly one TrialSpec: seeds come from the engine's
# deterministic splitter, shared sizes travel in ``spec.params``.
# ----------------------------------------------------------------------


def _prepare_quorum_trial(spec: TrialSpec) -> tuple:
    n, f, q, s = spec.params
    rng = np.random.default_rng(spec.seed)
    n_correct = n - f
    counts = inclusion_counts(n, n_correct, s, rng)
    formed = counts[:n_correct] >= q
    return bool(formed[0]), bool(formed.all())


def _termination_trial(spec: TrialSpec) -> tuple:
    n, f, q, s = spec.params
    rng = np.random.default_rng(spec.seed)
    n_correct = n - f
    prep_counts = inclusion_counts(n, n_correct, s, rng)
    prepared = prep_counts[:n_correct] >= q
    m = int(prepared.sum())
    commit_counts = inclusion_counts(n, m, s, rng)
    decided = prepared & (commit_counts[:n_correct] >= q)
    return bool(decided[0]), bool(decided.all()), m / n_correct


def _agreement_violation_trial(spec: TrialSpec) -> tuple:
    n, f, q, s, model_detection = spec.params
    rng = np.random.default_rng(spec.seed)
    n_correct = n - f
    half = n_correct // 2
    # Layout: C1 = [0, half), C2 = [half, n_correct), F = [n_correct, n).
    # Prepare phase: side-1 senders are C1 + F, side-2 senders C2 + F.
    m1 = membership_matrix(n, half, s, rng)  # C1 prepares (val1)
    m2 = membership_matrix(n, n_correct - half, s, rng)  # C2 (val2)
    mf = membership_matrix(n, f, s, rng)  # Byzantine (both values)
    prep1_counts = m1.sum(axis=0) + mf.sum(axis=0)
    prep2_counts = m2.sum(axis=0) + mf.sum(axis=0)
    prepared1 = prep1_counts[:half] >= q
    prepared2 = prep2_counts[half:n_correct] >= q

    # Commit phase: committers are the prepared correct members + F.
    c1 = membership_matrix(n, int(prepared1.sum()), s, rng)
    c2 = membership_matrix(n, int(prepared2.sum()), s, rng)
    cf = membership_matrix(n, f, s, rng)
    commit1_counts = c1.sum(axis=0) + cf.sum(axis=0)
    commit2_counts = c2.sum(axis=0) + cf.sum(axis=0)
    decided1 = prepared1 & (commit1_counts[:half] >= q)
    decided2 = prepared2 & (commit2_counts[half:n_correct] >= q)

    side_fixed = bool(decided1[0]) if half else False
    violated = bool(decided1.any() and decided2.any())

    violated_detected = False
    if model_detection:
        # A C1 replica touched by any val2 vote (from C2 or the
        # committers of side 2) detects equivocation and blocks.
        cross_to_c1 = (m2.sum(axis=0)[:half] + c2.sum(axis=0)[:half]) > 0
        cross_to_c2 = (
            m1.sum(axis=0)[half:n_correct] + c1.sum(axis=0)[half:n_correct]
        ) > 0
        d1 = decided1 & ~cross_to_c1
        d2 = decided2 & ~cross_to_c2
        violated_detected = bool(d1.any() and d2.any())
    return side_fixed, violated, violated_detected


def _viewchange_trial(spec: TrialSpec) -> bool:
    n, r, q, s = spec.params
    rng = np.random.default_rng(spec.seed)
    counts = inclusion_counts(n, r, s, rng)
    return bool(counts[0] >= q)


def _protocol_agreement_trial(spec: TrialSpec) -> tuple:
    # Route through the unified trial lifecycle: the same deployment the
    # `equivocation` scenario builds, expressed as a DeploymentSpec so the
    # crypto pool and one protocol runner serve this estimator too.
    from ..adversary.plans import equivocation_byzantine_map
    from ..harness.trial import DeploymentSpec, run_trial
    from ..net.latency import ConstantLatency
    from ..sync.timeouts import FixedTimeout

    config, max_time = spec.params
    byzantine, _plan = equivocation_byzantine_map(config)
    result = run_trial(
        DeploymentSpec(
            protocol="probft",
            config=config,
            seed=spec.seed,
            latency=ConstantLatency(1.0),
            timeout_policy=FixedTimeout(20.0),
            byzantine=byzantine,
            max_time=max_time,
        )
    )
    return (not result.agreement_ok, not result.all_decided)


# ----------------------------------------------------------------------
# Estimators
# ----------------------------------------------------------------------


def estimate_prepare_quorum(
    n: int,
    f: int,
    o: float,
    l: float = 2.0,
    trials: int = 500,
    seed: int = 0,
    workers: int = 0,
    engine: Optional[ExperimentEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    stopping: Optional[StoppingRule] = None,
    chunk: int = DEFAULT_CHUNK,
    vectorized: bool = False,
    batch_size: int = DEFAULT_BATCH,
) -> MonteCarloResult:
    """Probability of forming a prepare quorum when all correct replicas send.

    Estimates both the per-replica probability (Theorem 2 / Corollary 2's
    target) and the all-correct-replicas-form event.  ``vectorized=True``
    runs the trials in bit-identical numpy batches (fixed budgets only).
    """
    q, s = _sizes(n, o, l)
    with engine_scope(engine, workers, backend) as eng:
        if vectorized:
            rows, used, reason = _collect_vectorized(
                eng, prepare_quorum_batch, trials, seed, (n, f, q, s),
                stopping, batch_size,
            )
        else:
            rows, used, reason = _collect_trials(
                eng,
                _prepare_quorum_trial,
                trials,
                seed,
                (n, f, q, s),
                stopping,
                chunk,
                metrics={
                    "per_replica_quorum": lambda row: row[0],
                    "all_correct_quorum": lambda row: row[1],
                },
            )
    replica_hits = sum(r for r, _ in rows)
    all_hits = sum(a for _, a in rows)
    return MonteCarloResult(
        trials=used,
        estimates={
            "per_replica_quorum": ProportionEstimate(replica_hits, used),
            "all_correct_quorum": ProportionEstimate(all_hits, used),
        },
        stop_reason=reason,
    )


def estimate_termination(
    n: int,
    f: int,
    o: float,
    l: float = 2.0,
    trials: int = 500,
    seed: int = 0,
    workers: int = 0,
    engine: Optional[ExperimentEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    stopping: Optional[StoppingRule] = None,
    chunk: int = DEFAULT_CHUNK,
    vectorized: bool = False,
    batch_size: int = DEFAULT_BATCH,
) -> MonteCarloResult:
    """Termination in a correct-leader view (Figure 5 right panels).

    Stage 1: all ``n−f`` correct replicas multicast Prepare; a correct
    replica prepares iff ≥ q of those samples include it.  Stage 2: prepared
    replicas multicast Commit; a replica decides iff it prepared and ≥ q
    commit samples include it.  Byzantine replicas stay silent (the
    worst case Theorem 2 mentions).  ``vectorized=True`` runs the trials
    in bit-identical numpy batches (fixed budgets only).
    """
    q, s = _sizes(n, o, l)
    with engine_scope(engine, workers, backend) as eng:
        if vectorized:
            rows, used, reason = _collect_vectorized(
                eng, termination_batch, trials, seed, (n, f, q, s),
                stopping, batch_size,
            )
        else:
            rows, used, reason = _collect_trials(
                eng,
                _termination_trial,
                trials,
                seed,
                (n, f, q, s),
                stopping,
                chunk,
                metrics={
                    "per_replica_decides": lambda row: row[0],
                    "all_correct_decide": lambda row: row[1],
                },
            )
    decide_hits = sum(d for d, _, _ in rows)
    all_decide_hits = sum(a for _, a, _ in rows)
    prepared_fracs = [frac for _, _, frac in rows]
    result = MonteCarloResult(
        trials=used,
        estimates={
            "per_replica_decides": ProportionEstimate(decide_hits, used),
            "all_correct_decide": ProportionEstimate(all_decide_hits, used),
        },
        stop_reason=reason,
    )
    result.mean_prepared_fraction = float(np.mean(prepared_fracs))
    return result


def estimate_agreement_violation(
    n: int,
    f: int,
    o: float,
    l: float = 2.0,
    trials: int = 2000,
    seed: int = 0,
    model_detection: bool = False,
    workers: int = 0,
    engine: Optional[ExperimentEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    stopping: Optional[StoppingRule] = None,
    chunk: int = DEFAULT_CHUNK,
) -> MonteCarloResult:
    """The optimal-split attack (Figure 4c) at the sampling level.

    Correct replicas are split into halves C1/C2; Byzantine replicas support
    both sides.  Reported events:

    * ``side_decides_fixed``  — a fixed C1 replica decides val₁ (the factor
      Lemma 5 bounds; violation ≈ this squared);
    * ``violation_quorums``   — some C1 replica decides val₁ AND some C2
      replica decides val₂, counting quorum formation only (the paper's
      analysis target);
    * with ``model_detection=True``, deciders that received any cross-side
      vote are excluded first (``violation_detected`` — closer to the real
      protocol, in which such replicas block the view instead of deciding).
    """
    q, s = _sizes(n, o, l)
    metrics: Dict[str, Callable[[Any], bool]] = {
        "side_decides_fixed": lambda row: row[0],
        "violation_quorums": lambda row: row[1],
    }
    if model_detection:
        metrics["violation_detected"] = lambda row: row[2]
    with engine_scope(engine, workers, backend) as eng:
        rows, used, reason = _collect_trials(
            eng,
            _agreement_violation_trial,
            trials,
            seed,
            (n, f, q, s, model_detection),
            stopping,
            chunk,
            metrics=metrics,
        )
    side_fixed_hits = sum(sf for sf, _, _ in rows)
    violation_hits = sum(v for _, v, _ in rows)
    estimates = {
        "side_decides_fixed": ProportionEstimate(side_fixed_hits, used),
        "violation_quorums": ProportionEstimate(violation_hits, used),
    }
    if model_detection:
        estimates["violation_detected"] = ProportionEstimate(
            sum(vd for _, _, vd in rows), used
        )
    return MonteCarloResult(trials=used, estimates=estimates, stop_reason=reason)


def estimate_protocol_agreement(
    config: ProtocolConfig,
    trials: int = 20,
    seed: int = 0,
    max_time: float = 5000.0,
    workers: int = 0,
    engine: Optional[ExperimentEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    stopping: Optional[StoppingRule] = None,
    chunk: int = DEFAULT_CHUNK,
) -> MonteCarloResult:
    """Full-protocol agreement under the optimal equivocation attack.

    Runs the real discrete-event simulation ``trials`` times with
    engine-derived per-trial seeds and counts actual disagreement among
    correct replicas.  Slow; intended for modest trial counts — but each
    trial is a whole simulation, so this is also where ``workers>1`` (and
    an adaptive ``stopping=`` rule: every trial saved is a whole
    simulation not run) pays off most.
    """
    with engine_scope(engine, workers, backend) as eng:
        rows, used, reason = _collect_trials(
            eng,
            _protocol_agreement_trial,
            trials,
            seed,
            (config, max_time),
            stopping,
            chunk,
            metrics={
                "violation_full_protocol": lambda row: row[0],
                "undecided_runs": lambda row: row[1],
            },
        )
    violation_hits = sum(v for v, _ in rows)
    undecided_runs = sum(u for _, u in rows)
    return MonteCarloResult(
        trials=used,
        estimates={
            "violation_full_protocol": ProportionEstimate(violation_hits, used),
            "undecided_runs": ProportionEstimate(undecided_runs, used),
        },
        stop_reason=reason,
    )


def estimate_viewchange_decide(
    n: int,
    f: int,
    o: float,
    l: float = 2.0,
    prepared: Optional[int] = None,
    trials: int = 2000,
    seed: int = 0,
    workers: int = 0,
    engine: Optional[ExperimentEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    stopping: Optional[StoppingRule] = None,
    chunk: int = DEFAULT_CHUNK,
    vectorized: bool = False,
    batch_size: int = DEFAULT_BATCH,
) -> MonteCarloResult:
    """Lemma 6 / Theorem 8's scenario: only ``prepared`` replicas committed.

    A value was prepared by ``r = prepared`` replicas (default the theorem's
    worst case ``(n+f)/2``); estimates the probability that a fixed replica
    receives a commit quorum from them — the event whose probability Lemma 6
    bounds and Theorem 8 multiplies into the cross-view safety argument.
    ``vectorized=True`` runs the trials in bit-identical numpy batches
    (fixed budgets only).
    """
    q, s = _sizes(n, o, l)
    r = prepared if prepared is not None else (n + f) // 2
    with engine_scope(engine, workers, backend) as eng:
        if vectorized:
            rows, used, reason = _collect_vectorized(
                eng, viewchange_batch, trials, seed, (n, r, q, s),
                stopping, batch_size,
            )
        else:
            rows, used, reason = _collect_trials(
                eng,
                _viewchange_trial,
                trials,
                seed,
                (n, r, q, s),
                stopping,
                chunk,
                metrics={"decides_from_partial_prepare": lambda row: row},
            )
    hits = sum(rows)
    return MonteCarloResult(
        trials=used,
        estimates={
            "decides_from_partial_prepare": ProportionEstimate(hits, used)
        },
        stop_reason=reason,
    )
