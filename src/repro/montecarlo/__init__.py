"""Monte-Carlo estimation of ProBFT's probabilistic guarantees.

Vectorized (numpy) sampling experiments that replay the randomness of the
VRF sampling layer millions of times, cross-checking the closed forms in
:mod:`repro.analysis` — plus full-protocol estimators that run the actual
discrete-event simulation.

* :mod:`repro.montecarlo.sampling` — low-level vectorized draws.
* :mod:`repro.montecarlo.experiments` — the estimators used by tests and the
  Figure-5 benchmarks.
"""

from .sampling import inclusion_counts, sample_members
from .experiments import (
    MonteCarloResult,
    estimate_prepare_quorum,
    estimate_termination,
    estimate_agreement_violation,
    estimate_protocol_agreement,
    estimate_viewchange_decide,
)

__all__ = [
    "inclusion_counts",
    "sample_members",
    "MonteCarloResult",
    "estimate_prepare_quorum",
    "estimate_termination",
    "estimate_agreement_violation",
    "estimate_protocol_agreement",
    "estimate_viewchange_decide",
]
