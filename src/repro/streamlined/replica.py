"""The streamlined replica.

Epochs are driven by local timers (no synchronizer, no view-change
messages).  All ProBFT defences carry over: votes only count from senders
whose VRF sample provably includes the receiver, and blocks need a
probabilistic quorum of ``q`` distinct voters to notarize.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..config import ProtocolConfig
from ..crypto.context import CryptoContext
from ..crypto.signatures import Signed
from ..net.transport import Transport
from ..quorum.probabilistic import ProbabilisticQuorumCollector
from ..types import ReplicaId, Value
from .block import GENESIS, Block, BlockProposal, BlockVote, vote_seed

FinalizeCallback = Callable[[ReplicaId, List[Block]], None]


class StreamReplica:
    """A correct streamlined-ProBFT replica."""

    def __init__(
        self,
        replica_id: ReplicaId,
        config: ProtocolConfig,
        crypto: CryptoContext,
        transport: Transport,
        epoch_duration: float = 3.0,
        max_epochs: int = 100,
        on_finalize: Optional[FinalizeCallback] = None,
        payload_fn: Optional[Callable[[int], Value]] = None,
    ) -> None:
        self.id = replica_id
        self.config = config
        self._crypto = crypto
        self._transport = transport
        self._epoch_duration = epoch_duration
        self._max_epochs = max_epochs
        self._on_finalize = on_finalize
        self._payload_fn = payload_fn or (
            lambda epoch: f"block-e{epoch}-r{self.id}".encode()
        )

        genesis_hash = GENESIS.hash()
        self._blocks: Dict[bytes, Block] = {genesis_hash: GENESIS}
        self._notarized: Set[bytes] = {genesis_hash}
        self._votes = ProbabilisticQuorumCollector(config.q)
        self._voted_epochs: Set[int] = set()
        self._proposed_epochs: Set[int] = set()
        self._current_epoch = 0
        self._finalized: List[Block] = [GENESIS]

    # ------------------------------------------------------------------
    @property
    def current_epoch(self) -> int:
        return self._current_epoch

    @property
    def finalized_chain(self) -> List[Block]:
        return list(self._finalized)

    @property
    def finalized_height(self) -> int:
        return len(self._finalized) - 1  # genesis doesn't count

    def notarized_hashes(self) -> Set[bytes]:
        return set(self._notarized)

    def start(self) -> None:
        self._enter_epoch(1)

    def stop(self) -> None:
        self._current_epoch = self._max_epochs + 1  # timers become no-ops

    # ------------------------------------------------------------------
    # Epoch clock
    # ------------------------------------------------------------------
    def _enter_epoch(self, epoch: int) -> None:
        if epoch > self._max_epochs:
            return
        self._current_epoch = epoch
        if self._leader(epoch) == self.id:
            self._propose(epoch)
        self._transport.schedule(
            self._epoch_duration, lambda e=epoch: self._epoch_timeout(e)
        )

    def _epoch_timeout(self, epoch: int) -> None:
        if epoch == self._current_epoch:
            self._enter_epoch(epoch + 1)

    def _leader(self, epoch: int) -> ReplicaId:
        return (epoch - 1) % self.config.n

    # ------------------------------------------------------------------
    # Proposing and voting
    # ------------------------------------------------------------------
    def _longest_notarized_tip(self) -> bytes:
        """Hash of the tip of (a) longest notarized chain; ties break on the
        higher epoch then lexicographic hash, so all replicas with the same
        notarized set pick the same tip."""
        best: Tuple[int, int, bytes] = (0, 0, GENESIS.hash())
        for block_hash in self._notarized:
            length = self._chain_length(block_hash)
            block = self._blocks[block_hash]
            key = (length, block.epoch, block_hash)
            if key > best:
                best = key
        return best[2]

    def _chain_length(self, block_hash: bytes) -> int:
        length = 0
        cursor = block_hash
        genesis = GENESIS.hash()
        while cursor != genesis:
            block = self._blocks.get(cursor)
            if block is None:
                return -1  # unknown ancestry: treat as non-extendable
            length += 1
            cursor = block.parent
        return length

    def _propose(self, epoch: int) -> None:
        if epoch in self._proposed_epochs:
            return
        self._proposed_epochs.add(epoch)
        parent = self._longest_notarized_tip()
        block = Block(epoch=epoch, parent=parent, payload=self._payload_fn(epoch))
        signed = self._crypto.signatures.sign(self.id, BlockProposal(block=block))
        self._transport.broadcast(signed)
        self._deliver_local(signed)

    def on_message(self, src: ReplicaId, message: object) -> None:
        if not isinstance(message, Signed):
            return
        payload = message.payload
        if isinstance(payload, BlockProposal):
            self._handle_proposal(message)
        elif isinstance(payload, BlockVote):
            self._handle_vote(message)

    def _handle_proposal(self, signed: Signed) -> None:
        if not self._crypto.signatures.verify(signed):
            return
        proposal: BlockProposal = signed.payload
        block = proposal.block
        epoch = block.epoch
        if epoch != self._current_epoch or epoch in self._voted_epochs:
            return
        if signed.signer != self._leader(epoch):
            return
        block_hash = block.hash()
        self._blocks.setdefault(block_hash, block)
        # Streamlet vote rule: extend (one of) the longest notarized chains.
        if block.parent not in self._notarized:
            return
        if self._chain_length(block.parent) < self._chain_length(
            self._longest_notarized_tip()
        ):
            return
        self._voted_epochs.add(epoch)
        sample = self._crypto.vrf.prove(
            self.id,
            vote_seed(epoch, self.config.seed_domain),
            self.config.sample_size,
        )
        vote = BlockVote(block_hash=block_hash, epoch=epoch, sample=sample)
        signed_vote = self._crypto.signatures.sign(self.id, vote)
        others = [dst for dst in sample.sample if dst != self.id]
        self._transport.multicast(others, signed_vote)
        if self.id in sample.sample:
            self._deliver_local(signed_vote)

    def _handle_vote(self, signed: Signed) -> None:
        if not self._crypto.signatures.verify(signed):
            return
        vote: BlockVote = signed.payload
        if self.id not in vote.sample.sample:
            return
        if not self._crypto.vrf.verify(
            signed.signer,
            vote_seed(vote.epoch, self.config.seed_domain),
            self.config.sample_size,
            vote.sample,
        ):
            return
        if self._votes.add(vote.block_hash, signed.signer, signed):
            self._notarize(vote.block_hash)

    # ------------------------------------------------------------------
    # Notarization and finalization
    # ------------------------------------------------------------------
    def _notarize(self, block_hash: bytes) -> None:
        if block_hash in self._notarized or block_hash not in self._blocks:
            return
        self._notarized.add(block_hash)
        self._try_finalize(block_hash)

    def _try_finalize(self, tip_hash: bytes) -> None:
        """Streamlet rule: three notarized blocks with consecutive epochs
        finalize the chain up to the middle one."""
        tip = self._blocks[tip_hash]
        mid = self._blocks.get(tip.parent)
        if mid is None or tip.parent not in self._notarized:
            return
        low = self._blocks.get(mid.parent)
        if low is None or mid.parent not in self._notarized:
            return
        if not (tip.epoch == mid.epoch + 1 and mid.epoch == low.epoch + 1):
            return
        chain = self._chain_to(mid)
        if chain is None or len(chain) <= len(self._finalized):
            return
        self._finalized = chain
        if self._on_finalize is not None:
            self._on_finalize(self.id, self.finalized_chain)

    def _chain_to(self, block: Block) -> Optional[List[Block]]:
        chain: List[Block] = []
        cursor: Optional[Block] = block
        genesis_hash = GENESIS.hash()
        while cursor is not None:
            chain.append(cursor)
            if cursor.hash() == genesis_hash:
                chain.reverse()
                return chain
            cursor = self._blocks.get(cursor.parent)
        return None

    def _deliver_local(self, message: Signed) -> None:
        self._transport.schedule(0.0, lambda: self.on_message(self.id, message))
