"""Blocks and chains for streamlined ProBFT."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto.hashing import digest
from ..messages.base import CanonicalMessage
from ..types import Value


@dataclass(frozen=True)
class Block(CanonicalMessage):
    """A chain block: ``(epoch, parent hash, payload)``.

    ``epoch == 0`` is reserved for the genesis block.
    """

    epoch: int
    parent: bytes  # hash of the parent block
    payload: Value

    def hash(self) -> bytes:
        return digest("stream-block", self.epoch, self.parent, self.payload)


#: The common ancestor of everything; notarized by definition.
GENESIS = Block(epoch=0, parent=b"\x00" * 32, payload=b"genesis")


@dataclass(frozen=True)
class BlockProposal(CanonicalMessage):
    """Leader's epoch proposal (broadcast)."""

    TYPE = "StreamProposal"

    block: Block


@dataclass(frozen=True)
class BlockVote(CanonicalMessage):
    """A vote, multicast to the sender's VRF sample for the epoch."""

    TYPE = "StreamVote"

    block_hash: bytes
    epoch: int
    sample: object  # VRFOutput

    def canonical(self):
        return ("stream-vote", self.block_hash, self.epoch, self.sample)


def vote_seed(epoch: int, domain: str = "") -> str:
    """VRF seed for epoch votes (mirrors ``phase_seed``)."""
    base = f"{epoch}||stream-vote"
    return f"{domain}#{base}" if domain else base
