"""Streamlined ProBFT — the paper's second future-work direction (§7).

The paper closes: "we are particularly interested in leveraging ProBFT for
constructing [...] a streamlined blockchain consensus, eliminating the need
for a view-change sub-protocol."  This package is a working prototype of
that idea: a Streamlet-style chained protocol whose notarization quorums are
ProBFT's probabilistic quorums fed by VRF recipient samples.

Protocol sketch (per epoch, fixed duration, round-robin leader):

1. the epoch leader proposes a block extending the longest notarized chain
   it knows;
2. every replica votes (once per epoch) for the first valid such proposal,
   multicasting its vote to a VRF-chosen sample of ``o·q`` replicas with
   seed ``epoch ‖ "vote"``;
3. a block seen with ``q = ⌈l√n⌉`` votes is *notarized*;
4. three notarized blocks in consecutive epochs finalize the chain up to the
   middle block (Streamlet's finalization rule).

There is **no view-change sub-protocol**: a silent/Byzantine leader simply
wastes its epoch, and the next epoch proceeds off local clocks.  Safety is
probabilistic exactly as in ProBFT — quorum intersection holds w.h.p. —
composed with Streamlet's chain reasoning.

This is an exploratory extension (the paper gives no specification); it is
implemented, tested for safety/liveness in the synchronous setting, and
benchmarked, but is not part of the paper's evaluated claims.
"""

from .block import Block, GENESIS
from .replica import StreamReplica
from .deployment import StreamDeployment

__all__ = ["Block", "GENESIS", "StreamReplica", "StreamDeployment"]
