"""Deployment wiring for streamlined ProBFT."""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from ..config import ProtocolConfig
from ..crypto.context import CryptoContext
from ..crypto.hashing import digest
from ..net.latency import ConstantLatency, LatencyModel
from ..net.network import Network
from ..net.simulator import Simulator
from ..net.transport import Transport
from ..types import ReplicaId
from .block import Block
from .replica import StreamReplica


class StreamDeployment:
    """n streamlined replicas; Byzantine members are silent (wasted epochs)."""

    def __init__(
        self,
        config: ProtocolConfig,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        epoch_duration: float = 3.0,
        max_epochs: int = 30,
        byzantine_ids: Sequence[ReplicaId] = (),
        crypto: Optional[CryptoContext] = None,
    ) -> None:
        self.config = config
        self.max_epochs = max_epochs
        self.sim = Simulator()
        self.network = Network(
            self.sim,
            config.n,
            latency=latency if latency is not None else ConstantLatency(1.0),
        )
        self.crypto = crypto if crypto is not None else CryptoContext.pooled(
            config.n, master_seed=digest("stream-deployment", seed)
        )
        if len(byzantine_ids) > config.f:
            raise ValueError("too many Byzantine replicas")
        self.byzantine_ids: FrozenSet[ReplicaId] = frozenset(byzantine_ids)
        self.finalizations: Dict[ReplicaId, List[Block]] = {}

        self.replicas: Dict[ReplicaId, StreamReplica] = {}
        for r in range(config.n):
            if r in self.byzantine_ids:
                self.network.register(r, lambda _s, _m: None)
                continue
            transport = Transport(self.network, r)
            replica = StreamReplica(
                replica_id=r,
                config=config,
                crypto=self.crypto,
                transport=transport,
                epoch_duration=epoch_duration,
                max_epochs=max_epochs,
                on_finalize=self._record_finalize,
            )
            self.network.register(r, replica.on_message)
            self.replicas[r] = replica
        self._started = False

    def _record_finalize(self, replica: ReplicaId, chain: List[Block]) -> None:
        self.finalizations[replica] = chain

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for replica in self.replicas.values():
            replica.start()

    def run(
        self,
        min_finalized_height: int = 1,
        max_time: Optional[float] = None,
        max_events: int = 20_000_000,
    ) -> "StreamDeployment":
        """Run until every correct replica finalized at least the given
        height (or the epoch/time budget runs out)."""
        self.start()

        def done() -> bool:
            return all(
                r.finalized_height >= min_finalized_height
                for r in self.replicas.values()
            )

        self.sim.run(until=max_time, max_events=max_events, stop_when=done)
        return self

    # ------------------------------------------------------------------
    @property
    def correct_ids(self) -> FrozenSet[ReplicaId]:
        return frozenset(self.replicas)

    def min_finalized_height(self) -> int:
        return min(r.finalized_height for r in self.replicas.values())

    def chains_consistent(self) -> bool:
        """Every pair of finalized chains is prefix-compatible."""
        chains = [
            tuple(b.hash() for b in replica.finalized_chain)
            for replica in self.replicas.values()
        ]
        for a in chains:
            for b in chains:
                shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
                if longer[: len(shorter)] != shorter:
                    return False
        return True
