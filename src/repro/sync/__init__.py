"""View synchronization (the synchronizer abstraction of Bravo et al. [6]).

ProBFT (like single-shot PBFT in [6]) outsources view management to a
synchronizer that emits ``newView(v)`` notifications; after GST all correct
replicas eventually overlap in the same view long enough to decide.

* :mod:`repro.sync.timeouts` — timeout policies (fixed / linear / exponential).
* :mod:`repro.sync.synchronizer` — a wish-based synchronizer: replicas
  broadcast ``Wish(v)`` on timeout, relay on ``f+1`` wishes, and enter a view
  on ``2f+1`` wishes (Bracha-style amplification).
"""

from .timeouts import TimeoutPolicy, FixedTimeout, LinearTimeout, ExponentialTimeout
from .synchronizer import ViewSynchronizer, Wish

__all__ = [
    "TimeoutPolicy",
    "FixedTimeout",
    "LinearTimeout",
    "ExponentialTimeout",
    "ViewSynchronizer",
    "Wish",
]
