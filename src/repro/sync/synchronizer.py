"""Wish-based view synchronizer.

Implements the synchronizer abstraction of Bravo, Chockler & Gotsman [6] with
Bracha-style amplification:

* when a replica's view timer expires it broadcasts ``Wish(v+1)``;
* on seeing wishes for a view ``v' > current`` from ``f+1`` distinct replicas
  it echoes ``Wish(v')`` (at least one wisher is correct, so joining is safe);
* on seeing wishes from ``2f+1`` distinct replicas it *enters* ``v'`` and
  notifies the protocol via ``newView(v')``.

Per-sender we track only the *highest* view wished, so the state is O(n).
After GST, if any correct replica is stuck, timers eventually fire, wishes
amplify, and all correct replicas converge to a common view with a timeout
long enough to decide (given a growing :class:`TimeoutPolicy`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..crypto.signatures import SignatureScheme, Signed
from ..messages.base import CanonicalMessage
from ..net.transport import Transport
from ..types import ReplicaId, View
from .timeouts import ExponentialTimeout, TimeoutPolicy


@dataclass(frozen=True)
class Wish(CanonicalMessage):
    """A signed declaration "I want to enter view ``view``".

    ``domain`` scopes the wish to one consensus instance (SMR slots).
    """

    TYPE = "Wish"

    view: View
    domain: str = ""


class ViewSynchronizer:
    """Per-replica synchronizer endpoint.

    Args:
        transport: the replica's network endpoint.
        f: fault threshold (relay at ``f+1`` wishes, enter at ``2f+1``).
        signatures: signing service (wishes are signed like everything else).
        on_new_view: protocol callback, the paper's ``newView(v)`` upcall.
        timeout_policy: per-view duration budget.

    The synchronizer starts in view 0 (no view); call :meth:`start` to enter
    view 1 locally and arm the first timer.
    """

    def __init__(
        self,
        transport: Transport,
        f: int,
        signatures: SignatureScheme,
        on_new_view: Callable[[View], None],
        timeout_policy: Optional[TimeoutPolicy] = None,
        domain: str = "",
    ) -> None:
        self._transport = transport
        self._f = f
        self._signatures = signatures
        self._on_new_view = on_new_view
        self._timeouts = timeout_policy or ExponentialTimeout()
        self._domain = domain
        self._current_view: View = 0
        self._max_wish_sent: View = 0
        self._highest_wish: Dict[ReplicaId, View] = {}
        self._timer = None
        self._stopped = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def current_view(self) -> View:
        return self._current_view

    def start(self) -> None:
        """Enter view 1 and arm its timer (every replica calls this at t=0)."""
        self._enter_view(1)

    def stop(self) -> None:
        """Stop all timers (simulation teardown)."""
        self._stopped = True
        self._cancel_timer()

    def on_wish(self, src: ReplicaId, signed: Signed) -> None:
        """Handle a received (signed) wish message."""
        if self._stopped or not self._signatures.verify(signed):
            return
        wish = signed.payload
        if not isinstance(wish, Wish) or signed.signer != src:
            return
        if wish.domain != self._domain:
            return
        previous = self._highest_wish.get(src, 0)
        if wish.view <= previous:
            return
        self._highest_wish[src] = wish.view
        self._react_to_wishes()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _react_to_wishes(self) -> None:
        """Apply the f+1 relay and 2f+1 enter rules for the best candidate."""
        relay_view = self._kth_highest_wish(self._f + 1)
        if relay_view is not None and relay_view > self._max_wish_sent:
            self._send_wish(relay_view)
        enter_view = self._kth_highest_wish(2 * self._f + 1)
        if enter_view is not None and enter_view > self._current_view:
            self._enter_view(enter_view)

    def _kth_highest_wish(self, k: int) -> Optional[View]:
        """Largest view wished-for by at least ``k`` distinct replicas."""
        if len(self._highest_wish) < k:
            return None
        views = sorted(self._highest_wish.values(), reverse=True)
        return views[k - 1]

    def _send_wish(self, view: View) -> None:
        self._max_wish_sent = view
        signed = self._signatures.sign(
            self._transport.replica, Wish(view=view, domain=self._domain)
        )
        # A wish counts for its own sender too.
        mine = self._highest_wish.get(self._transport.replica, 0)
        if view > mine:
            self._highest_wish[self._transport.replica] = view
        self._transport.broadcast(signed)
        self._react_to_wishes()

    def _enter_view(self, view: View) -> None:
        self._current_view = view
        self._cancel_timer()
        duration = self._timeouts.timeout_for(view)
        self._timer = self._transport.schedule(
            duration, lambda v=view: self._on_timeout(v)
        )
        self._on_new_view(view)

    def _on_timeout(self, view: View) -> None:
        if self._stopped or view != self._current_view:
            return
        wish_for = self._current_view + 1
        if wish_for > self._max_wish_sent:
            self._send_wish(wish_for)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
