"""Timeout policies for the view synchronizer.

The communication bound Δ is *unknown* to the protocol, so view timeouts must
grow: after GST there is eventually a view whose timeout exceeds the time
consensus needs, and every later correct-leader view decides.
"""

from __future__ import annotations

import abc

from ..types import View


class TimeoutPolicy(abc.ABC):
    """Maps a view number to that view's duration budget."""

    @abc.abstractmethod
    def timeout_for(self, view: View) -> float:
        """Time a replica waits in ``view`` before wishing for ``view + 1``."""


class FixedTimeout(TimeoutPolicy):
    """Constant timeout — only correct when Δ is effectively known (tests)."""

    def __init__(self, value: float = 10.0) -> None:
        if value <= 0:
            raise ValueError(f"timeout must be positive, got {value}")
        self._value = value

    def timeout_for(self, view: View) -> float:
        return self._value


class LinearTimeout(TimeoutPolicy):
    """``base + (view - 1) * increment`` — grows without bound, gently."""

    def __init__(self, base: float = 10.0, increment: float = 5.0) -> None:
        if base <= 0 or increment < 0:
            raise ValueError(f"invalid base={base} increment={increment}")
        self._base = base
        self._increment = increment

    def timeout_for(self, view: View) -> float:
        return self._base + (view - 1) * self._increment


class ExponentialTimeout(TimeoutPolicy):
    """``base * factor^(view - 1)``, capped — the standard practical choice."""

    def __init__(
        self, base: float = 10.0, factor: float = 2.0, cap: float = 1e6
    ) -> None:
        if base <= 0 or factor < 1 or cap < base:
            raise ValueError(
                f"invalid base={base} factor={factor} cap={cap}"
            )
        self._base = base
        self._factor = factor
        self._cap = cap

    def timeout_for(self, view: View) -> float:
        return min(self._base * self._factor ** (view - 1), self._cap)
