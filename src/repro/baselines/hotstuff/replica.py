"""Single-shot basic HotStuff replica.

Basic HotStuff [58] runs four leader-driven phases per view::

    NewView  : replicas -> leader   (carry highest prepare-QC)
    PREPARE  : leader proposal -> all ; votes -> leader
    PRE-COMMIT: leader QC -> all     ; votes -> leader
    COMMIT   : leader QC -> all      ; votes -> leader (replicas lock)
    DECIDE   : leader QC -> all      ; replicas decide

Message complexity is linear (~8(n−1) per view including NewView) but the
good case takes ~8 communication steps versus PBFT/ProBFT's 3 — the exact
trade-off Figure 1 visualises.

Quorum certificates here are tuples of ``n − f`` signed votes; a production
implementation would aggregate them with threshold signatures, which changes
bit complexity but not the message counts the paper compares.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ...config import ProtocolConfig
from ...crypto.context import CryptoContext
from ...crypto.signatures import Signed
from ...core.leader import leader_of_view
from ...messages.hotstuff import (
    HsNewView,
    HsPhase,
    HsProposal,
    HsQuorumCert,
    HsVote,
    HsVotePayload,
)
from ...net.transport import Transport
from ...quorum.probabilistic import QuorumCollector
from ...sync.synchronizer import ViewSynchronizer, Wish
from ...sync.timeouts import TimeoutPolicy
from ...types import Decision, ReplicaId, Value, View

DecisionCallback = Callable[[Decision], None]

FUTURE_VIEW_WINDOW = 2
FUTURE_BUFFER_LIMIT = 8192


class HotStuffReplica:
    """A correct single-shot HotStuff replica."""

    def __init__(
        self,
        replica_id: ReplicaId,
        config: ProtocolConfig,
        crypto: CryptoContext,
        transport: Transport,
        my_value: Value,
        timeout_policy: Optional[TimeoutPolicy] = None,
        on_decide: Optional[DecisionCallback] = None,
    ) -> None:
        self.id = replica_id
        self.config = config
        self._crypto = crypto
        self._transport = transport
        self._my_value = my_value
        self._on_decide = on_decide

        self._sync = ViewSynchronizer(
            transport=transport,
            f=config.f,
            signatures=crypto.signatures,
            on_new_view=self._on_new_view,
            timeout_policy=timeout_policy,
        )

        self._cur_view: View = 0
        self._decision: Optional[Decision] = None
        #: Highest prepare-QC this replica has seen (its "safety" anchor).
        self._prepare_qc: Optional[HsQuorumCert] = None
        #: Locked QC (set in COMMIT phase); single-shot: informational.
        self._locked_qc: Optional[HsQuorumCert] = None
        #: Votes this replica already cast, keyed by (view, phase).
        self._voted: Set[Tuple[View, str]] = set()

        # Leader-side state.
        self._new_view_collector: Dict[View, QuorumCollector] = {}
        self._vote_collectors: Dict[Tuple[View, str], QuorumCollector] = {}
        self._leader_value: Dict[View, Value] = {}
        self._phase_driven: Set[Tuple[View, str]] = set()

        self._future_buffer: Dict[View, List[Tuple[ReplicaId, Signed]]] = {}

    # ------------------------------------------------------------------
    @property
    def decision(self) -> Optional[Decision]:
        return self._decision

    @property
    def current_view(self) -> View:
        return self._cur_view

    def start(self) -> None:
        self._sync.start()

    def stop(self) -> None:
        self._sync.stop()

    @property
    def quorum(self) -> int:
        """HotStuff quorum: ``n − f`` votes (≥ 2f+1 under n=3f+1)."""
        return self.config.n - self.config.f

    def on_message(self, src: ReplicaId, message: object) -> None:
        if not isinstance(message, Signed):
            return
        payload = message.payload
        if isinstance(payload, Wish):
            self._sync.on_wish(src, message)
            return
        view = self._view_of(payload)
        if view is None or self._cur_view == 0 or view < self._cur_view:
            return
        if view > self._cur_view:
            if view <= self._cur_view + FUTURE_VIEW_WINDOW:
                bucket = self._future_buffer.setdefault(view, [])
                if len(bucket) < FUTURE_BUFFER_LIMIT:
                    bucket.append((src, message))
            return
        if isinstance(payload, HsNewView):
            self._handle_new_view_msg(src, message)
        elif isinstance(payload, HsProposal):
            self._handle_proposal(src, message)
        elif isinstance(payload, HsVote):
            self._handle_vote(src, message)

    @staticmethod
    def _view_of(payload: object) -> Optional[View]:
        if isinstance(payload, (HsNewView, HsProposal)):
            return payload.view
        if isinstance(payload, HsVote):
            return payload.view
        return None

    # ------------------------------------------------------------------
    def _on_new_view(self, view: View) -> None:
        self._cur_view = view
        for table in (self._new_view_collector,):
            for old in [v for v in table if v < view]:
                del table[old]
        for old in [k for k in self._vote_collectors if k[0] < view]:
            del self._vote_collectors[old]
        # Every replica reports to the new leader (including in view 1 —
        # the leader needs n−f NewView messages to know the high QC).
        msg = HsNewView(view=view, prepare_qc=self._prepare_qc)
        self._send_or_local(self._leader(view), self._sign(msg))
        for src, message in self._future_buffer.pop(view, []):
            self._transport.schedule(
                0.0, lambda s=src, m=message: self.on_message(s, m)
            )

    def _handle_new_view_msg(self, src: ReplicaId, signed: Signed) -> None:
        view = self._cur_view
        if self.id != self._leader(view):
            return
        if (view, HsPhase.PREPARE.value) in self._phase_driven:
            return
        if not self._crypto.signatures.verify(signed):
            return
        msg: HsNewView = signed.payload
        if msg.prepare_qc is not None and not self._verify_qc(msg.prepare_qc):
            return
        collector = self._new_view_collector.setdefault(
            view, QuorumCollector(self.quorum)
        )
        if collector.add(view, signed.signer, signed):
            quorum = collector.quorum_messages(view)
            high_qc = self._highest_qc(quorum)
            value = high_qc.value if high_qc is not None else self._my_value
            self._leader_value[view] = value
            self._drive_phase(view, HsPhase.PREPARE, value, high_qc)

    @staticmethod
    def _highest_qc(new_view_msgs) -> Optional[HsQuorumCert]:
        best: Optional[HsQuorumCert] = None
        for signed in new_view_msgs:
            qc = signed.payload.prepare_qc
            if qc is not None and (best is None or qc.view > best.view):
                best = qc
        return best

    def _drive_phase(
        self,
        view: View,
        phase: HsPhase,
        value: Value,
        justify: Optional[HsQuorumCert],
    ) -> None:
        """Leader: broadcast the proposal that starts ``phase``."""
        self._phase_driven.add((view, phase.value))
        proposal = HsProposal(
            view=view, value=value, phase=phase.value, justify=justify
        )
        signed = self._sign(proposal)
        self._transport.broadcast(signed)
        self._deliver_local(signed)

    # ------------------------------------------------------------------
    def _handle_proposal(self, src: ReplicaId, signed: Signed) -> None:
        if not self._crypto.signatures.verify(signed):
            return
        proposal: HsProposal = signed.payload
        view = proposal.view
        if signed.signer != self._leader(view):
            return
        try:
            phase = HsPhase(proposal.phase)
        except ValueError:
            return
        if not self._proposal_safe(proposal, phase):
            return

        if phase is HsPhase.PRE_COMMIT and proposal.justify is not None:
            self._prepare_qc = proposal.justify
        if phase is HsPhase.COMMIT and proposal.justify is not None:
            self._locked_qc = proposal.justify
        if phase is HsPhase.DECIDE:
            self._decide(view, proposal.value)
            return

        key = (view, phase.value)
        if key in self._voted:
            return
        self._voted.add(key)
        vote_payload = self._sign(
            HsVotePayload(view=view, value=proposal.value, phase=phase.value)
        )
        vote = HsVote(vote=vote_payload)
        self._send_or_local(self._leader(view), self._sign(vote))

    def _proposal_safe(self, proposal: HsProposal, phase: HsPhase) -> bool:
        """Phase-specific safety: the justify QC must match the proposal."""
        if phase is HsPhase.PREPARE:
            if proposal.justify is None:
                # No justification is acceptable only to unlocked replicas
                # (nobody proved anything was prepared earlier).
                return self._locked_qc is None
            if not self._verify_qc(proposal.justify):
                return False
            if proposal.justify.phase != HsPhase.PREPARE.value:
                return False
            if proposal.value != proposal.justify.value:
                return False
            # Unlock rule: the justify must be at least as recent as our lock.
            return (
                self._locked_qc is None
                or proposal.justify.view >= self._locked_qc.view
            )
        if proposal.justify is None:
            return False
        expected_prev = {
            HsPhase.PRE_COMMIT: HsPhase.PREPARE,
            HsPhase.COMMIT: HsPhase.PRE_COMMIT,
            HsPhase.DECIDE: HsPhase.COMMIT,
        }[phase]
        return (
            self._verify_qc(proposal.justify)
            and proposal.justify.matches(
                proposal.view, proposal.value, expected_prev
            )
        )

    def _handle_vote(self, src: ReplicaId, signed: Signed) -> None:
        view = self._cur_view
        if self.id != self._leader(view):
            return
        if not self._crypto.signatures.verify(signed):
            return
        vote_msg: HsVote = signed.payload
        inner = vote_msg.vote
        if not self._crypto.signatures.verify(inner) or inner.signer != signed.signer:
            return
        payload: HsVotePayload = inner.payload
        if payload.view != view:
            return
        try:
            phase = HsPhase(payload.phase)
        except ValueError:
            return
        if payload.value != self._leader_value.get(view):
            return
        key = (view, phase.value)
        collector = self._vote_collectors.setdefault(
            key, QuorumCollector(self.quorum)
        )
        if collector.add(payload.value, inner.signer, inner):
            votes = collector.quorum_messages(payload.value)
            qc = HsQuorumCert(
                view=view, value=payload.value, phase=phase.value, votes=votes
            )
            next_phase = phase.next_phase()
            if next_phase is not None:
                self._drive_phase(view, next_phase, payload.value, qc)

    def _verify_qc(self, qc: HsQuorumCert) -> bool:
        seen = set()
        for vote in qc.votes:
            if not self._crypto.signatures.verify(vote):
                return False
            payload = vote.payload
            if not isinstance(payload, HsVotePayload):
                return False
            if (
                payload.view != qc.view
                or payload.value != qc.value
                or payload.phase != qc.phase
            ):
                return False
            if vote.signer in seen:
                return False
            seen.add(vote.signer)
        return len(seen) >= self.quorum

    def _decide(self, view: View, value: Value) -> None:
        if self._decision is not None:
            return
        self._decision = Decision(
            replica=self.id, value=value, view=view, time=self._transport.now
        )
        if self._on_decide is not None:
            self._on_decide(self._decision)

    # ------------------------------------------------------------------
    def _leader(self, view: View) -> ReplicaId:
        return leader_of_view(view, self.config.n)

    def _sign(self, payload: object) -> Signed:
        return self._crypto.signatures.sign(self.id, payload)

    def _send_or_local(self, dst: ReplicaId, message: Signed) -> None:
        if dst == self.id:
            self._deliver_local(message)
        else:
            self._transport.send(dst, message)

    def _deliver_local(self, message: Signed) -> None:
        self._transport.schedule(0.0, lambda: self.on_message(self.id, message))
