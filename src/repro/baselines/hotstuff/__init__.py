"""Single-shot basic HotStuff baseline."""

from .replica import HotStuffReplica
from .protocol import HotStuffDeployment

__all__ = ["HotStuffReplica", "HotStuffDeployment"]
