"""HotStuff analogues of the ProBFT equivocation and flooding attacks.

HotStuff is leader-driven: replicas vote *to* the leader, so an equivocating
view leader is strictly stronger here than in the broadcast protocols — it
both sends the conflicting proposals *and* privately tallies the resulting
votes, trying to mint two conflicting quorum certificates.

* :class:`EquivocatingHsLeader` — the view-1 leader sends a conflicting
  PREPARE-phase :class:`~repro.messages.hotstuff.HsProposal` per split group
  (correctly signed; ``justify=None`` is legal in view 1), collects the
  returned votes, and drives conflicting PRE-COMMITs only if *every* plan
  value reaches a valid QC.  With honest majority that never happens: the
  groups' vote counts sum to ``n + f < 2(n − f)``, so at most one value can
  reach the ``n − f`` quorum — the leader stalls instead, degrading
  liveness but never safety.  It also broadcasts a forged DECIDE proposal
  whose certificate carries only the ``f`` colluder votes; replicas must
  reject it in ``_verify_qc``.
* :class:`HsDoubleVoter` — colluding followers voting for *every* plan value
  (votes go only to the Byzantine leader, so no evidence ever reaches a
  correct replica).
* :class:`HsFloodingReplica` — sprays proposals from a non-leader, forged
  single-vote certificates, fake-value votes, and duplicates of one valid
  vote; leader checks and vote collectors must reject or dedup all of it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ...adversary.equivocation import SplitStrategy, optimal_split
from ...config import ProtocolConfig
from ...crypto.context import CryptoContext
from ...crypto.signatures import Signed
from ...messages.hotstuff import (
    HsPhase,
    HsProposal,
    HsQuorumCert,
    HsVote,
    HsVotePayload,
)
from ...net.transport import Transport
from ...types import ReplicaId, Value, View


class EquivocatingHsLeader:
    """A Byzantine view-1 leader proposing a different value per split group."""

    def __init__(
        self,
        replica_id: ReplicaId,
        config: ProtocolConfig,
        crypto: CryptoContext,
        transport: Transport,
        strategy: SplitStrategy,
        colluders: Sequence[ReplicaId] = (),
        attack_view: View = 1,
        forge_decide: bool = True,
    ) -> None:
        if attack_view != 1:
            # Later views would need a valid justify QC, which cannot be
            # forged; view 1 accepts ``justify=None`` from unlocked replicas.
            raise ValueError("EquivocatingHsLeader only attacks view 1")
        self.id = replica_id
        self.config = config
        self._crypto = crypto
        self._transport = transport
        self._strategy = strategy
        self._colluders = tuple(colluders)
        self._attack_view = attack_view
        self._forge_decide = forge_decide
        self._quorum = config.n - config.f
        #: Valid PREPARE votes received, per plan value, keyed by signer.
        self._votes: Dict[Value, Dict[ReplicaId, Signed]] = {}
        self._escalated = False

    def start(self) -> None:
        view = self._attack_view
        for value, targets in self._strategy.assignments:
            proposal = HsProposal(
                view=view, value=value, phase=HsPhase.PREPARE.value, justify=None
            )
            signed = self._crypto.signatures.sign(self.id, proposal)
            for dst in sorted(targets):
                if dst != self.id:
                    self._transport.send(dst, signed)
        if self._forge_decide:
            self._send_forged_decide(view)

    def _send_forged_decide(self, view: View) -> None:
        """A DECIDE proposal certified by the colluders alone (f < n − f
        votes): every correct replica must reject it in ``_verify_qc``."""
        value = self._strategy.values[0]
        votes = [
            self._sign_as(
                signer,
                HsVotePayload(
                    view=view, value=value, phase=HsPhase.COMMIT.value
                ),
            )
            for signer in (self.id, *self._colluders)
        ]
        qc = HsQuorumCert(
            view=view, value=value, phase=HsPhase.COMMIT.value, votes=tuple(votes)
        )
        decide = HsProposal(
            view=view, value=value, phase=HsPhase.DECIDE.value, justify=qc
        )
        signed = self._crypto.signatures.sign(self.id, decide)
        for dst in range(self.config.n):
            if dst != self.id:
                self._transport.send(dst, signed)

    def _sign_as(self, signer: ReplicaId, payload: object) -> Signed:
        """Sign with a corrupted replica's key (faulty replicas share keys)."""
        key = self._crypto.registry.key_pair(signer).private_key
        return self._crypto.signatures.sign_with(key, signer, payload)

    def on_message(self, src: ReplicaId, message: object) -> None:
        if self._escalated or not isinstance(message, Signed):
            return
        payload = message.payload
        if not isinstance(payload, HsVote):
            return
        inner = payload.vote
        vote: HsVotePayload = inner.payload
        if not isinstance(vote, HsVotePayload):
            return
        if vote.view != self._attack_view or vote.phase != HsPhase.PREPARE.value:
            return
        if not self._crypto.signatures.verify(inner):
            return
        self._votes.setdefault(vote.value, {})[inner.signer] = inner
        self._try_escalate()

    def _try_escalate(self) -> None:
        """Drive conflicting PRE-COMMITs iff *every* value has a valid QC.

        The quorum arithmetic (pinned by ``tests/test_split_properties.py``)
        makes this unreachable with an honest majority; the branch exists so
        the attack is complete, not because it can fire under f < n/3.
        """
        if any(
            len(self._votes.get(value, {})) < self._quorum
            for value in self._strategy.values
        ):
            return
        self._escalated = True
        for value, targets in self._strategy.assignments:
            votes = tuple(list(self._votes[value].values())[: self._quorum])
            qc = HsQuorumCert(
                view=self._attack_view,
                value=value,
                phase=HsPhase.PREPARE.value,
                votes=votes,
            )
            proposal = HsProposal(
                view=self._attack_view,
                value=value,
                phase=HsPhase.PRE_COMMIT.value,
                justify=qc,
            )
            signed = self._crypto.signatures.sign(self.id, proposal)
            for dst in sorted(targets):
                if dst != self.id:
                    self._transport.send(dst, signed)


class HsDoubleVoter:
    """A colluding follower voting for every plan value (to the leader only)."""

    def __init__(
        self,
        replica_id: ReplicaId,
        config: ProtocolConfig,
        crypto: CryptoContext,
        transport: Transport,
        strategy: SplitStrategy,
        leader_id: ReplicaId,
        attack_view: View = 1,
    ) -> None:
        self.id = replica_id
        self.config = config
        self._crypto = crypto
        self._transport = transport
        self._strategy = strategy
        self._leader_id = leader_id
        self._attack_view = attack_view
        self._fired = False

    def start(self) -> None:
        pass

    def on_message(self, src: ReplicaId, message: object) -> None:
        if self._fired or not isinstance(message, Signed):
            return
        payload = message.payload
        if not isinstance(payload, HsProposal):
            return
        if payload.view != self._attack_view:
            return
        if payload.phase != HsPhase.PREPARE.value:
            return
        if message.signer != self._leader_id:
            return
        self._fired = True
        for value in self._strategy.values:
            inner = self._crypto.signatures.sign(
                self.id,
                HsVotePayload(
                    view=self._attack_view,
                    value=value,
                    phase=HsPhase.PREPARE.value,
                ),
            )
            vote = self._crypto.signatures.sign(self.id, HsVote(vote=inner))
            self._transport.send(self._leader_id, vote)


class HsFloodingReplica:
    """Sends a burst of invalid HotStuff traffic on the first proposal.

    Attack vectors exercised:

    * non-leader proposals (``signed.signer != leader(view)`` rejects them);
    * a forged DECIDE whose certificate holds one self-vote;
    * fake-value votes to the leader (``value != leader_value`` rejects them);
    * duplicates of one valid vote (the collector counts a sender once).
    """

    def __init__(
        self,
        replica_id: ReplicaId,
        config: ProtocolConfig,
        crypto: CryptoContext,
        transport: Transport,
        burst: int = 3,
        fake_value: Value = b"flood-value",
    ) -> None:
        self.id = replica_id
        self.config = config
        self._crypto = crypto
        self._transport = transport
        self._burst = burst
        self._fake_value = fake_value
        self._fired = False

    def start(self) -> None:
        pass

    def on_message(self, src: ReplicaId, message: object) -> None:
        if self._fired or not isinstance(message, Signed):
            return
        payload = message.payload
        if not isinstance(payload, HsProposal):
            return
        self._fired = True
        self._flood(payload.view, message.signer, payload.value)

    def _flood(self, view: View, leader_id: ReplicaId, real_value: Value) -> None:
        fake_proposal = self._crypto.signatures.sign(
            self.id,
            HsProposal(
                view=view,
                value=self._fake_value,
                phase=HsPhase.PREPARE.value,
                justify=None,
            ),
        )
        self_vote = self._crypto.signatures.sign(
            self.id,
            HsVotePayload(
                view=view, value=self._fake_value, phase=HsPhase.COMMIT.value
            ),
        )
        forged_decide = self._crypto.signatures.sign(
            self.id,
            HsProposal(
                view=view,
                value=self._fake_value,
                phase=HsPhase.DECIDE.value,
                justify=HsQuorumCert(
                    view=view,
                    value=self._fake_value,
                    phase=HsPhase.COMMIT.value,
                    votes=(self_vote,),
                ),
            ),
        )
        fake_vote_inner = self._crypto.signatures.sign(
            self.id,
            HsVotePayload(
                view=view, value=self._fake_value, phase=HsPhase.PREPARE.value
            ),
        )
        fake_vote = self._crypto.signatures.sign(
            self.id, HsVote(vote=fake_vote_inner)
        )
        valid_vote_inner = self._crypto.signatures.sign(
            self.id,
            HsVotePayload(
                view=view, value=real_value, phase=HsPhase.PREPARE.value
            ),
        )
        valid_vote = self._crypto.signatures.sign(
            self.id, HsVote(vote=valid_vote_inner)
        )
        for _ in range(self._burst):
            for dst in range(self.config.n):
                if dst == self.id:
                    continue
                self._transport.send(dst, fake_proposal)
                self._transport.send(dst, forged_decide)
            # Votes only mean anything at the leader; duplicate them there.
            self._transport.send(leader_id, fake_vote)
            self._transport.send(leader_id, valid_vote)


def hotstuff_equivocation_map(
    config: ProtocolConfig,
    val1: Value = b"attack-A",
    val2: Value = b"attack-B",
    n_byzantine: Optional[int] = None,
    strategy: Optional[SplitStrategy] = None,
    forge_decide: bool = True,
) -> Tuple[Dict[ReplicaId, object], SplitStrategy]:
    """The conflicting-leader attack as a HotStuff ``byzantine=`` map.

    Replica 0 (leader of view 1) equivocates; the remaining Byzantine
    replicas come from the end of the ID range (so the view-2 leader is
    correct) and double-vote for both values.
    """
    n_byz = n_byzantine if n_byzantine is not None else config.f
    if n_byz < 1:
        raise ValueError("the attack needs at least the leader Byzantine")
    leader_id: ReplicaId = 0
    colluders = list(range(config.n - (n_byz - 1), config.n))
    byz_ids = [leader_id] + colluders

    plan = strategy or optimal_split(config.n, byz_ids, val1, val2)

    def leader_factory(replica_id, config, crypto, transport):
        return EquivocatingHsLeader(
            replica_id,
            config,
            crypto,
            transport,
            plan,
            colluders=colluders,
            forge_decide=forge_decide,
        )

    byzantine: Dict[ReplicaId, object] = {leader_id: leader_factory}
    for replica in colluders:
        byzantine[replica] = hs_double_voter_factory(plan, leader_id)
    return byzantine, plan


def hs_double_voter_factory(
    strategy: SplitStrategy, leader_id: ReplicaId, attack_view: View = 1
):
    """Deployment factory for :class:`HsDoubleVoter`."""

    def build(replica_id, config, crypto, transport):
        return HsDoubleVoter(
            replica_id,
            config,
            crypto,
            transport,
            strategy,
            leader_id,
            attack_view=attack_view,
        )

    return build


def hotstuff_flooding_factory(
    burst: int = 3, fake_value: Value = b"flood-value"
):
    """Deployment factory for :class:`HsFloodingReplica`."""

    def build(replica_id, config, crypto, transport):
        return HsFloodingReplica(
            replica_id, config, crypto, transport, burst=burst, fake_value=fake_value
        )

    return build
