"""Single-shot PBFT baseline (paper §2.3, Figure 2)."""

from .replica import PbftReplica
from .protocol import PbftDeployment
from .predicates import pbft_safe_proposal, pbft_valid_new_leader

__all__ = [
    "PbftReplica",
    "PbftDeployment",
    "pbft_safe_proposal",
    "pbft_valid_new_leader",
]
