"""PBFT deployment wiring (mirrors :class:`repro.core.protocol.ProBFTDeployment`)."""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Set

from ...config import ProtocolConfig
from ...crypto.context import CryptoContext
from ...crypto.hashing import digest
from ...net.faults import ChaosPolicy
from ...net.latency import LatencyModel
from ...net.network import Network
from ...net.sparse import CoalescingDelivery
from ...net.simulator import Simulator
from ...net.transport import Transport
from ...sync.timeouts import TimeoutPolicy
from ...types import Decision, ReplicaId, Value
from .replica import PbftReplica

ByzantineFactory = Callable[
    [ReplicaId, ProtocolConfig, CryptoContext, Transport], object
]


def default_value(replica: ReplicaId) -> Value:
    return f"value-{replica}".encode()


class PbftDeployment:
    """One single-shot PBFT consensus instance on a simulated network."""

    def __init__(
        self,
        config: ProtocolConfig,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        gst: float = 0.0,
        chaos: Optional[ChaosPolicy] = None,
        timeout_policy: Optional[TimeoutPolicy] = None,
        values: Optional[Dict[ReplicaId, Value]] = None,
        byzantine: Optional[Dict[ReplicaId, ByzantineFactory]] = None,
        duplicate_prob: float = 0.0,
        track_bytes: bool = False,
        crypto: Optional[CryptoContext] = None,
        sparse: bool = False,
        columnar: bool = False,
    ) -> None:
        # ``columnar`` is accepted for spec uniformity (A/B identity specs
        # toggle it across every protocol); PBFT's deterministic-quorum
        # state is already flat, so there is nothing to columnarize.
        del columnar
        self.config = config
        self.sim = Simulator()
        self.network = Network(
            self.sim,
            config.n,
            latency=latency,
            gst=gst,
            chaos=chaos,
            duplicate_prob=duplicate_prob,
            duplicate_seed=seed,
            track_bytes=track_bytes,
        )
        self.crypto = crypto if crypto is not None else CryptoContext.pooled(
            config.n, master_seed=digest("pbft-deployment", seed)
        )
        self.decisions: Dict[ReplicaId, Decision] = {}
        byzantine = byzantine or {}
        if len(byzantine) > config.f:
            raise ValueError(
                f"{len(byzantine)} Byzantine replicas exceeds f={config.f}"
            )
        self.byzantine_ids: FrozenSet[ReplicaId] = frozenset(byzantine)
        self._correct_ids: FrozenSet[ReplicaId] = (
            frozenset(range(config.n)) - self.byzantine_ids
        )
        values = values or {}

        self.replicas: Dict[ReplicaId, object] = {}
        for r in range(config.n):
            transport = Transport(self.network, r)
            if r in byzantine:
                replica = byzantine[r](r, config, self.crypto, transport)
            else:
                replica = PbftReplica(
                    replica_id=r,
                    config=config,
                    crypto=self.crypto,
                    transport=transport,
                    my_value=values.get(r, default_value(r)),
                    timeout_policy=timeout_policy,
                    on_decide=self._record_decision,
                )
            self.network.register(r, replica.on_message)
            self.replicas[r] = replica
        self.sparse = sparse
        if sparse:
            # Deterministic-quorum votes go to everyone, so there is nothing
            # to prune — sparse mode here is pure event coalescing (one
            # simulator event per distinct delivery time instead of one per
            # recipient), which is what tames the O(n^2) broadcast storms.
            self.network.use_delivery_policy(CoalescingDelivery())
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for replica in self.replicas.values():
            replica.start()

    def run(
        self,
        max_time: Optional[float] = None,
        max_events: int = 5_000_000,
        stop_when_decided: bool = True,
    ) -> "PbftDeployment":
        self.start()
        stop = self.all_correct_decided if stop_when_decided else None
        # Sparse fan-outs probe this between coalesced deliveries so they
        # keep dense mode's per-delivery stop granularity.
        self.network.stop_probe = stop
        self.sim.run(until=max_time, max_events=max_events, stop_when=stop)
        return self

    def _record_decision(self, decision: Decision) -> None:
        self.decisions[decision.replica] = decision

    @property
    def correct_ids(self) -> FrozenSet[ReplicaId]:
        return self._correct_ids

    def all_correct_decided(self) -> bool:
        # Decisions are recorded by correct replicas only, so a length check
        # suffices — this runs between every pair of deliveries and must be
        # O(1), not O(n).
        return len(self.decisions) >= len(self._correct_ids)

    def decided_values(self) -> Set[Value]:
        return {
            d.value for r, d in self.decisions.items() if r in self.correct_ids
        }

    @property
    def agreement_ok(self) -> bool:
        return len(self.decided_values()) <= 1
