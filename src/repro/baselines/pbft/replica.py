"""Single-shot PBFT replica (paper §2.3).

Identical skeleton to :class:`repro.core.replica.ProBFTReplica` with the two
deliberate differences Figure 3 highlights:

* Prepare and Commit messages are **broadcast to all replicas** instead of
  multicast to VRF samples;
* all quorums are **deterministic** (``⌈(n+f+1)/2⌉``), so any two quorums
  intersect in a correct replica and agreement is certain, at the cost of
  ``O(n²)`` messages.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ...config import ProtocolConfig
from ...crypto.context import CryptoContext
from ...crypto.signatures import Signed
from ...core.leader import leader_of_view
from ...messages.base import ProposalStatement
from ...messages.pbft import PbftCommit, PbftNewLeader, PbftPrepare, PbftPropose
from ...net.transport import Transport
from ...quorum.deterministic import DeterministicQuorumCollector
from ...sync.synchronizer import ViewSynchronizer, Wish
from ...sync.timeouts import TimeoutPolicy
from ...types import Decision, ReplicaId, Value, View
from .predicates import pbft_choose_value, pbft_safe_proposal, pbft_valid_new_leader

FUTURE_VIEW_WINDOW = 2
FUTURE_BUFFER_LIMIT = 8192

DecisionCallback = Callable[[Decision], None]


class PbftReplica:
    """A correct single-shot PBFT replica."""

    def __init__(
        self,
        replica_id: ReplicaId,
        config: ProtocolConfig,
        crypto: CryptoContext,
        transport: Transport,
        my_value: Value,
        timeout_policy: Optional[TimeoutPolicy] = None,
        on_decide: Optional[DecisionCallback] = None,
    ) -> None:
        self.id = replica_id
        self.config = config
        self._crypto = crypto
        self._transport = transport
        self._my_value = my_value
        self._on_decide = on_decide

        self._sync = ViewSynchronizer(
            transport=transport,
            f=config.f,
            signatures=crypto.signatures,
            on_new_view=self._on_new_view,
            timeout_policy=timeout_policy,
        )

        self._cur_view: View = 0
        self._cur_val: Optional[Value] = None
        self._voted = False
        self._proposal: Optional[Signed] = None

        self._prepared_view: View = 0
        self._prepared_value: Optional[Value] = None
        self._cert: Tuple[Signed, ...] = ()
        self._decision: Optional[Decision] = None

        self._prepare_collectors: Dict[View, DeterministicQuorumCollector] = {}
        self._commit_collectors: Dict[View, DeterministicQuorumCollector] = {}
        self._new_leader_collectors: Dict[View, DeterministicQuorumCollector] = {}
        self._proposed_views: Set[View] = set()
        self._committed_views: Set[View] = set()
        self._future_buffer: Dict[View, List[Tuple[ReplicaId, Signed]]] = {}

    # ------------------------------------------------------------------
    @property
    def decision(self) -> Optional[Decision]:
        return self._decision

    @property
    def current_view(self) -> View:
        return self._cur_view

    def start(self) -> None:
        self._sync.start()

    def stop(self) -> None:
        self._sync.stop()

    def on_message(self, src: ReplicaId, message: object) -> None:
        if not isinstance(message, Signed):
            return
        payload = message.payload
        if isinstance(payload, Wish):
            self._sync.on_wish(src, message)
            return
        view = self._view_of(payload)
        if view is None or self._cur_view == 0 or view < self._cur_view:
            return
        if view > self._cur_view:
            if view <= self._cur_view + FUTURE_VIEW_WINDOW:
                bucket = self._future_buffer.setdefault(view, [])
                if len(bucket) < FUTURE_BUFFER_LIMIT:
                    bucket.append((src, message))
            return
        if isinstance(payload, PbftPropose):
            self._handle_propose(src, message)
        elif isinstance(payload, PbftPrepare):
            self._handle_prepare(src, message)
        elif isinstance(payload, PbftCommit):
            self._handle_commit(src, message)
        elif isinstance(payload, PbftNewLeader):
            self._handle_new_leader(src, message)

    # ------------------------------------------------------------------
    @staticmethod
    def _view_of(payload: object) -> Optional[View]:
        if isinstance(payload, (PbftPropose, PbftNewLeader)):
            return payload.view
        if isinstance(payload, (PbftPrepare, PbftCommit)):
            inner = getattr(payload.statement, "payload", None)
            if isinstance(inner, ProposalStatement):
                return inner.view
        return None

    def _on_new_view(self, view: View) -> None:
        self._cur_view = view
        self._cur_val = None
        self._voted = False
        self._proposal = None
        for table in (
            self._prepare_collectors,
            self._commit_collectors,
            self._new_leader_collectors,
        ):
            for old in [v for v in table if v < view]:
                del table[old]

        if view == 1:
            if self.id == self._leader(view):
                self._propose(self._my_value, None)
        else:
            new_leader = PbftNewLeader(
                view=view,
                prepared_view=self._prepared_view,
                prepared_value=self._prepared_value,
                cert=self._cert,
            )
            self._send_or_local(self._leader(view), self._sign(new_leader))
        for src, message in self._future_buffer.pop(view, []):
            self._transport.schedule(
                0.0, lambda s=src, m=message: self.on_message(s, m)
            )

    # ------------------------------------------------------------------
    def _handle_new_leader(self, src: ReplicaId, signed: Signed) -> None:
        view = self._cur_view
        if self.id != self._leader(view) or view <= 1:
            return
        if view in self._proposed_views:
            return
        if not pbft_valid_new_leader(signed, view, self.config, self._crypto):
            return
        collector = self._new_leader_collectors.setdefault(
            view, DeterministicQuorumCollector(self.config.n, self.config.f)
        )
        if collector.add(view, signed.signer, signed):
            quorum = collector.quorum_messages(view)
            value, _v_max = pbft_choose_value(quorum, self._my_value)
            self._propose(value, tuple(quorum))

    def _propose(
        self, value: Value, justification: Optional[Tuple[Signed, ...]]
    ) -> None:
        view = self._cur_view
        self._proposed_views.add(view)
        statement = self._sign(ProposalStatement(view=view, value=value))
        propose = PbftPropose(
            view=view, statement=statement, justification=justification
        )
        signed = self._sign(propose)
        self._transport.broadcast(signed)
        self._deliver_local(signed)

    def _handle_propose(self, src: ReplicaId, signed: Signed) -> None:
        if self._voted:
            return
        if not pbft_safe_proposal(signed, self.config, self._crypto):
            return
        propose: PbftPropose = signed.payload
        self._cur_val = propose.value
        self._voted = True
        self._proposal = signed
        prepare = PbftPrepare(statement=propose.statement)
        signed_prepare = self._sign(prepare)
        self._transport.broadcast(signed_prepare)
        self._deliver_local(signed_prepare)

    def _handle_prepare(self, src: ReplicaId, signed: Signed) -> None:
        vote = signed.payload
        if not self._verify_vote(signed, vote, PbftPrepare):
            return
        collector = self._prepare_collectors.setdefault(
            self._cur_view, DeterministicQuorumCollector(self.config.n, self.config.f)
        )
        collector.add(vote.value, signed.signer, signed)
        self._try_form_prepared()

    def _try_form_prepared(self) -> None:
        view = self._cur_view
        if not self._voted or view in self._committed_views:
            return
        collector = self._prepare_collectors.get(view)
        if collector is None or not collector.has_quorum(self._cur_val):
            return
        self._prepared_value = self._cur_val
        self._prepared_view = view
        self._cert = collector.quorum_messages(self._cur_val)
        self._committed_views.add(view)
        assert self._proposal is not None
        commit = PbftCommit(statement=self._proposal.payload.statement)
        signed_commit = self._sign(commit)
        self._transport.broadcast(signed_commit)
        self._deliver_local(signed_commit)
        self._try_decide()

    def _handle_commit(self, src: ReplicaId, signed: Signed) -> None:
        vote = signed.payload
        if not self._verify_vote(signed, vote, PbftCommit):
            return
        collector = self._commit_collectors.setdefault(
            self._cur_view, DeterministicQuorumCollector(self.config.n, self.config.f)
        )
        collector.add(vote.value, signed.signer, signed)
        self._try_decide()

    def _try_decide(self) -> None:
        if self._decision is not None:
            return
        view = self._cur_view
        value = self._prepared_value
        if value is None or self._prepared_view != view:
            return
        collector = self._commit_collectors.get(view)
        if collector is None or not collector.has_quorum(value):
            return
        self._decision = Decision(
            replica=self.id, value=value, view=view, time=self._transport.now
        )
        if self._on_decide is not None:
            self._on_decide(self._decision)

    # ------------------------------------------------------------------
    def _verify_vote(self, signed: Signed, vote: object, expected_type) -> bool:
        if not isinstance(vote, expected_type):
            return False
        if not self._crypto.signatures.verify(signed):
            return False
        statement = vote.statement
        if not self._crypto.signatures.verify(statement):
            return False
        inner = statement.payload
        if not isinstance(inner, ProposalStatement):
            return False
        if inner.view != self._cur_view:
            return False
        return statement.signer == self._leader(inner.view)

    def _leader(self, view: View) -> ReplicaId:
        return leader_of_view(view, self.config.n)

    def _sign(self, payload: object) -> Signed:
        return self._crypto.signatures.sign(self.id, payload)

    def _send_or_local(self, dst: ReplicaId, message: Signed) -> None:
        if dst == self.id:
            self._deliver_local(message)
        else:
            self._transport.send(dst, message)

    def _deliver_local(self, message: Signed) -> None:
        self._transport.schedule(0.0, lambda: self.on_message(self.id, message))
