"""PBFT analogues of ``prepared`` / ``validNewLeader`` / ``safeProposal``.

With deterministic quorums any two prepared certificates for the same view
carry the same value, so the view-change rule simplifies: the new leader
re-proposes the value prepared in the *highest* view reported by its quorum
(no ``mode`` needed, unlike ProBFT).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...config import ProtocolConfig
from ...crypto.context import CryptoContext
from ...crypto.signatures import Signed
from ...core.leader import leader_of_view
from ...messages.base import ProposalStatement
from ...messages.pbft import PbftNewLeader, PbftPrepare, PbftPropose
from ...types import ReplicaId, ValidPredicate, Value, View


def pbft_validate_prepared_certificate(
    cert: Tuple[Signed, ...],
    view: View,
    value: Optional[Value],
    config: ProtocolConfig,
    crypto: CryptoContext,
) -> bool:
    """A deterministic quorum of signed PbftPrepare messages for (view, value)."""
    expected_leader = leader_of_view(view, config.n)
    seen = set()
    expected_value = value
    for signed in cert:
        if not crypto.signatures.verify(signed):
            return False
        prepare = signed.payload
        if not isinstance(prepare, PbftPrepare):
            return False
        statement = prepare.statement
        if not crypto.signatures.verify(statement):
            return False
        inner = statement.payload
        if not isinstance(inner, ProposalStatement):
            return False
        if statement.signer != expected_leader or inner.view != view:
            return False
        if expected_value is None:
            expected_value = inner.value
        elif inner.value != expected_value:
            return False
        if signed.signer in seen:
            return False
        seen.add(signed.signer)
    return len(seen) >= config.det_quorum


def pbft_valid_new_leader(
    signed: Signed,
    target_view: View,
    config: ProtocolConfig,
    crypto: CryptoContext,
) -> bool:
    if not crypto.signatures.verify(signed):
        return False
    msg = signed.payload
    if not isinstance(msg, PbftNewLeader):
        return False
    if msg.view != target_view or not msg.prepared_view < target_view:
        return False
    if msg.prepared_view == 0:
        return msg.prepared_value is None and not msg.cert
    if msg.prepared_value is None:
        return False
    return pbft_validate_prepared_certificate(
        msg.cert, msg.prepared_view, msg.prepared_value, config, crypto
    )


def pbft_choose_value(
    justification: Tuple[Signed, ...], my_value: Value
) -> Tuple[Value, View]:
    """Leader's rule: value prepared in the highest view, else own value.

    Returns ``(value, v_max)`` with ``v_max == 0`` when nothing was prepared.
    """
    v_max = 0
    chosen = my_value
    for m in justification:
        payload: PbftNewLeader = m.payload
        if payload.prepared_view > v_max and payload.prepared_value is not None:
            v_max = payload.prepared_view
            chosen = payload.prepared_value
    return chosen, v_max


def pbft_safe_proposal(
    signed: Signed,
    config: ProtocolConfig,
    crypto: CryptoContext,
    valid: Optional[ValidPredicate] = None,
) -> bool:
    if not crypto.signatures.verify(signed):
        return False
    propose = signed.payload
    if not isinstance(propose, PbftPropose):
        return False
    view = propose.view
    if view < 1:
        return False
    expected_leader = leader_of_view(view, config.n)
    if signed.signer != expected_leader:
        return False
    statement = propose.statement
    if not crypto.signatures.verify(statement):
        return False
    inner = statement.payload
    if not isinstance(inner, ProposalStatement):
        return False
    if inner.view != view or statement.signer != expected_leader:
        return False
    valid_fn = valid if valid is not None else config.valid
    if not valid_fn(inner.value):
        return False
    if view == 1:
        return True
    justification = propose.justification
    if justification is None:
        return False
    signers = {m.signer for m in justification}
    if len(signers) < config.det_quorum or len(signers) != len(justification):
        return False
    for m in justification:
        if not pbft_valid_new_leader(m, view, config, crypto):
            return False
    _chosen, v_max = pbft_choose_value(justification, inner.value)
    if v_max == 0:
        return True
    # The proposed value must be one prepared at v_max (all v_max certificates
    # agree on the value thanks to deterministic quorum intersection).
    for m in justification:
        payload: PbftNewLeader = m.payload
        if payload.prepared_view == v_max and payload.prepared_value == inner.value:
            return True
    return False
