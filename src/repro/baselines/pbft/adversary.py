"""PBFT analogues of the ProBFT equivocation and flooding attacks.

The paper's cross-protocol comparison (Figures 4-5) is only apples-to-apples
if the deterministic baselines face the *same* adversary strategies as
ProBFT.  This module ports them to PBFT's message dialect:

* :class:`EquivocatingPbftLeader` — the Figure-4c split, spoken in PBFT: the
  view-1 leader sends a distinct, correctly signed pre-prepare
  (:class:`~repro.messages.pbft.PbftPropose`) per split group, and backs each
  with its own conflicting ``PbftPrepare``/``PbftCommit`` votes delivered
  only inside that group.
* :class:`PbftDoubleVoter` — colluding followers casting Prepare *and*
  Commit votes for every plan value, each delivered only to that value's
  group (faulty replicas share keys, §2.1, so the voter re-creates the
  leader-signed statements locally).
* :class:`PbftFloodingReplica` — sprays votes whose statements are not
  leader-signed, votes for a fabricated value, and duplicates of one valid
  vote; deterministic quorum collectors must reject or dedup all of it.

Why PBFT survives: with quorums of ``⌈(n+f+1)/2⌉``, the two split groups'
supports sum to ``n + f < 2·quorum``, so at most one value can ever gather a
prepare (or commit) quorum — quorum intersection in code form.  The attack
can therefore only stall view 1 (liveness degradation) or hand one group a
decision that the view-change certificate then forces on everyone else;
``tests/test_baseline_adversaries.py`` pins both outcomes on golden seeds.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...adversary.equivocation import SplitStrategy, optimal_split
from ...config import ProtocolConfig
from ...crypto.context import CryptoContext
from ...crypto.signatures import Signed
from ...messages.base import ProposalStatement
from ...messages.pbft import PbftCommit, PbftPrepare, PbftPropose
from ...net.transport import Transport
from ...types import ReplicaId, Value, View


class EquivocatingPbftLeader:
    """A Byzantine view-1 leader sending one pre-prepare per split group.

    Every message is correctly signed — the only defences are deterministic
    quorum intersection and the view-change certificate rule.  In later
    views the leader stays silent.
    """

    def __init__(
        self,
        replica_id: ReplicaId,
        config: ProtocolConfig,
        crypto: CryptoContext,
        transport: Transport,
        strategy: SplitStrategy,
        attack_view: View = 1,
        support_own_proposals: bool = True,
    ) -> None:
        if attack_view != 1:
            # A later-view pre-prepare needs a valid NewLeader justification
            # quorum, which cannot be forged; view 1 needs none.
            raise ValueError("EquivocatingPbftLeader only attacks view 1")
        self.id = replica_id
        self.config = config
        self._crypto = crypto
        self._transport = transport
        self._strategy = strategy
        self._attack_view = attack_view
        self._support = support_own_proposals
        self._attacked = False

    def start(self) -> None:
        self._attack()

    def _attack(self) -> None:
        if self._attacked:
            return
        self._attacked = True
        view = self._attack_view
        for value, targets in self._strategy.assignments:
            statement = self._crypto.signatures.sign(
                self.id, ProposalStatement(view=view, value=value)
            )
            propose = PbftPropose(
                view=view, statement=statement, justification=None
            )
            signed = self._crypto.signatures.sign(self.id, propose)
            for dst in sorted(targets):
                if dst != self.id:
                    self._transport.send(dst, signed)
            if self._support:
                # Conflicting Prepare/Commit votes, but only inside the
                # value's own group — no cross-group evidence.
                prepare = self._crypto.signatures.sign(
                    self.id, PbftPrepare(statement=statement)
                )
                commit = self._crypto.signatures.sign(
                    self.id, PbftCommit(statement=statement)
                )
                for dst in sorted(targets):
                    if dst != self.id:
                        self._transport.send(dst, prepare)
                        self._transport.send(dst, commit)

    def on_message(self, src: ReplicaId, message: object) -> None:
        # The attack fires from start(); later views: silence.
        pass


class PbftDoubleVoter:
    """A colluding follower voting Prepare and Commit for every plan value.

    Each value's votes go only to that value's group, so correct replicas
    outside the group never see the conflicting support from this replica.
    """

    def __init__(
        self,
        replica_id: ReplicaId,
        config: ProtocolConfig,
        crypto: CryptoContext,
        transport: Transport,
        strategy: SplitStrategy,
        leader_id: ReplicaId,
        attack_view: View = 1,
    ) -> None:
        self.id = replica_id
        self.config = config
        self._crypto = crypto
        self._transport = transport
        self._strategy = strategy
        self._leader_id = leader_id
        self._attack_view = attack_view
        self._fired = False

    def start(self) -> None:
        pass

    def on_message(self, src: ReplicaId, message: object) -> None:
        if self._fired or not isinstance(message, Signed):
            return
        payload = message.payload
        if not isinstance(payload, PbftPropose):
            return
        if payload.view != self._attack_view:
            return
        if payload.statement.signer != self._leader_id:
            return
        self._fired = True
        self._vote_all(self._attack_view)

    def _vote_all(self, view: View) -> None:
        leader_key = self._crypto.registry.key_pair(
            self._leader_id
        ).private_key  # colluders share keys (paper §2.1)
        for value, targets in self._strategy.assignments:
            statement = self._crypto.signatures.sign_with(
                leader_key,
                self._leader_id,
                ProposalStatement(view=view, value=value),
            )
            prepare = self._crypto.signatures.sign(
                self.id, PbftPrepare(statement=statement)
            )
            commit = self._crypto.signatures.sign(
                self.id, PbftCommit(statement=statement)
            )
            for dst in sorted(targets):
                if dst != self.id:
                    self._transport.send(dst, prepare)
                    self._transport.send(dst, commit)


class PbftFloodingReplica:
    """Sends a burst of invalid PBFT votes to everyone on the first proposal.

    Attack vectors exercised:

    * non-leader statements: Prepare/Commit whose inner statement the flooder
      signed itself (``statement.signer == leader`` check fails);
    * fake value injection: votes for a value the leader never proposed;
    * vote duplication: one *valid* Prepare repeated ``burst`` times (the
      deterministic collector counts each sender at most once).
    """

    def __init__(
        self,
        replica_id: ReplicaId,
        config: ProtocolConfig,
        crypto: CryptoContext,
        transport: Transport,
        burst: int = 3,
        fake_value: Value = b"flood-value",
    ) -> None:
        self.id = replica_id
        self.config = config
        self._crypto = crypto
        self._transport = transport
        self._burst = burst
        self._fake_value = fake_value
        self._fired = False

    def start(self) -> None:
        pass

    def on_message(self, src: ReplicaId, message: object) -> None:
        if self._fired or not isinstance(message, Signed):
            return
        payload = message.payload
        if not isinstance(payload, PbftPropose):
            return
        self._fired = True
        self._flood(payload.view, payload.statement)

    def _flood(self, view: View, leader_statement: Signed) -> None:
        fake_statement = self._crypto.signatures.sign(
            self.id, ProposalStatement(view=view, value=self._fake_value)
        )
        forged_prepare = self._crypto.signatures.sign(
            self.id, PbftPrepare(statement=fake_statement)
        )
        forged_commit = self._crypto.signatures.sign(
            self.id, PbftCommit(statement=fake_statement)
        )
        valid_prepare = self._crypto.signatures.sign(
            self.id, PbftPrepare(statement=leader_statement)
        )
        for _ in range(self._burst):
            for dst in range(self.config.n):
                if dst == self.id:
                    continue
                self._transport.send(dst, forged_prepare)
                self._transport.send(dst, forged_commit)
                # Duplicate a *valid* vote: must count once per sender.
                self._transport.send(dst, valid_prepare)


def pbft_equivocation_map(
    config: ProtocolConfig,
    val1: Value = b"attack-A",
    val2: Value = b"attack-B",
    n_byzantine: Optional[int] = None,
    strategy: Optional[SplitStrategy] = None,
    support_own_proposals: bool = True,
) -> Tuple[Dict[ReplicaId, object], SplitStrategy]:
    """The Figure-4c attack as a PBFT ``byzantine=`` map, plus the split used.

    Mirrors :func:`repro.adversary.plans.equivocation_byzantine_map`:
    replica 0 (leader of view 1) equivocates; the remaining Byzantine
    replicas come from the end of the ID range (so the view-2 leader is
    correct) and double-vote for both values.
    """
    n_byz = n_byzantine if n_byzantine is not None else config.f
    if n_byz < 1:
        raise ValueError("the attack needs at least the leader Byzantine")
    leader_id: ReplicaId = 0
    colluders = list(range(config.n - (n_byz - 1), config.n))
    byz_ids = [leader_id] + colluders

    plan = strategy or optimal_split(config.n, byz_ids, val1, val2)

    def leader_factory(replica_id, config, crypto, transport):
        return EquivocatingPbftLeader(
            replica_id,
            config,
            crypto,
            transport,
            plan,
            support_own_proposals=support_own_proposals,
        )

    byzantine: Dict[ReplicaId, object] = {leader_id: leader_factory}
    for replica in colluders:
        byzantine[replica] = pbft_double_voter_factory(plan, leader_id)
    return byzantine, plan


def pbft_double_voter_factory(
    strategy: SplitStrategy, leader_id: ReplicaId, attack_view: View = 1
):
    """Deployment factory for :class:`PbftDoubleVoter`."""

    def build(replica_id, config, crypto, transport):
        return PbftDoubleVoter(
            replica_id,
            config,
            crypto,
            transport,
            strategy,
            leader_id,
            attack_view=attack_view,
        )

    return build


def pbft_flooding_factory(burst: int = 3, fake_value: Value = b"flood-value"):
    """Deployment factory for :class:`PbftFloodingReplica`."""

    def build(replica_id, config, crypto, transport):
        return PbftFloodingReplica(
            replica_id, config, crypto, transport, burst=burst, fake_value=fake_value
        )

    return build
