"""Baseline protocols the paper compares against (Figure 1).

* :mod:`repro.baselines.pbft` — single-shot PBFT [12] as presented in [6]:
  deterministic quorums, all-to-all Prepare/Commit, 3 communication steps,
  ``O(n²)`` messages.
* :mod:`repro.baselines.hotstuff` — single-shot basic HotStuff [58]:
  leader-to-all-to-leader phases, linear messages, ~8 communication steps.
"""

from .pbft.replica import PbftReplica
from .pbft.protocol import PbftDeployment
from .hotstuff.replica import HotStuffReplica
from .hotstuff.protocol import HotStuffDeployment

__all__ = [
    "PbftReplica",
    "PbftDeployment",
    "HotStuffReplica",
    "HotStuffDeployment",
]
