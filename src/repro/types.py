"""Core value types shared across the whole library.

The paper models a system of ``n`` replicas identified by unique IDs.  We use
0-based integer IDs internally (the paper uses 1-based IDs; only the
``leader(v)`` formula is affected, see :mod:`repro.core.leader`).

Values proposed to consensus are opaque byte strings from the protocol's point
of view; an application supplies a ``valid`` predicate (paper §2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

#: A replica identifier, ``0 <= id < n``.
ReplicaId = int

#: A view number, ``view >= 1``.  View 1 is the initial view.
View = int

#: A consensus value.  ProBFT treats values as opaque; equality is what matters.
Value = bytes

#: Application-defined validity predicate (paper §2.2, ``valid(x)``).
ValidPredicate = Callable[[Value], bool]


def always_valid(_value: Value) -> bool:
    """Default ``valid`` predicate accepting every value."""
    return True


class Phase(enum.Enum):
    """Protocol phases of a view (paper §3.1)."""

    PROPOSE = "propose"
    PREPARE = "prepare"
    COMMIT = "commit"

    def seed_tag(self) -> str:
        """The phase identifier concatenated into VRF seeds (paper §3.1)."""
        return self.value


@dataclass(frozen=True)
class Decision:
    """A decision event recorded by a replica.

    Attributes:
        replica: the deciding replica.
        value: the decided value.
        view: the view in which the decision happened.
        time: simulated time of the decision.
    """

    replica: ReplicaId
    value: Value
    view: View
    time: float


@dataclass
class TraceEvent:
    """A structured protocol trace entry, useful for debugging and tests."""

    time: float
    replica: ReplicaId
    kind: str
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time:10.3f}] r{self.replica:<3} {self.kind} {self.detail}"
