"""Per-replica transport endpoint.

A thin capability object handed to each replica so protocol code can send
without holding the whole network (and so Byzantine behaviours can interpose
on a single replica's traffic).
"""

from __future__ import annotations

from typing import Iterable

from ..types import ReplicaId
from .network import Network


class Transport:
    """Send/broadcast/multicast API bound to one replica."""

    def __init__(self, network: Network, replica: ReplicaId) -> None:
        self._network = network
        self._replica = replica

    @property
    def replica(self) -> ReplicaId:
        return self._replica

    @property
    def n(self) -> int:
        return self._network.n

    @property
    def now(self) -> float:
        return self._network.sim.now

    def send(self, dst: ReplicaId, message: object) -> None:
        self._network.send(self._replica, dst, message)

    def multicast(self, targets: Iterable[ReplicaId], message: object) -> None:
        self._network.multicast(self._replica, targets, message)

    def broadcast(self, message: object, include_self: bool = False) -> None:
        self._network.broadcast(self._replica, message, include_self=include_self)

    def schedule(self, delay: float, callback) -> object:
        """Schedule a local timer (used by the synchronizer)."""
        return self._network.sim.schedule(delay, callback)
