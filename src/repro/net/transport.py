"""Per-replica transport endpoint.

A thin capability object handed to each replica so protocol code can send
without holding the whole network (and so Byzantine behaviours can interpose
on a single replica's traffic).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..types import ReplicaId
from .network import Network


class Transport:
    """Send/broadcast/multicast API bound to one replica."""

    def __init__(self, network: Network, replica: ReplicaId) -> None:
        self._network = network
        self._replica = replica
        self._disseminator = None

    @property
    def replica(self) -> ReplicaId:
        return self._replica

    @property
    def n(self) -> int:
        return self._network.n

    @property
    def now(self) -> float:
        return self._network.sim.now

    def send(self, dst: ReplicaId, message: object) -> None:
        self._network.send(self._replica, dst, message)

    def multicast(self, targets: Iterable[ReplicaId], message: object) -> None:
        self._network.multicast(self._replica, targets, message)

    def broadcast(self, message: object, include_self: bool = False) -> None:
        self._network.broadcast(self._replica, message, include_self=include_self)

    @property
    def disseminator(self):
        """The attached gossip service, or None when dissemination is dense."""
        return self._disseminator

    def use_disseminator(self, disseminator) -> None:
        """Route :meth:`disseminate` through a gossip service (see
        :mod:`repro.net.gossip`).  Without one, dissemination is dense."""
        self._disseminator = disseminator

    def disseminate(
        self,
        message: object,
        restrict: Optional[Sequence[ReplicaId]] = None,
    ) -> None:
        """Disseminate ``message`` to (a restriction of) the whole system.

        The dense fallback reproduces the exact pre-gossip call sequences —
        a plain broadcast, or ordered per-``dst`` sends under ``restrict`` —
        so deployments without a disseminator are bit-identical to builds
        that predate this seam.  With a disseminator attached, the message
        travels as sample-and-forward gossip instead (``restrict`` then
        shapes only the origin's first hop; honest relays spread beyond it).
        """
        if self._disseminator is not None:
            self._disseminator.disseminate(self._replica, message, restrict)
        elif restrict is None:
            self._network.broadcast(self._replica, message)
        else:
            send = self._network.send
            src = self._replica
            for dst in restrict:
                if dst != src:
                    send(src, dst, message)

    def schedule(self, delay: float, callback) -> object:
        """Schedule a local timer (used by the synchronizer)."""
        return self._network.sim.schedule(delay, callback)
