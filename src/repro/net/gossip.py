"""Sample-based gossip dissemination (Erdős–Rényi push gossip).

ProBFT's vote traffic is already sample-based (each replica multicasts to a
VRF-chosen sample), but the leader's PROPOSE remains a dense ``O(n)``
broadcast.  *Scalable Byzantine Reliable Broadcast* (arXiv 1908.01738)
shows that Erdős–Rényi sample-and-forward gossip reaches every correct
process w.h.p. with per-node fan-out ``O(log n)`` — exactly the
dissemination shape the rest of the protocol assumes.  This module provides
that layer as a network-level service:

* :class:`GossipEnvelope` — the wire wrapper: the original signed payload
  plus a dissemination key and a remaining-round budget (TTL).
* :class:`GossipDisseminator` — the per-deployment service.  ``disseminate``
  seeds the first hop from the origin; each *correct* recipient forwards
  the payload once (duplicate suppression per ``(recipient, key)``) to its
  own deterministic sample until the TTL runs out.

Determinism: every sample draw is a pure function of
``(deployment seed, dissemination key, forwarding node, remaining TTL)``
via :func:`repro.crypto.hashing.digest`, so a trial's gossip trajectory is
reproducible per seed — there is no hidden RNG state, and two runs with the
same seed disseminate identically.

Byzantine origins: ``disseminate(..., restrict=...)`` limits the *origin's*
first hop to a chosen target list (in order), which is how an equivocating
leader aims each conflicting proposal at its own partition.  Honest
recipients still relay unrestricted — a Byzantine leader controls whom *it*
talks to, never how honest nodes forward, so equivocation under gossip
leaks across partitions at relay speed (observable in the detection-rate
estimates).

Duplicate copies are *delivered* (the protocol's own handlers dedup, same
as a real network) but never *re-forwarded*.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..crypto.hashing import digest
from ..errors import ConfigError
from ..messages.base import CanonicalMessage
from ..types import ReplicaId


def default_fanout(n: int) -> int:
    """Per-node forwarding fan-out ``⌈log2 n⌉ + 2`` (w.h.p. coverage)."""
    return max(3, math.ceil(math.log2(max(2, n))) + 2)


def default_rounds(n: int) -> int:
    """Round (TTL) budget ``⌈log2 n⌉ + 2``: infection saturates in
    ``O(log n)`` rounds, the slack covers unlucky early draws."""
    return max(3, math.ceil(math.log2(max(2, n))) + 2)


@dataclass(frozen=True)
class GossipEnvelope(CanonicalMessage):
    """Wire wrapper for one gossip hop.

    ``key`` identifies the dissemination (origin id, per-origin sequence);
    ``ttl`` is the number of forwarding rounds *remaining* after this hop.
    """

    payload: object
    key: Tuple[ReplicaId, int]
    ttl: int


class GossipDisseminator:
    """Erdős–Rényi sample-and-forward dissemination over a ``Network``.

    Args:
        network: the deployment's network (hops are plain unicast sends, so
            latency/chaos/duplication and byte accounting all apply).
        n: system size.
        seed: deployment seed; all sample draws derive from it.
        fanout: per-node forwarding sample size (default ``⌈log2 n⌉+2``).
        rounds: TTL budget for a dissemination (default ``⌈log2 n⌉+2``).
        byzantine_ids: recipients that never relay (their behaviour object
            decides what to do with delivered payloads instead).
    """

    def __init__(
        self,
        network,
        n: int,
        seed: int,
        fanout: Optional[int] = None,
        rounds: Optional[int] = None,
        byzantine_ids: Iterable[ReplicaId] = (),
    ) -> None:
        self.fanout = default_fanout(n) if fanout is None else fanout
        self.rounds = default_rounds(n) if rounds is None else rounds
        if self.fanout < 1:
            raise ConfigError(f"gossip fanout must be >= 1, got {self.fanout}")
        if self.rounds < 1:
            raise ConfigError(f"gossip rounds must be >= 1, got {self.rounds}")
        self._network = network
        self._n = n
        self._seed = seed
        self._byzantine = frozenset(byzantine_ids)
        self._seen: Set[Tuple[ReplicaId, Tuple[ReplicaId, int]]] = set()
        self._next_seq: Dict[ReplicaId, int] = {}
        #: (key, recipient) pairs delivered at least once — exposed for
        #: reachability tests and coverage metrics.
        self.delivered: Dict[Tuple[ReplicaId, int], Set[ReplicaId]] = {}

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_for(
        self, node: ReplicaId, key: Tuple[ReplicaId, int], ttl: int
    ) -> List[ReplicaId]:
        """The deterministic forwarding sample for ``node`` at ``ttl``.

        A pure function of ``(seed, key, node, ttl)`` — callable by tests
        and adversaries to predict exactly whom a node will contact.
        """
        tag = digest("gossip-sample", self._seed, key, node, ttl)
        rng = random.Random(int.from_bytes(tag[:8], "big"))
        pool = [r for r in range(self._n) if r != node]
        k = min(self.fanout, len(pool))
        return rng.sample(pool, k)

    # ------------------------------------------------------------------
    # Origination
    # ------------------------------------------------------------------
    def disseminate(
        self,
        origin: ReplicaId,
        message: object,
        restrict: Optional[Sequence[ReplicaId]] = None,
    ) -> Tuple[ReplicaId, int]:
        """Start a dissemination from ``origin``; returns its key.

        ``restrict`` replaces the origin's first-hop sample with an explicit
        target list (sent in the given order) — the Byzantine-origin hook.
        Honest relaying beyond the first hop is never restricted.
        """
        seq = self._next_seq.get(origin, 0)
        self._next_seq[origin] = seq + 1
        key = (origin, seq)
        # The origin has trivially "seen" its own dissemination.
        self._seen.add((origin, key))
        ttl = self.rounds - 1
        if restrict is not None:
            first_hop: Sequence[ReplicaId] = [
                dst for dst in restrict if dst != origin
            ]
        else:
            first_hop = self.sample_for(origin, key, self.rounds)
        envelope = GossipEnvelope(payload=message, key=key, ttl=ttl)
        send = self._network.send
        for dst in first_hop:
            send(origin, dst, envelope)
        return key

    # ------------------------------------------------------------------
    # Receipt + relay
    # ------------------------------------------------------------------
    def on_receive(
        self, recipient: ReplicaId, envelope: GossipEnvelope
    ) -> object:
        """Record receipt, relay once if correct, return the inner payload."""
        key = envelope.key
        self.delivered.setdefault(key, set()).add(recipient)
        mark = (recipient, key)
        if mark in self._seen:
            return envelope.payload  # duplicate: deliver, never re-forward
        self._seen.add(mark)
        ttl = envelope.ttl
        if ttl >= 1 and recipient not in self._byzantine:
            relayed = GossipEnvelope(
                payload=envelope.payload, key=key, ttl=ttl - 1
            )
            send = self._network.send
            for dst in self.sample_for(recipient, key, ttl):
                send(recipient, dst, relayed)
        return envelope.payload

    def wrap_handler(self, recipient: ReplicaId, handler):
        """Wrap a replica's registered handler with envelope unwrapping.

        Non-gossip traffic passes through untouched (one ``type`` check —
        vote fan-outs in sparse mode bypass this entirely via the batch /
        bulk delivery paths, so the wrapper is off the hot path).
        """

        def deliver(src: ReplicaId, message: object) -> None:
            if type(message) is GossipEnvelope:
                handler(src, self.on_receive(recipient, message))
            else:
                handler(src, message)

        return deliver

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def coverage(self, key: Tuple[ReplicaId, int]) -> int:
        """How many distinct replicas have received ``key`` so far."""
        return len(self.delivered.get(key, ()))
