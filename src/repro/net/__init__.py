"""Network substrate: discrete-event simulation of partial synchrony.

The paper's system model (§2.1): the network and replicas may behave
asynchronously until an unknown global stabilization time (GST), after which
communication is synchronous with unknown bounds.  An adversarial scheduler
may manipulate delivery times, but *independently of the sender's identity
and of whether the sender is faulty*.

* :mod:`repro.net.simulator` — deterministic discrete-event kernel.
* :mod:`repro.net.latency` — latency models (constant/uniform/exponential).
* :mod:`repro.net.faults` — pre-GST chaos policies (delay/reorder) and
  partitions; correct-to-correct messages are never lost, only delayed.
* :mod:`repro.net.network` — the network itself: routing, GST enforcement,
  per-type message accounting (used by the Figure-1b benchmarks).
* :mod:`repro.net.sparse` — sparse delivery policies: coalesced fan-out
  events (and protocol-aware pruning) for scaling past n≈1000.
* :mod:`repro.net.transport` — the per-replica send/broadcast/multicast API.
"""

from .simulator import Simulator
from .latency import (
    LatencyModel,
    ConstantLatency,
    UniformLatency,
    ExponentialLatency,
)
from .faults import ChaosPolicy, NoChaos, PreGstChaos, Partition
from .network import Network, MessageStats
from .sparse import CoalescingDelivery, SparseDeliveryPolicy
from .transport import Transport

__all__ = [
    "Simulator",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "ChaosPolicy",
    "NoChaos",
    "PreGstChaos",
    "Partition",
    "Network",
    "MessageStats",
    "SparseDeliveryPolicy",
    "CoalescingDelivery",
    "Transport",
]
