"""The partially synchronous network.

Enforces the paper's model (§2.1): before GST, the scheduler (latency model +
chaos policy) may delay messages arbitrarily; every message sent at time
``t`` is delivered no later than ``max(t, GST) + Δ`` where ``Δ`` is the
latency model's bound.  Correct-to-correct messages are never lost.

The network also keeps :class:`MessageStats` — per-type send counters used to
reproduce Figure 1b (number of exchanged messages).
"""

from __future__ import annotations

import random
from collections import Counter, OrderedDict
from typing import Callable, Dict, Iterable, Optional, Tuple

from ..errors import NotRegisteredError
from ..types import ReplicaId
from .faults import ChaosPolicy, NoChaos
from .latency import ConstantLatency, LatencyModel
from .simulator import Simulator
from .sparse import SparseDeliveryPolicy

#: Handler invoked on delivery: ``handler(src, message)``.
DeliveryHandler = Callable[[ReplicaId, object], None]

#: Batched handler used inside coalesced fan-outs (sparse mode only):
#: ``handler(src, message, shared)`` where ``shared`` is a scratch dict the
#: recipients of one fan-out event use to share message-level validation work.
BatchDeliveryHandler = Callable[[ReplicaId, object, dict], None]


def message_type_name(message: object) -> str:
    """Stable type label for accounting (``TYPE`` attr or class name).

    Signed envelopes are unwrapped so stats reflect protocol message types.
    """
    if hasattr(message, "payload") and hasattr(message, "signature"):
        message = message.payload
    label = getattr(message, "TYPE", None)
    if isinstance(label, str):
        return label
    return type(message).__name__


class MessageStats:
    """Message accounting for one network instance.

    Summary-first: the per-kind counters live in flat slot-indexed arrays
    (:class:`~repro.harness.metrics.IndexedCounter`) sharing one name→slot
    registry, and the classic ``Counter`` views (``sent_by_type`` …) are
    rebuilt on read — every reported value is identical to what per-message
    ``Counter`` bumps would produce, at a fraction of the hot-path dict
    traffic.  Byte counts use the canonical encoding of each message (the
    same bytes signatures cover) and are tracked only when the network was
    created with ``track_bytes=True`` — encoding every message has a
    measurable cost.

    ``track_history=True`` additionally retains a per-event debug log:
    ``("send", src, kind, count, size)`` and ``("deliver", kind, count)``
    tuples in record order.  Opt-in, because a large fan-out trial emits
    millions of events — summary accounting is the default precisely so
    n≈20,000 runs don't hold per-message records alive.
    """

    __slots__ = (
        "_sent",
        "_delivered",
        "_bytes",
        "sent_by_replica",
        "sent_total",
        "delivered_total",
        "bytes_total",
        "track_history",
        "history",
    )

    def __init__(self, track_history: bool = False) -> None:
        # Imported lazily: repro.harness pulls in the trial layer, which
        # imports this module — a module-level import would be circular.
        from ..harness.metrics import IndexedCounter

        index: Dict[str, int] = {}
        self._sent = IndexedCounter(index)
        self._delivered = IndexedCounter(index)
        self._bytes = IndexedCounter(index)
        self.sent_by_replica: Counter = Counter()
        self.sent_total = 0
        self.delivered_total = 0
        self.bytes_total = 0
        self.track_history = track_history
        self.history: list = []

    @property
    def sent_by_type(self) -> Counter:
        """Per-kind send counts (a rebuilt view; record via ``record_*``)."""
        return self._sent.as_counter()

    @property
    def delivered_by_type(self) -> Counter:
        return self._delivered.as_counter()

    @property
    def bytes_by_type(self) -> Counter:
        return self._bytes.as_counter()

    def record_send(
        self, src: ReplicaId, message: object, size: Optional[int] = None
    ) -> None:
        name = message_type_name(message)
        self._sent.bump(name)
        self.sent_by_replica[src] += 1
        self.sent_total += 1
        if size is not None:
            self._bytes.bump(name, size)
            self.bytes_total += size
        if self.track_history:
            self.history.append(("send", src, name, 1, size))

    def record_multicast(
        self,
        src: ReplicaId,
        message: object,
        count: int,
        size: Optional[int] = None,
    ) -> None:
        """Record ``count`` sends of one message in bulk (sparse fan-outs).

        Totals are exactly what ``count`` calls to :meth:`record_send` would
        produce — Figure-1b accounting is unchanged by coalescing.
        """
        if count <= 0:
            return
        name = message_type_name(message)
        self._sent.bump(name, count)
        self.sent_by_replica[src] += count
        self.sent_total += count
        if size is not None:
            self._bytes.bump(name, count * size)
            self.bytes_total += count * size
        if self.track_history:
            self.history.append(("send", src, name, count, size))

    def record_delivery(self, message: object) -> None:
        name = message_type_name(message)
        self._delivered.bump(name)
        self.delivered_total += 1
        if self.track_history:
            self.history.append(("deliver", name, 1))

    def record_bulk_delivery(self, message: object, count: int) -> None:
        """Record ``count`` deliveries of one message in bulk (fan-outs)."""
        if count <= 0:
            return
        name = message_type_name(message)
        self._delivered.bump(name, count)
        self.delivered_total += count
        if self.track_history:
            self.history.append(("deliver", name, count))

    def sent(self, type_name: str) -> int:
        return self._sent.get(type_name)

    def summary(self) -> Dict[str, int]:
        out = dict(sorted(self._sent.as_counter().items()))
        out["TOTAL"] = self.sent_total
        return out


class Network:
    """Routes messages between replicas over the simulator.

    Args:
        sim: the discrete-event kernel.
        n: number of replicas.
        latency: base latency model (its ``max_delay`` is the post-GST Δ).
        gst: global stabilization time (0 means synchronous from the start).
        chaos: extra adversarial scheduling applied before GST.
    """

    def __init__(
        self,
        sim: Simulator,
        n: int,
        latency: Optional[LatencyModel] = None,
        gst: float = 0.0,
        chaos: Optional[ChaosPolicy] = None,
        duplicate_prob: float = 0.0,
        duplicate_seed: int = 0,
        track_bytes: bool = False,
        track_history: bool = False,
    ) -> None:
        if not 0.0 <= duplicate_prob < 1.0:
            raise ValueError(f"duplicate_prob must be in [0,1), got {duplicate_prob}")
        self._sim = sim
        self._n = n
        self._latency = latency if latency is not None else ConstantLatency(1.0)
        self._gst = gst
        self._chaos = chaos if chaos is not None else NoChaos()
        self._duplicate_prob = duplicate_prob
        self._dup_rng = (
            random.Random(f"net-dup:{duplicate_seed}") if duplicate_prob else None
        )
        self._track_bytes = track_bytes
        # id -> (message, size); the strong reference keeps the id stable for
        # as long as the entry lives (a bare id() key can be recycled by a
        # later allocation and silently return the dead message's size).
        self._size_cache: "OrderedDict[int, Tuple[object, int]]" = OrderedDict()
        self._handlers: Dict[ReplicaId, DeliveryHandler] = {}
        self._batch_handlers: Dict[ReplicaId, BatchDeliveryHandler] = {}
        self._bulk_handler: Optional[Callable] = None
        self._delivery: Optional[SparseDeliveryPolicy] = None
        #: Optional predicate mirroring the deployment's ``stop_when``; the
        #: coalesced fan-out checks it between recipients so sparse runs keep
        #: dense's per-delivery stop granularity.
        self.stop_probe: Optional[Callable[[], bool]] = None
        self.stats = MessageStats(track_history=track_history)

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def n(self) -> int:
        return self._n

    @property
    def gst(self) -> float:
        return self._gst

    @property
    def max_delay(self) -> float:
        return self._latency.max_delay

    def register(self, replica: ReplicaId, handler: DeliveryHandler) -> None:
        """Attach the delivery handler for ``replica``."""
        if not 0 <= replica < self._n:
            raise NotRegisteredError(f"replica {replica} out of range [0, {self._n})")
        self._handlers[replica] = handler

    def register_batch(
        self, replica: ReplicaId, handler: BatchDeliveryHandler
    ) -> None:
        """Attach a batched fast-path handler used by coalesced fan-outs.

        Only consulted in sparse mode; the replica must still register a
        plain handler (unicast sends and dense mode always use it).
        """
        if replica not in self._handlers:
            raise NotRegisteredError(
                f"replica {replica} has no plain handler registered"
            )
        self._batch_handlers[replica] = handler

    def use_bulk_handler(self, handler: Optional[Callable]) -> None:
        """Attach a bucket-level delivery kernel (sparse mode only).

        ``handler(src, message, dsts, probe)`` may deliver a whole coalesced
        bucket in one call, returning the number of recipients delivered —
        or -1 to decline, in which case the generic per-recipient loop runs.
        The handler owns probe-between-deliveries stop semantics for the
        buckets it accepts.
        """
        self._bulk_handler = handler

    def use_delivery_policy(self, policy: Optional[SparseDeliveryPolicy]) -> None:
        """Switch multicast/broadcast to the sparse coalesced fan-out path.

        ``None`` restores dense mode (one simulator event per recipient).
        """
        self._delivery = policy

    @property
    def delivery_policy(self) -> Optional[SparseDeliveryPolicy]:
        return self._delivery

    def send(self, src: ReplicaId, dst: ReplicaId, message: object) -> float:
        """Send one message; returns the scheduled delivery time."""
        if dst not in self._handlers:
            raise NotRegisteredError(f"no handler registered for replica {dst}")
        if self._delivery is not None:
            self._delivery.inspect(src, message)
        now = self._sim.now
        base = self._latency.delay(src, dst)
        extra = self._chaos.extra_delay(now, self._gst, src, dst)
        delivery = now + base + extra
        # Partial synchrony: delivery no later than max(now, GST) + Δ.
        deadline = max(now, self._gst) + self._latency.max_delay
        delivery = min(delivery, deadline)
        delivery = max(delivery, now + 1e-12)  # strictly in the future
        self.stats.record_send(src, message, size=self._message_size(message))
        handler = self._handlers[dst]

        def deliver() -> None:
            self.stats.record_delivery(message)
            handler(src, message)

        self._sim.schedule_at(delivery, deliver)
        # Networks may duplicate messages (standard async-network behaviour);
        # receivers must be idempotent (sender dedup in quorum collectors).
        # The duplicate obeys the same partial-synchrony bound, stated from
        # the original send time: no later than max(now, GST) + 2Δ.
        if self._dup_rng is not None and self._dup_rng.random() < self._duplicate_prob:
            dup_delivery = min(
                delivery + self._latency.delay(src, dst),
                max(now, self._gst) + 2 * self._latency.max_delay,
            )
            self._sim.schedule_at(max(dup_delivery, delivery), deliver)
        return delivery

    #: Bounded FIFO for the size cache; broadcasts only need the hot tail.
    _SIZE_CACHE_LIMIT = 4096

    def _message_size(self, message: object) -> Optional[int]:
        """Canonical-encoding size in bytes (None when tracking is off).

        Sizes are cached by object identity — broadcasts/multicasts reuse
        one message object, so each distinct message is encoded once.  The
        entry pins the message alive and re-checks identity on hit, so a
        recycled ``id()`` can never serve a dead message's size; FIFO
        eviction bounds what the pin keeps alive.
        """
        if not self._track_bytes:
            return None
        key = id(message)
        entry = self._size_cache.get(key)
        if entry is not None and entry[0] is message:
            return entry[1]
        from ..crypto.hashing import stable_encode

        try:
            size = len(stable_encode(message))
        except TypeError:
            size = 0
        self._size_cache[key] = (message, size)
        if len(self._size_cache) > self._SIZE_CACHE_LIMIT:
            self._size_cache.popitem(last=False)
        return size

    def multicast(
        self, src: ReplicaId, targets: Iterable[ReplicaId], message: object
    ) -> None:
        """Send ``message`` to every replica in ``targets`` (self included if listed)."""
        if self._delivery is not None:
            self._sparse_dispatch(src, targets, message)
            return
        for dst in targets:
            self.send(src, dst, message)

    def broadcast(
        self, src: ReplicaId, message: object, include_self: bool = False
    ) -> None:
        """Send ``message`` to all replicas (excluding ``src`` unless asked)."""
        if self._delivery is not None:
            self._sparse_dispatch(
                src,
                (
                    dst
                    for dst in range(self._n)
                    if dst != src or include_self
                ),
                message,
            )
            return
        for dst in range(self._n):
            if dst == src and not include_self:
                continue
            self.send(src, dst, message)

    def _sparse_dispatch(
        self, src: ReplicaId, targets: Iterable[ReplicaId], message: object
    ) -> None:
        """Coalesced fan-out: one simulator event per distinct delivery time.

        Latency/chaos/duplication draws happen per target in dense's target
        order (suppression never skips a draw), buckets are created in
        first-seen order, and recipients within a bucket keep target order —
        together with the kernel's tie-break-by-scheduling-order this makes
        the delivery interleaving identical to dense mode.
        """
        policy = self._delivery
        policy.inspect(src, message)
        now = self._sim.now
        gst_floor = max(now, self._gst)
        deadline = gst_floor + self._latency.max_delay
        dup_deadline = gst_floor + 2 * self._latency.max_delay
        floor = now + 1e-12  # strictly in the future
        dup_rng = self._dup_rng
        buckets: "OrderedDict[float, list]" = OrderedDict()
        if (
            dup_rng is None
            and type(self._latency) is ConstantLatency
            and type(self._chaos) is NoChaos
        ):
            # Both models are pure — no RNG, no per-pair state — so every
            # target draws the same delay and the fan-out is one bucket.
            # Skipping the per-target calls consumes no stream a seeded
            # model would have consumed, so this stays bit-identical.
            handlers = self._handlers
            if len(handlers) == self._n:
                # Fully-wired network (every deployment): registration can't
                # fail, so skip the per-target membership probe.  Callers
                # never mutate the target sequence after dispatch, so lists
                # and tuples (VRF sample slices) pass through uncopied.
                dsts = (
                    targets
                    if type(targets) in (list, tuple)
                    else list(targets)
                )
            else:
                dsts = []
                for dst in targets:
                    if dst not in handlers:
                        raise NotRegisteredError(
                            f"no handler registered for replica {dst}"
                        )
                    dsts.append(dst)
            delivery = max(min(now + self._latency.delay(src, src), deadline), floor)
            self.stats.record_multicast(
                src, message, len(dsts), size=self._message_size(message)
            )
            if dsts:
                self._sim.schedule_at(
                    delivery,
                    lambda src=src, message=message, dsts=dsts: (
                        self._deliver_fanout(src, message, dsts)
                    ),
                )
            return
        count = 0
        for dst in targets:
            if dst not in self._handlers:
                raise NotRegisteredError(
                    f"no handler registered for replica {dst}"
                )
            count += 1
            base = self._latency.delay(src, dst)
            extra = self._chaos.extra_delay(now, self._gst, src, dst)
            delivery = max(min(now + base + extra, deadline), floor)
            bucket = buckets.get(delivery)
            if bucket is None:
                buckets[delivery] = bucket = [dst]
            else:
                bucket.append(dst)
            if dup_rng is not None and dup_rng.random() < self._duplicate_prob:
                dup_delivery = max(
                    min(delivery + self._latency.delay(src, dst), dup_deadline),
                    delivery,
                )
                dup_bucket = buckets.get(dup_delivery)
                if dup_bucket is None:
                    buckets[dup_delivery] = [dst]
                else:
                    dup_bucket.append(dst)
        self.stats.record_multicast(
            src, message, count, size=self._message_size(message)
        )
        for time_, dsts in buckets.items():
            self._sim.schedule_at(
                time_,
                lambda src=src, message=message, dsts=dsts: (
                    self._deliver_fanout(src, message, dsts)
                ),
            )

    def _deliver_fanout(
        self, src: ReplicaId, message: object, dsts: list
    ) -> None:
        """Deliver one coalesced time bucket, probing ``stop_probe`` between
        actual deliveries (the kernel already checked before this event
        fired, and a suppressed delivery cannot change the stop predicate —
        its dense twin is a handler call that provably mutates nothing the
        predicate reads — so skipping its probe keeps dense's stop point)."""
        policy = self._delivery
        if policy is not None:
            # The bulk kernel sees the *raw* bucket and does its own pruning
            # inline (one pass instead of filter-then-deliver); it declines
            # (-1) anything it does not fully understand, which then takes
            # the filtered generic loop below.
            bulk = self._bulk_handler
            if bulk is not None and dsts:
                delivered = bulk(src, message, dsts, self.stop_probe)
                if delivered >= 0:
                    self.stats.record_bulk_delivery(message, delivered)
                    return
            dsts = policy.batch_filter(message, dsts)
        stats = self.stats
        handlers = self._handlers
        batch_handlers = self._batch_handlers
        batch_get = batch_handlers.get
        probe = self.stop_probe
        shared: dict = {}
        delivered = 0
        try:
            for dst in dsts:
                if delivered and probe is not None and probe():
                    return
                delivered += 1
                batch = batch_get(dst)
                if batch is not None:
                    batch(src, message, shared)
                else:
                    handlers[dst](src, message)
        finally:
            # One bulk update per bucket: identical totals to dense's
            # per-delivery increments, at a fraction of the dict traffic.
            stats.record_bulk_delivery(message, delivered)
