"""Pre-GST network chaos and partitions.

Partial synchrony lets the scheduler delay messages arbitrarily before GST as
long as everything sent is *eventually* delivered (we deliver pre-GST traffic
no later than ``GST + Δ``).  Crucially (paper §2.1), the scheduler's choices
are independent of the sender's identity and faultiness — the policies below
therefore draw delays from sender-agnostic distributions.
"""

from __future__ import annotations

import abc
import random
from typing import FrozenSet, Iterable, Optional

from ..types import ReplicaId


class ChaosPolicy(abc.ABC):
    """Extra scheduling adversity applied on top of the latency model."""

    @abc.abstractmethod
    def extra_delay(
        self, now: float, gst: float, src: ReplicaId, dst: ReplicaId
    ) -> float:
        """Additional delay for a message sent at ``now``; must be >= 0.

        Implementations must ensure the total delivery time of any pre-GST
        message does not exceed ``gst + Δ`` relative deadlines enforced by
        the network (the network clamps, so policies may be sloppy).
        """


class NoChaos(ChaosPolicy):
    """The scheduler adds nothing; delays come from the latency model alone."""

    def extra_delay(
        self, now: float, gst: float, src: ReplicaId, dst: ReplicaId
    ) -> float:
        return 0.0


class PreGstChaos(ChaosPolicy):
    """Random large delays for messages sent before GST.

    Each pre-GST message independently receives an extra delay drawn
    uniformly from ``[0, max_extra]``.  Messages sent after GST are untouched.
    The draw ignores ``src``/``dst`` (sender-agnostic scheduler).
    """

    def __init__(self, max_extra: float = 50.0, seed: int = 0) -> None:
        if max_extra < 0:
            raise ValueError(f"max_extra must be >= 0, got {max_extra}")
        self._max_extra = max_extra
        self._rng = random.Random(f"pre-gst-chaos:{seed}")

    def extra_delay(
        self, now: float, gst: float, src: ReplicaId, dst: ReplicaId
    ) -> float:
        if now >= gst:
            return 0.0
        return self._rng.uniform(0.0, self._max_extra)


class Partition(ChaosPolicy):
    """A temporary network partition healing at ``heal_time``.

    Messages crossing the partition before ``heal_time`` are held and
    delivered just after healing (plus the normal latency).  A partition that
    heals before GST is a legal partially-synchronous behaviour.
    """

    def __init__(
        self,
        group_a: Iterable[ReplicaId],
        heal_time: float,
    ) -> None:
        self._group_a: FrozenSet[ReplicaId] = frozenset(group_a)
        self._heal_time = heal_time

    @property
    def heal_time(self) -> float:
        return self._heal_time

    def crosses(self, src: ReplicaId, dst: ReplicaId) -> bool:
        return (src in self._group_a) != (dst in self._group_a)

    def extra_delay(
        self, now: float, gst: float, src: ReplicaId, dst: ReplicaId
    ) -> float:
        if now >= self._heal_time or not self.crosses(src, dst):
            return 0.0
        return self._heal_time - now


class ReceiverTargetedChaos(ChaosPolicy):
    """Pre-GST delays aimed at a fixed set of *receivers*.

    The paper's scheduler must act independently of the *sender's* identity
    (§2.1) but may discriminate by destination — e.g. starving a victim set
    of replicas of messages until GST.  This is the strongest scheduling
    attack our model admits, and ProBFT must stay safe under it (victims
    simply cannot decide before GST).
    """

    def __init__(self, victims, extra: float = 1e6) -> None:
        if extra < 0:
            raise ValueError(f"extra must be >= 0, got {extra}")
        self._victims = frozenset(victims)
        self._extra = extra

    @property
    def victims(self):
        return self._victims

    def extra_delay(
        self, now: float, gst: float, src: ReplicaId, dst: ReplicaId
    ) -> float:
        if now >= gst or dst not in self._victims:
            return 0.0
        return self._extra


class ComposedChaos(ChaosPolicy):
    """Sum of several chaos policies (e.g. partition + random delays)."""

    def __init__(self, policies: Iterable[ChaosPolicy]) -> None:
        self._policies = list(policies)

    def extra_delay(
        self, now: float, gst: float, src: ReplicaId, dst: ReplicaId
    ) -> float:
        return sum(p.extra_delay(now, gst, src, dst) for p in self._policies)
