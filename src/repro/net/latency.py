"""Message latency models.

Post-GST, every model guarantees delays in ``(0, max_delay]`` — the paper's
"synchronous with unknown time bounds".  The bound is *unknown to the
protocol* (the synchronizer's timeouts adapt); the simulation of course knows
it so it can enforce partial synchrony.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from ..types import ReplicaId


class LatencyModel(abc.ABC):
    """Produces per-message delays, seeded and deterministic.

    Implementations must ignore sender identity in the sense required by the
    paper's scheduler model: delays may vary randomly, but the *distribution*
    is identical for all (src, dst) pairs.
    """

    @abc.abstractmethod
    def delay(self, src: ReplicaId, dst: ReplicaId) -> float:
        """Delay for one message from ``src`` to ``dst``; must be > 0."""

    @property
    @abc.abstractmethod
    def max_delay(self) -> float:
        """The (simulation-known) upper bound Δ on post-GST delays."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: float = 1.0) -> None:
        if value <= 0:
            raise ValueError(f"latency must be positive, got {value}")
        self._value = value

    def delay(self, src: ReplicaId, dst: ReplicaId) -> float:
        return self._value

    @property
    def max_delay(self) -> float:
        return self._value


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.5, high: float = 1.5, seed: int = 0) -> None:
        if not 0 < low <= high:
            raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
        self._low = low
        self._high = high
        self._rng = random.Random(f"uniform-latency:{seed}")

    def delay(self, src: ReplicaId, dst: ReplicaId) -> float:
        return self._rng.uniform(self._low, self._high)

    @property
    def max_delay(self) -> float:
        return self._high


class ExponentialLatency(LatencyModel):
    """Exponential delays with the given mean, truncated at ``cap``.

    Truncation keeps the model inside partial synchrony: post-GST delays must
    be bounded.  ``cap`` defaults to 10x the mean.
    """

    def __init__(
        self, mean: float = 1.0, cap: Optional[float] = None, seed: int = 0
    ) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self._mean = mean
        self._cap = cap if cap is not None else 10.0 * mean
        if self._cap < mean:
            raise ValueError(f"cap {self._cap} must be >= mean {mean}")
        self._rng = random.Random(f"exponential-latency:{seed}")

    def delay(self, src: ReplicaId, dst: ReplicaId) -> float:
        value = self._rng.expovariate(1.0 / self._mean)
        return min(max(value, 1e-9), self._cap)

    @property
    def max_delay(self) -> float:
        return self._cap
