"""Deterministic discrete-event simulation kernel.

A tiny but complete DES: events are ``(time, sequence, callback)`` triples in
a binary heap; ties in time break by scheduling order, so runs are fully
deterministic.  All model randomness lives in *seeded* RNGs owned by the
latency model / adversary, never in the kernel.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

Callback = Callable[[], None]


def _fired() -> None:  # sentinel: the event already ran; cancel is a no-op
    raise AssertionError("fired-event sentinel must never be invoked")


@dataclass(frozen=True)
class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    time: float
    seq: int
    _entry: list = field(repr=False, compare=False)
    _sim: Optional["Simulator"] = field(
        default=None, repr=False, compare=False
    )

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet (idempotent)."""
        callback = self._entry[3]
        if callback is None or callback is _fired:
            return
        self._entry[3] = None
        if self._sim is not None:
            self._sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._entry[3] is None


class Simulator:
    """Virtual-time event loop.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5.0]
    """

    #: Compaction only kicks in past this heap size — tiny heaps are cheap
    #: to scan and compacting them would just churn allocations.
    _COMPACT_FLOOR = 64

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[list] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._live = 0
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events (O(1))."""
        return self._live

    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`EventHandle.cancel`.

        Lazily compacts the heap once more than half of it is tombstones, so
        bounded-window timer churn (cancel + re-arm per view) cannot grow the
        heap past ~2x the live event count.
        """
        self._live -= 1
        self._cancelled += 1
        if (
            self._cancelled > len(self._heap) // 2
            and len(self._heap) >= self._COMPACT_FLOOR
        ):
            self._heap = [entry for entry in self._heap if entry[3] is not None]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def schedule(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self._now})"
            )
        seq = next(self._seq)
        entry = [time, seq, None, callback]
        heapq.heappush(self._heap, entry)
        self._live += 1
        handle = EventHandle(time=time, seq=seq, _entry=entry, _sim=self)
        entry[2] = handle
        return handle

    def step(self) -> bool:
        """Process the single next event; returns False if none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            callback = entry[3]
            if callback is None:
                self._cancelled -= 1
                continue  # cancelled
            entry[3] = _fired  # late cancel() must stay a no-op
            self._live -= 1
            self._now = entry[0]
            self._events_processed += 1
            callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run the event loop.

        Args:
            until: stop once virtual time would exceed this (the clock is
                advanced to ``until``).
            max_events: safety valve against runaway protocols.
            stop_when: predicate checked after every event.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                if stop_when is not None and stop_when():
                    return
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    return
                self.step()
                processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def _peek_time(self) -> Optional[float]:
        while self._heap:
            entry = self._heap[0]
            if entry[3] is None:
                heapq.heappop(self._heap)
                self._cancelled -= 1
                continue
            return entry[0]
        return None
