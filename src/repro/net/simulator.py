"""Deterministic discrete-event simulation kernel.

A tiny but complete DES: events are ``(time, sequence, callback)`` triples
ordered by time with ties broken by scheduling order, so runs are fully
deterministic.  All model randomness lives in *seeded* RNGs owned by the
latency model / adversary, never in the kernel.

Two interchangeable queue representations sit behind one interface:

* **heap** (the reference): a single binary heap of entries — optimal for
  small, irregular schedules and the easiest structure to reason about.
* **bucket** (the large-n fast path): protocol traffic is heavily
  *time-bucketed* — a broadcast under constant latency lands thousands of
  events on one timestamp — so the queue keeps a dict of per-time FIFO
  buckets plus a small heap of distinct times.  Scheduling into an existing
  bucket is O(1) (dict hit + append) instead of an O(log N) sift, and
  draining a bucket walks a list instead of popping the heap per event.
  Entries append in sequence order, so walking a bucket front-to-back *is*
  ``(time, seq)`` order: the fire order is bit-identical to the heap's.

``queue="auto"`` (the default) starts on the heap and migrates to buckets
once the backlog crosses ``bucket_threshold``
(:data:`repro.config.DEFAULT_SIM_TUNING`); migration re-groups the pending
entries by time and sorts each bucket by sequence, so the switch is
invisible to event ordering.  ``queue="heap"`` pins the reference behavior.

A third representation, ``queue="ring"`` (requires numpy), targets the
pure-model fast path (constant latency, no chaos) where almost every
event of a fan-out lands on one of a handful of distinct future times:
per-time buckets become flat ``int64`` arrays of packed
``slot << 32 | generation`` entries pointing into a shared callback slot
table.  Scheduling is an array append (amortized O(1), no per-event heap
entry or Python list cell), and cancellation is **tombstone-free**: it
bumps the slot's generation counter, so the queue needs no compaction
sweeps — a stale entry is recognized (generation mismatch) and skipped in
O(1) when its bucket drains.  Entries append in sequence order, so the
fire order is bit-identical to the heap's ``(time, seq)`` order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..config import DEFAULT_SIM_TUNING
from ..errors import SimulationError

Callback = Callable[[], None]

_QUEUE_MODES = ("auto", "heap", "bucket", "ring")

#: Initial per-time ring-bucket capacity (doubles on overflow).
_RING_BUCKET_SEED = 16

_GEN_MASK = 0xFFFFFFFF


def _fired() -> None:  # sentinel: the event already ran; cancel is a no-op
    raise AssertionError("fired-event sentinel must never be invoked")


@dataclass(frozen=True)
class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation."""

    time: float
    seq: int
    _entry: list = field(repr=False, compare=False)
    _sim: Optional["Simulator"] = field(
        default=None, repr=False, compare=False
    )

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet (idempotent)."""
        callback = self._entry[3]
        if callback is None or callback is _fired:
            return
        self._entry[3] = None
        if self._sim is not None:
            self._sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._entry[3] is None


class _RingHandle:
    """Ring-queue event handle: same surface as :class:`EventHandle`.

    Cancellation bumps the slot's generation counter instead of writing a
    tombstone into the queue — the packed bucket entry goes stale and is
    skipped (generation mismatch) when its bucket drains.
    """

    __slots__ = ("time", "seq", "_sim", "_slot", "_gen", "_dead")

    def __init__(self, time: float, seq: int, sim, slot: int, gen: int) -> None:
        self.time = time
        self.seq = seq
        self._sim = sim
        self._slot = slot
        self._gen = gen
        self._dead = False

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet (idempotent)."""
        if self._sim._ring_cancel(self._slot, self._gen):
            self._dead = True

    @property
    def cancelled(self) -> bool:
        return self._dead


class Simulator:
    """Virtual-time event loop.

    Args:
        queue: event-queue representation — ``"auto"`` (heap, migrating to
            time buckets past ``bucket_threshold`` pending events),
            ``"heap"`` (reference, never migrates), or ``"bucket"``
            (buckets from the first event).  All three fire events in the
            same ``(time, seq)`` order.
        compact_floor: tombstone-compaction floor (default
            :data:`repro.config.DEFAULT_SIM_TUNING`).
        bucket_threshold: backlog size that flips ``"auto"`` to buckets
            (default :data:`repro.config.DEFAULT_SIM_TUNING`).

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5.0]
    """

    #: Default compaction floor, re-exported from :mod:`repro.config` for
    #: callers/tests that size workloads off the class. Compaction only
    #: kicks in past this — tiny queues are cheap to scan and compacting
    #: them would just churn allocations.
    _COMPACT_FLOOR = DEFAULT_SIM_TUNING.compact_floor

    def __init__(
        self,
        *,
        queue: str = "auto",
        compact_floor: Optional[int] = None,
        bucket_threshold: Optional[int] = None,
    ) -> None:
        if queue not in _QUEUE_MODES:
            raise SimulationError(
                f"unknown queue mode {queue!r}; expected one of {_QUEUE_MODES}"
            )
        self._queue_mode = queue
        self._compact_floor = (
            compact_floor
            if compact_floor is not None
            else DEFAULT_SIM_TUNING.compact_floor
        )
        self._bucket_threshold = (
            bucket_threshold
            if bucket_threshold is not None
            else DEFAULT_SIM_TUNING.bucket_threshold
        )
        self._now: float = 0.0
        self._heap: List[list] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._live = 0
        self._cancelled = 0
        # Bucket-mode state (unused until migration).
        self._bucketed = queue == "bucket"
        self._buckets: Dict[float, List[list]] = {}
        self._time_heap: List[float] = []
        self._cur_time: float = 0.0
        self._cur_list: Optional[List[list]] = None
        self._cur_idx: int = 0
        # Ring-mode state (numpy-backed; pinned, never migrates).
        self._ring = queue == "ring"
        if self._ring:
            try:
                import numpy
            except ImportError as exc:
                raise SimulationError(
                    "queue='ring' requires numpy, which is not installed; "
                    "use queue='auto'/'heap'/'bucket' instead"
                ) from exc
            self._np = numpy
            self._ring_callbacks: List[Optional[Callback]] = []
            self._ring_gen: List[int] = []
            self._ring_free: List[int] = []
            # time -> [int64 array of packed slot<<32|gen entries, count]
            self._ring_buckets: Dict[float, list] = {}
            self._cur_ring: Optional[list] = None

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events (O(1))."""
        return self._live

    @property
    def queue_mode(self) -> str:
        """The queue representation in use (``heap``/``bucket``/``ring``)."""
        if self._ring:
            return "ring"
        return "bucket" if self._bucketed else "heap"

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`EventHandle.cancel`.

        Lazily compacts the queue once more than half of it is tombstones,
        so bounded-window timer churn (cancel + re-arm per view) cannot grow
        the backlog past ~2x the live event count.
        """
        self._live -= 1
        self._cancelled += 1
        if self._bucketed:
            if (
                self._cancelled > self._live
                and self._cancelled >= self._compact_floor
            ):
                self._compact_buckets()
            return
        if (
            self._cancelled > len(self._heap) // 2
            and len(self._heap) >= self._compact_floor
        ):
            self._heap = [entry for entry in self._heap if entry[3] is not None]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def _compact_buckets(self) -> None:
        """Sweep tombstones out of every bucket except the in-progress one
        (whose cursor indexes into the live list)."""
        swept = 0
        for time_ in list(self._buckets):
            bucket = self._buckets[time_]
            if bucket is self._cur_list:
                continue
            kept = [entry for entry in bucket if entry[3] is not None]
            swept += len(bucket) - len(kept)
            if kept:
                self._buckets[time_] = kept
            else:
                # The time stays in the time-heap; _next_bucket skips it.
                del self._buckets[time_]
        self._cancelled -= swept

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self._now})"
            )
        seq = next(self._seq)
        if self._ring:
            return self._ring_schedule(time, seq, callback)
        entry = [time, seq, None, callback]
        if self._bucketed:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [entry]
                heapq.heappush(self._time_heap, time)
            else:
                bucket.append(entry)
        else:
            heapq.heappush(self._heap, entry)
            if (
                self._queue_mode == "auto"
                and len(self._heap) > self._bucket_threshold
            ):
                self._migrate_to_buckets()
        self._live += 1
        handle = EventHandle(time=time, seq=seq, _entry=entry, _sim=self)
        entry[2] = handle
        return handle

    # ------------------------------------------------------------------
    # Ring queue (numpy-backed packed buckets + callback slot table)
    # ------------------------------------------------------------------
    def _ring_schedule(self, time: float, seq: int, callback: Callback):
        free = self._ring_free
        if free:
            slot = free.pop()
        else:
            slot = len(self._ring_callbacks)
            self._ring_callbacks.append(None)
            self._ring_gen.append(0)
        self._ring_callbacks[slot] = callback
        gen = self._ring_gen[slot]
        packed = (slot << 32) | gen
        bucket = self._ring_buckets.get(time)
        if bucket is None:
            arr = self._np.empty(_RING_BUCKET_SEED, dtype=self._np.int64)
            arr[0] = packed
            self._ring_buckets[time] = [arr, 1]
            heapq.heappush(self._time_heap, time)
        else:
            arr, count = bucket
            if count == arr.shape[0]:
                grown = self._np.empty(count * 2, dtype=self._np.int64)
                grown[:count] = arr
                bucket[0] = arr = grown
            arr[count] = packed
            bucket[1] = count + 1
        self._live += 1
        return _RingHandle(time, seq, self, slot, gen)

    def _ring_cancel(self, slot: int, gen: int) -> bool:
        """Invalidate (slot, gen) if still pending; True iff cancelled now.

        Bumping the generation makes the packed bucket entry stale without
        touching the bucket — the drain loop recognizes and skips it.
        """
        if self._ring_gen[slot] != gen or self._ring_callbacks[slot] is None:
            return False
        self._ring_gen[slot] = (gen + 1) & _GEN_MASK
        self._ring_callbacks[slot] = None
        self._ring_free.append(slot)
        self._live -= 1
        self._cancelled += 1
        return True

    def _ring_next_bucket(self) -> Optional[float]:
        while self._time_heap:
            time_ = heapq.heappop(self._time_heap)
            bucket = self._ring_buckets.get(time_)
            if bucket is None:
                continue  # drained earlier + stale heap time
            self._cur_time = time_
            self._cur_ring = bucket
            self._cur_idx = 0
            return time_
        return None

    def _ring_step(self) -> bool:
        gens = self._ring_gen
        callbacks = self._ring_callbacks
        while True:
            bucket = self._cur_ring
            if bucket is None:
                if self._ring_next_bucket() is None:
                    return False
                continue
            # Re-read the count each iteration: a callback scheduling at
            # this exact time appends to this same bucket mid-drain (the
            # bucket-mode contract).
            if self._cur_idx >= bucket[1]:
                del self._ring_buckets[self._cur_time]
                self._cur_ring = None
                continue
            packed = int(bucket[0][self._cur_idx])
            self._cur_idx += 1
            slot = packed >> 32
            gen = packed & _GEN_MASK
            if gens[slot] != gen:
                self._cancelled -= 1
                continue  # stale: cancelled before firing
            callback = callbacks[slot]
            gens[slot] = (gen + 1) & _GEN_MASK  # consume: late cancel no-ops
            callbacks[slot] = None
            self._ring_free.append(slot)
            self._live -= 1
            self._now = self._cur_time
            self._events_processed += 1
            callback()
            return True

    def _ring_peek(self) -> Optional[float]:
        gens = self._ring_gen
        while True:
            bucket = self._cur_ring
            if bucket is not None:
                arr = bucket[0]
                while self._cur_idx < bucket[1]:
                    packed = int(arr[self._cur_idx])
                    if gens[packed >> 32] != packed & _GEN_MASK:
                        self._cancelled -= 1
                        self._cur_idx += 1
                        continue
                    return self._cur_time
                del self._ring_buckets[self._cur_time]
                self._cur_ring = None
            if self._ring_next_bucket() is None:
                return None

    def _migrate_to_buckets(self) -> None:
        """Re-group the heap backlog into per-time buckets (once).

        Buckets sort by sequence so front-to-back bucket order equals the
        heap's ``(time, seq)`` pop order — the migration cannot reorder any
        pending event.
        """
        buckets: Dict[float, List[list]] = {}
        for entry in self._heap:
            bucket = buckets.get(entry[0])
            if bucket is None:
                buckets[entry[0]] = [entry]
            else:
                bucket.append(entry)
        for bucket in buckets.values():
            bucket.sort(key=lambda e: e[1])
        self._buckets = buckets
        self._time_heap = list(buckets)
        heapq.heapify(self._time_heap)
        self._heap = []
        self._cur_list = None
        self._bucketed = True

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the single next event; returns False if none remain."""
        if self._ring:
            return self._ring_step()
        if self._bucketed:
            return self._bucket_step()
        while self._heap:
            entry = heapq.heappop(self._heap)
            callback = entry[3]
            if callback is None:
                self._cancelled -= 1
                continue  # cancelled
            entry[3] = _fired  # late cancel() must stay a no-op
            self._live -= 1
            self._now = entry[0]
            self._events_processed += 1
            callback()
            return True
        return False

    def _bucket_step(self) -> bool:
        while True:
            bucket = self._cur_list
            if bucket is None:
                if self._next_bucket() is None:
                    return False
                continue
            if self._cur_idx >= len(bucket):
                # Drained; a later event at this exact time opens a fresh
                # bucket (and re-pushes the time).
                del self._buckets[self._cur_time]
                self._cur_list = None
                continue
            entry = bucket[self._cur_idx]
            self._cur_idx += 1
            callback = entry[3]
            if callback is None:
                self._cancelled -= 1
                continue  # cancelled
            entry[3] = _fired  # late cancel() must stay a no-op
            self._live -= 1
            self._now = entry[0]
            self._events_processed += 1
            callback()
            return True

    def _next_bucket(self) -> Optional[float]:
        while self._time_heap:
            time_ = heapq.heappop(self._time_heap)
            bucket = self._buckets.get(time_)
            if bucket is None:
                continue  # compacted away (or drained + stale time)
            self._cur_time = time_
            self._cur_list = bucket
            self._cur_idx = 0
            return time_
        return None

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run the event loop.

        Args:
            until: stop once virtual time would exceed this (the clock is
                advanced to ``until``).
            max_events: safety valve against runaway protocols.
            stop_when: predicate checked after every event.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        processed = 0
        try:
            while True:
                if stop_when is not None and stop_when():
                    return
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    return
                self.step()
                processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def _peek_time(self) -> Optional[float]:
        if self._ring:
            return self._ring_peek()
        if self._bucketed:
            return self._bucket_peek()
        while self._heap:
            entry = self._heap[0]
            if entry[3] is None:
                heapq.heappop(self._heap)
                self._cancelled -= 1
                continue
            return entry[0]
        return None

    def _bucket_peek(self) -> Optional[float]:
        while True:
            bucket = self._cur_list
            if bucket is not None:
                while self._cur_idx < len(bucket):
                    if bucket[self._cur_idx][3] is None:
                        self._cancelled -= 1
                        self._cur_idx += 1
                        continue
                    return self._cur_time
                del self._buckets[self._cur_time]
                self._cur_list = None
            if self._next_bucket() is None:
                return None
