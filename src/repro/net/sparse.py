"""Sparse delivery policies — the scaling seam for `Network` fan-outs.

Dense mode (the default, ``policy=None``) schedules one simulator event per
``(message, recipient)`` pair; at n≥500 the per-event python cost (heap push
and pop, one closure, per-delivery stats) dominates a trial.  A
:class:`SparseDeliveryPolicy` attached via :meth:`Network.use_delivery_policy`
switches ``multicast``/``broadcast`` to a *coalesced* fan-out: one simulator
event per distinct delivery time, delivering to every recipient in that time
bucket, with send stats recorded in bulk.

Equivalence contract (what makes sparse == dense bit-identical):

* **RNG order** — latency, chaos, and duplication draws are made per target
  in exactly dense's target order, whether or not a target is ultimately
  suppressed, so every seeded stream stays in lock-step with dense mode.
* **Event order** — the kernel breaks time ties by scheduling order.  Dense
  schedules recipients in target order; the coalesced buckets are created in
  first-seen order and deliver their recipients in target order, so the
  interleaving of deliveries (and of everything they trigger) is unchanged.
* **Stop granularity** — dense checks ``stop_when`` between deliveries; a
  coalesced event would overshoot, so the fan-out consults
  ``Network.stop_probe`` between recipients and abandons the remainder of
  the bucket once it trips.
* **Suppression soundness** — ``deliverable(message, dst)`` runs at event
  *fire* time, not send time.  Deliveries are strictly future, so any state
  ``dst`` holds at fire time was caused by messages sent strictly earlier;
  the policy's view of ``dst`` is current when it rules a delivery
  unobservable.

The base policy suppresses nothing — pure event coalescing, safe for any
protocol whose handlers do not depend on the *number* of simulator events
(none of ours do).  Protocol-aware policies (e.g. ProBFT's sample
observation policy in :mod:`repro.core.observation`) additionally prune
deliveries the recipient provably ignores.
"""

from __future__ import annotations

from ..types import ReplicaId


class SparseDeliveryPolicy:
    """Coalesce fan-out events; subclasses may also prune deliveries.

    ``inspect`` sees every message entering the network (unicast included)
    so the policy can track protocol state — e.g. conflicting leader
    statements — before ruling on observability.  ``deliverable`` is the
    fire-time verdict; returning ``True`` always is the conservative
    (dense-equivalent) answer.
    """

    def inspect(self, src: ReplicaId, message: object) -> None:
        """Observe a message at send time (default: no-op)."""

    def deliverable(self, message: object, dst: ReplicaId) -> bool:
        """May ``dst``'s protocol state change if ``message`` arrives now?"""
        return True

    def batch_deliverable(self, message: object):
        """Fan-out-level verdict: ``True`` (deliver to everyone) or a
        ``dst -> bool`` callable.

        Called once per coalesced fan-out event so policies can decompose
        ``message`` once instead of per recipient; the returned callable
        must agree with :meth:`deliverable` for every ``dst``.
        """
        return True

    def batch_filter(self, message: object, dsts: list) -> list:
        """Bulk form of :meth:`batch_deliverable`: the deliverable subset of
        ``dsts``, in order.

        This is what :meth:`Network._deliver_fanout` actually calls — one
        verdict pass per bucket instead of a callable invocation per
        recipient.  The default derives it from :meth:`batch_deliverable`;
        policies on hot paths override it with a single-frame loop.
        Pre-filtering is equivalent to interleaved evaluation because
        delivering to one recipient never synchronously mutates another
        (every send schedules a strictly-future event).
        """
        verdict = self.batch_deliverable(message)
        if verdict is True:
            return dsts
        return [dst for dst in dsts if verdict(dst)]


#: Alias that reads better at call sites wanting *only* event coalescing.
CoalescingDelivery = SparseDeliveryPolicy
