"""Canonical serialization and hashing helpers.

All signatures and VRF outputs in the simulation are computed over a
*canonical encoding* of Python values, so two structurally equal messages
always hash identically regardless of construction order.
"""

from __future__ import annotations

import hashlib
from typing import Any

_SEPARATOR = b"\x1f"


def stable_encode(value: Any) -> bytes:
    """Encode ``value`` into a canonical byte string.

    Supports the types that appear in protocol messages: ``bytes``, ``str``,
    ``int``, ``float``, ``bool``, ``None``, and (possibly nested) tuples,
    lists, dicts (sorted by encoded key), sets/frozensets (sorted), and enums
    or dataclass-like objects exposing ``canonical()``.
    """
    if value is None:
        return b"N"
    if isinstance(value, bool):  # must precede int check
        return b"B1" if value else b"B0"
    if isinstance(value, int):
        return b"I" + str(value).encode()
    if isinstance(value, float):
        return b"F" + repr(value).encode()
    if isinstance(value, bytes):
        return b"Y" + len(value).to_bytes(8, "big") + value
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"S" + len(raw).to_bytes(8, "big") + raw
    if isinstance(value, (tuple, list)):
        parts = [stable_encode(v) for v in value]
        return b"L" + len(parts).to_bytes(8, "big") + _SEPARATOR.join(parts)
    if isinstance(value, (set, frozenset)):
        parts = sorted(stable_encode(v) for v in value)
        return b"T" + len(parts).to_bytes(8, "big") + _SEPARATOR.join(parts)
    if isinstance(value, dict):
        items = sorted((stable_encode(k), stable_encode(v)) for k, v in value.items())
        parts = [k + _SEPARATOR + v for k, v in items]
        return b"D" + len(parts).to_bytes(8, "big") + _SEPARATOR.join(parts)
    canonical = getattr(value, "canonical", None)
    if callable(canonical):
        return b"C" + stable_encode(canonical())
    if hasattr(value, "value") and type(value).__module__ != "builtins":
        # Enum-like: encode by class name + value.
        return b"E" + stable_encode((type(value).__name__, value.value))
    raise TypeError(f"cannot canonically encode {type(value).__name__}: {value!r}")


def digest(*parts: Any) -> bytes:
    """SHA-256 digest over the canonical encoding of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        h.update(stable_encode(part))
        h.update(_SEPARATOR)
    return h.digest()


def digest_hex(*parts: Any) -> str:
    """Hex form of :func:`digest` (handy in traces and tests)."""
    return digest(*parts).hex()
