"""Canonical serialization and hashing helpers.

All signatures and VRF outputs in the simulation are computed over a
*canonical encoding* of Python values, so two structurally equal messages
always hash identically regardless of construction order.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any

_SEPARATOR = b"\x1f"

# Identity-keyed memo for ``canonical()``-bearing objects.  Every such type
# in the codebase is a frozen dataclass (Signed, VRFOutput, the message
# classes, certificates), and the hot path encodes the *same* object many
# times — a broadcast vote's shared leader statement is re-encoded once per
# signature over a message embedding it.  The entry pins the object alive so
# its id cannot be recycled, and the identity recheck makes a stale-id hit
# impossible; bounded **LRU** eviction keeps long sessions from pinning
# every envelope ever encoded while letting the recurring entries (the
# memoized VRF outputs' identity-stable sample encodes, re-read by every
# vote signature) refresh on hit — one-shot vote envelopes flow through and
# evict first.  FIFO would instead cycle the hot sample entries out once a
# trial's fresh-envelope inserts exceed the cap (n≳10⁴), re-paying an O(s)
# tuple encode per sample per trial.  Objects that expose ``canonical()``
# MUST be immutable for this cache (and for signing in general) to be sound.
_CANONICAL_CACHE: "OrderedDict[int, tuple]" = OrderedDict()
_CANONICAL_CACHE_MAX = 49152


def stable_encode(value: Any) -> bytes:
    """Encode ``value`` into a canonical byte string.

    Supports the types that appear in protocol messages: ``bytes``, ``str``,
    ``int``, ``float``, ``bool``, ``None``, and (possibly nested) tuples,
    lists, dicts (sorted by encoded key), sets/frozensets (sorted), and enums
    or dataclass-like objects exposing ``canonical()``.
    """
    # Exact-type dispatch for the shapes that dominate message encoding
    # (ints, strings, bytes, tuples); the isinstance chain below remains
    # the semantic reference and handles every subclass the same way it
    # always did (``bool`` is not an exact match for ``int``, so the
    # bool-before-int ordering is preserved).
    t = type(value)
    if t is int:
        return b"I" + str(value).encode()
    if t is str:
        raw = value.encode("utf-8")
        return b"S" + len(raw).to_bytes(8, "big") + raw
    if t is bytes:
        return b"Y" + len(value).to_bytes(8, "big") + value
    if t is tuple:
        parts = [stable_encode(v) for v in value]
        return b"L" + len(parts).to_bytes(8, "big") + _SEPARATOR.join(parts)
    if value is None:
        return b"N"
    if isinstance(value, bool):  # must precede int check
        return b"B1" if value else b"B0"
    if isinstance(value, int):
        return b"I" + str(value).encode()
    if isinstance(value, float):
        return b"F" + repr(value).encode()
    if isinstance(value, bytes):
        return b"Y" + len(value).to_bytes(8, "big") + value
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"S" + len(raw).to_bytes(8, "big") + raw
    if isinstance(value, (tuple, list)):
        parts = [stable_encode(v) for v in value]
        return b"L" + len(parts).to_bytes(8, "big") + _SEPARATOR.join(parts)
    if isinstance(value, (set, frozenset)):
        parts = sorted(stable_encode(v) for v in value)
        return b"T" + len(parts).to_bytes(8, "big") + _SEPARATOR.join(parts)
    if isinstance(value, dict):
        items = sorted((stable_encode(k), stable_encode(v)) for k, v in value.items())
        parts = [k + _SEPARATOR + v for k, v in items]
        return b"D" + len(parts).to_bytes(8, "big") + _SEPARATOR.join(parts)
    canonical = getattr(value, "canonical", None)
    if callable(canonical):
        key = id(value)
        entry = _CANONICAL_CACHE.get(key)
        if entry is not None and entry[0] is value:
            _CANONICAL_CACHE.move_to_end(key)
            return entry[1]
        encoded = b"C" + stable_encode(canonical())
        _CANONICAL_CACHE[key] = (value, encoded)
        if len(_CANONICAL_CACHE) > _CANONICAL_CACHE_MAX:
            _CANONICAL_CACHE.popitem(last=False)
        return encoded
    if hasattr(value, "value") and type(value).__module__ != "builtins":
        # Enum-like: encode by class name + value.
        return b"E" + stable_encode((type(value).__name__, value.value))
    raise TypeError(f"cannot canonically encode {type(value).__name__}: {value!r}")


def digest(*parts: Any) -> bytes:
    """SHA-256 digest over the canonical encoding of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        h.update(stable_encode(part))
        h.update(_SEPARATOR)
    return h.digest()


def digest_hex(*parts: Any) -> str:
    """Hex form of :func:`digest` (handy in traces and tests)."""
    return digest(*parts).hex()
