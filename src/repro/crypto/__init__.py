"""Simulated cryptographic substrate.

The paper assumes a PKI (per-replica signing keys, §2.1) and a globally known
verifiable random function (VRF, §2.4).  Real asymmetric cryptography is not
needed to reproduce the protocol's behaviour in simulation, so this package
implements *behaviourally faithful* stand-ins (see DESIGN.md, Substitutions):

* :mod:`repro.crypto.keys` — key pairs and a trusted :class:`KeyRegistry`
  (the simulation's trusted computing base, standing in for the mathematics
  of real signatures/VRFs).
* :mod:`repro.crypto.signatures` — deterministic, tamper-evident signatures.
* :mod:`repro.crypto.vrf` — ``VRF_prove`` / ``VRF_verify`` exactly as in §2.4,
  with uniqueness, collision resistance and pseudorandomness against
  in-simulation adversaries.
* :mod:`repro.crypto.hashing` — canonical serialization + digest helpers.
* :mod:`repro.crypto.context` — one bundle of the above per deployment, and
  the per-process :meth:`CryptoContext.pooled` cache that amortizes key
  derivation and verification across trials of the same ``(n, master_seed)``.
"""

from .context import CryptoContext, clear_crypto_pool, crypto_pool_stats
from .hashing import digest, digest_hex, stable_encode
from .keys import KeyPair, KeyRegistry
from .signatures import MemoizedSignatureScheme, SignatureScheme, Signed
from .vrf import VRF, MemoizedVRF, VRFOutput

__all__ = [
    "digest",
    "digest_hex",
    "stable_encode",
    "KeyPair",
    "KeyRegistry",
    "SignatureScheme",
    "MemoizedSignatureScheme",
    "Signed",
    "VRF",
    "MemoizedVRF",
    "VRFOutput",
    "CryptoContext",
    "clear_crypto_pool",
    "crypto_pool_stats",
]
