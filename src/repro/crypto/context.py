"""Bundled crypto services for one deployment."""

from __future__ import annotations

from dataclasses import dataclass

from .keys import KeyRegistry
from .signatures import SignatureScheme
from .vrf import VRF


@dataclass(frozen=True)
class CryptoContext:
    """Registry + signature scheme + VRF, created from one master seed.

    Every replica (and the adversary, for its corrupted replicas) shares one
    context per deployment, mirroring the paper's "keys are distributed
    before the system starts" assumption (§2.1).
    """

    registry: KeyRegistry
    signatures: SignatureScheme
    vrf: VRF

    @staticmethod
    def create(n: int, master_seed: bytes = b"repro-probft") -> "CryptoContext":
        registry = KeyRegistry(n, master_seed)
        return CryptoContext(
            registry=registry,
            signatures=SignatureScheme(registry),
            vrf=VRF(registry),
        )

    @property
    def n(self) -> int:
        return self.registry.n
