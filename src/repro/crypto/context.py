"""Bundled crypto services for one deployment, plus the per-process pool.

Two construction paths:

* :meth:`CryptoContext.create` — a fresh, uncached context (plain
  :class:`SignatureScheme` / :class:`VRF`).  The reference semantics.
* :meth:`CryptoContext.pooled` — a per-process cache keyed by
  ``(n, master_seed)``.  Rebuilding the same deployment (same system size,
  same seed) reuses the key registry instead of re-deriving ``n`` key pairs,
  and the pooled context's signature/VRF services memoize verification —
  the simulation's hot path, since every broadcast envelope is verified by
  up to ``n`` receivers.  All cached computations are pure functions of
  their inputs, so pooled and fresh contexts are bit-identical by
  construction (and pinned by tests).

The pool is deliberately per-process: worker processes of a
:class:`~repro.harness.parallel.ExperimentEngine` each grow their own pool,
which keeps the bit-identity guarantee trivially (no cross-process state)
while still amortizing setup across the many trials each worker runs.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

from .keys import KeyRegistry
from .signatures import MemoizedSignatureScheme, SignatureScheme
from .vrf import VRF, MemoizedVRF

#: Upper bound on pooled contexts kept alive; least-recently-used entries
#: are evicted first.  Large sweeps touch many ``(n, seed)`` pairs — the
#: bound keeps the pool from holding every registry ever built.
POOL_MAX_ENTRIES = 128

#: Byte-budget bounds for the pooled memo caches.  The floor keeps small
#: deployments from thrashing; the ceiling caps what one (n, master_seed)
#: pool entry may pin — at n=20000 an uncapped 4n-entry VRF memo would pin
#: gigabytes of expanded sample tuples.
MEMO_BUDGET_FLOOR = 32 << 20  # 32 MiB
MEMO_BUDGET_CEILING = 512 << 20  # 512 MiB


def memo_budget(n: int) -> Tuple[int, int]:
    """``(byte_budget, entry_bytes)`` for the size-``n`` VRF memo caches.

    A trial proves/expands ~2n+1 sampler keys; each memo entry pins an
    expanded sample tuple of ``s = min(n, ceil(1.7·ceil(2√n)))`` member ids
    (~40 bytes per id of tuple slot + int object) plus fixed overhead.  The
    ideal budget covers ``4n`` entries (two warm trials, the PR 7 cap) but
    is clamped to [floor, ceiling] so the cap scales with *bytes*, not
    entry counts — past n≈10⁴ the ceiling binds and eviction counters (see
    ``MemoizedVRF.evictions``) make the resulting thrash observable.
    """
    q = math.ceil(2.0 * math.sqrt(n))
    s_est = min(n, math.ceil(1.7 * q))
    entry_bytes = 40 * s_est + 160
    ideal = (4 * n + 64) * entry_bytes
    budget = min(MEMO_BUDGET_CEILING, max(MEMO_BUDGET_FLOOR, ideal))
    return budget, entry_bytes


@dataclass(frozen=True)
class CryptoContext:
    """Registry + signature scheme + VRF, created from one master seed.

    Every replica (and the adversary, for its corrupted replicas) shares one
    context per deployment, mirroring the paper's "keys are distributed
    before the system starts" assumption (§2.1).
    """

    registry: KeyRegistry
    signatures: SignatureScheme
    vrf: VRF

    @staticmethod
    def create(n: int, master_seed: bytes = b"repro-probft") -> "CryptoContext":
        registry = KeyRegistry(n, master_seed)
        return CryptoContext(
            registry=registry,
            signatures=SignatureScheme(registry),
            vrf=VRF(registry),
        )

    @staticmethod
    def pooled(n: int, master_seed: bytes = b"repro-probft") -> "CryptoContext":
        """A context over the process-wide pool entry for ``(n, master_seed)``.

        The pool shares what is safe to share indefinitely: the immutable
        :class:`KeyRegistry` (skipping the ``n`` key-pair re-derivation) and
        a :class:`MemoizedVRF` whose caches are *value*-keyed — sampler-key
        bytes → sample tuple for verification, and ``(replica, seed, s)`` →
        proven output for the honest prove path — so same-seed trials reuse
        each other's shuffle expansions *and* a replica's recurring per-view
        sampler keys are proven once per pool entry (the adversary's
        explicit-key ``prove_with`` path is never cached).  The signature scheme, whose memo is keyed by
        envelope *identity* and therefore pins envelope object graphs
        alive, is created fresh per call — its big win is within one
        deployment (each broadcast verified by up to ``n`` receivers), and
        per-deployment scoping keeps a long streaming sweep from retaining
        dead envelopes.  Results are bit-identical to :meth:`create`
        (memoization caches pure functions only), and state never leaks
        across keys: each ``(n, master_seed)`` pair owns its own registry
        and caches.
        """
        key = (n, master_seed)
        with _POOL_LOCK:
            entry = _POOL.get(key)
            if entry is not None:
                _POOL.move_to_end(key)
                _POOL_STATS["hits"] += 1
        if entry is None:
            # Build outside the lock: registry derivation is the expensive
            # part.  A racing builder may have published meanwhile; keep the
            # first entry so concurrent callers share one VRF cache.
            registry = KeyRegistry(n, master_seed)
            # A trial proves ~2n+1 sampler keys (prepare + commit per
            # replica, plus the leader's propose); a fixed entry bound
            # FIFO-thrashes past n≈4000, while an uncapped 4n-entry bound
            # pins gigabytes past n≈10⁴.  Budget by bytes instead (see
            # memo_budget) and let the eviction counter expose any thrash.
            budget, entry_bytes = memo_budget(n)
            built = (
                registry,
                MemoizedVRF(
                    registry, byte_budget=budget, entry_bytes=entry_bytes
                ),
            )
            with _POOL_LOCK:
                entry = _POOL.get(key)
                if entry is None:
                    _POOL_STATS["misses"] += 1
                    _POOL[key] = entry = built
                    while len(_POOL) > POOL_MAX_ENTRIES:
                        _POOL.popitem(last=False)
                else:
                    _POOL_STATS["hits"] += 1
        registry, vrf = entry
        return CryptoContext(
            registry=registry,
            # ~2n vote envelopes per trial: size the per-deployment verify
            # memo so one trial's envelopes fit without FIFO eviction.
            # Envelope entries pin shallow object graphs (~1 KiB amortized;
            # the fat sample tuples are shared with the VRF memo), so the
            # budget admits 4n+64 entries until the ceiling binds.
            signatures=MemoizedSignatureScheme(
                registry,
                byte_budget=min(
                    MEMO_BUDGET_CEILING,
                    max(MEMO_BUDGET_FLOOR, (4 * n + 64) * 1024),
                ),
                entry_bytes=1024,
            ),
            vrf=vrf,
        )

    @property
    def n(self) -> int:
        return self.registry.n


#: Pool entries: (registry, shared value-keyed VRF) per (n, master_seed).
_POOL: "OrderedDict[Tuple[int, bytes], Tuple[KeyRegistry, MemoizedVRF]]" = (
    OrderedDict()
)
_POOL_LOCK = threading.Lock()
_POOL_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def clear_crypto_pool() -> None:
    """Drop every pooled context and reset the hit/miss counters."""
    with _POOL_LOCK:
        _POOL.clear()
        _POOL_STATS["hits"] = 0
        _POOL_STATS["misses"] = 0


def crypto_pool_stats() -> Dict[str, int]:
    """Pool telemetry: ``{"hits", "misses", "size"}`` for this process."""
    with _POOL_LOCK:
        return {
            "hits": _POOL_STATS["hits"],
            "misses": _POOL_STATS["misses"],
            "size": len(_POOL),
        }
