"""Key pairs and the trusted key registry.

The paper assumes key distribution happens before the system starts (§2.1).
:class:`KeyRegistry` plays that role: it deterministically derives one
:class:`KeyPair` per replica from a master seed and acts as the simulation's
trusted computing base for signature/VRF verification (see DESIGN.md,
Substitutions).  Adversary code is only ever handed the private keys of the
replicas it corrupts, mirroring "the private key of a correct replica never
leaves the replica".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator

from ..errors import UnknownReplicaError
from ..types import ReplicaId
from .hashing import digest


@dataclass(frozen=True)
class KeyPair:
    """A replica's key pair.

    ``public_key`` is safely shareable; ``private_key`` must stay with the
    replica (or with the adversary, for corrupted replicas).
    """

    replica: ReplicaId
    private_key: bytes
    public_key: bytes

    @staticmethod
    def derive(replica: ReplicaId, master_seed: bytes) -> "KeyPair":
        """Deterministically derive the key pair for ``replica``."""
        private_key = digest("private-key", master_seed, replica)
        public_key = digest("public-key", private_key)
        return KeyPair(replica=replica, private_key=private_key, public_key=public_key)


class KeyRegistry:
    """The PKI of a deployment: everyone's public key, derived from one seed.

    The registry additionally exposes :meth:`_private_key_of` to the crypto
    primitives *only* — this is the simulation stand-in for the mathematical
    link between a key pair's halves.  Protocol and adversary code must go
    through :class:`~repro.crypto.signatures.SignatureScheme` /
    :class:`~repro.crypto.vrf.VRF` and never touch private keys directly.
    """

    def __init__(self, n: int, master_seed: bytes = b"repro-probft") -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self._n = n
        self._master_seed = master_seed
        self._pairs: Dict[ReplicaId, KeyPair] = {
            r: KeyPair.derive(r, master_seed) for r in range(n)
        }
        self._by_public: Dict[bytes, KeyPair] = {
            pair.public_key: pair for pair in self._pairs.values()
        }

    @property
    def n(self) -> int:
        return self._n

    def replicas(self) -> Iterator[ReplicaId]:
        return iter(range(self._n))

    def key_pair(self, replica: ReplicaId) -> KeyPair:
        """Full key pair of ``replica`` (hand out only to that replica/adversary)."""
        try:
            return self._pairs[replica]
        except KeyError:
            raise UnknownReplicaError(replica) from None

    def public_key(self, replica: ReplicaId) -> bytes:
        return self.key_pair(replica).public_key

    def public_keys(self, replicas: Iterable[ReplicaId]) -> Dict[ReplicaId, bytes]:
        return {r: self.public_key(r) for r in replicas}

    def resolve_public(self, public_key: bytes) -> KeyPair:
        """Map a public key back to its key pair (trusted-verifier operation)."""
        try:
            return self._by_public[public_key]
        except KeyError:
            raise UnknownReplicaError(public_key.hex()) from None

    def _private_key_of(self, replica: ReplicaId) -> bytes:
        """Trusted accessor used by SignatureScheme/VRF verification only."""
        return self.key_pair(replica).private_key
