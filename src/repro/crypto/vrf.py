"""Verifiable random function (paper §2.4).

Operations::

    VRF_prove(sk_i, seed, s)              -> (sample S_i, proof P_i)
    VRF_verify(pk_i, seed, s, S_i, P_i)   -> bool

The sample contains ``s`` *distinct* replica IDs drawn uniformly at random
(without replacement) from ``Π = {0..n-1}``.

Simulation construction (see DESIGN.md, Substitutions): the prover derives a
sampler key ``k = SHA256(sk_i ‖ seed ‖ s)`` and performs a deterministic
partial Fisher–Yates shuffle keyed by ``k``; the proof is ``k`` itself.
Verification recomputes ``k`` through the trusted registry and replays the
shuffle.  The paper's three guarantees hold against in-simulation adversaries:

* **Uniqueness** — ``k`` (hence the sample) is a function of ``(sk, seed, s)``.
* **Collision resistance** — distinct seeds give independent SHA-256 keys.
* **Pseudorandomness** — without ``sk_i`` the sample is unpredictable; the
  shuffle is keyed by a hash the adversary cannot evaluate.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..errors import VRFError
from ..types import ReplicaId
from .hashing import digest
from .keys import KeyRegistry

_DOMAIN = "repro-vrf-v1"


@dataclass(frozen=True)
class VRFOutput:
    """The result of ``VRF_prove``: a sample and its proof."""

    sample: Tuple[ReplicaId, ...]
    proof: bytes

    def canonical(self) -> Any:
        return ("vrf-output", tuple(self.sample), self.proof)

    def members(self) -> frozenset:
        """The sample as a frozenset, built once per output object.

        Membership tests against a vote's sample happen once per recipient
        of the vote; the cached set turns each O(s) tuple scan into O(1).
        """
        members = self.__dict__.get("_members")
        if members is None:
            members = frozenset(self.sample)
            object.__setattr__(self, "_members", members)
        return members

    def __contains__(self, replica: ReplicaId) -> bool:
        return replica in self.members()

    def __len__(self) -> int:
        return len(self.sample)


class _KeyedStream:
    """An expandable deterministic byte stream: SHA256(key ‖ counter) blocks."""

    def __init__(self, key: bytes) -> None:
        self._key = key
        self._counter = 0
        self._buffer = b""

    def next_uint(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        # Number of bytes needed to cover the bound, +1 to keep rejection rare.
        nbytes = max(1, (bound.bit_length() + 7) // 8 + 1)
        limit = (256**nbytes // bound) * bound
        while True:
            raw = self._take(nbytes)
            value = int.from_bytes(raw, "big")
            if value < limit:
                return value % bound

    def _take(self, nbytes: int) -> bytes:
        while len(self._buffer) < nbytes:
            block = hashlib.sha256(
                self._key + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            self._buffer += block
        out, self._buffer = self._buffer[:nbytes], self._buffer[nbytes:]
        return out


def _sample_from_key(key: bytes, n: int, s: int) -> Tuple[ReplicaId, ...]:
    """Partial Fisher–Yates draw of ``s`` distinct IDs from ``range(n)``.

    Sparse formulation: instead of materializing ``list(range(n))`` per draw
    (O(n) for an O(√n)-sized sample), track only the *displaced* slots in a
    dict — slot ``i`` holds ``i`` unless a previous swap moved something
    there.  Same keyed stream, same swap sequence, bit-identical output to
    the dense shuffle for every ``(key, n, s)``.
    """
    stream = _KeyedStream(key)
    displaced: Dict[int, int] = {}
    out: List[int] = []
    for i in range(s):
        j = i + stream.next_uint(n - i)
        out.append(displaced.get(j, j))
        if j != i:
            displaced[j] = displaced.get(i, i)
    return tuple(out)


class VRF:
    """Globally known VRF bound to a :class:`KeyRegistry` (paper §2.4)."""

    def __init__(self, registry: KeyRegistry) -> None:
        self._registry = registry

    @property
    def n(self) -> int:
        return self._registry.n

    def _sampler_key(self, private_key: bytes, seed: str, s: int) -> bytes:
        return digest(_DOMAIN, private_key, seed, s)

    def _sample(self, key: bytes, s: int) -> Tuple[ReplicaId, ...]:
        """The shuffle induced by one sampler key (memoization hook)."""
        return _sample_from_key(key, self.n, s)

    def prove_with(
        self, private_key: bytes, replica: ReplicaId, seed: str, s: int
    ) -> VRFOutput:
        """``VRF_prove`` with an explicit private key (honest or corrupted)."""
        if not 1 <= s <= self.n:
            raise VRFError(f"sample size must be in [1, n={self.n}], got {s}")
        key = self._sampler_key(private_key, seed, s)
        sample = self._sample(key, s)
        return VRFOutput(sample=sample, proof=key)

    def prove(self, replica: ReplicaId, seed: str, s: int) -> VRFOutput:
        """``VRF_prove(K_p,i, z, s) → (S_i, P_i)`` using the registry's key."""
        private_key = self._registry.key_pair(replica).private_key
        return self.prove_with(private_key, replica, seed, s)

    def verify(
        self, replica: ReplicaId, seed: str, s: int, output: VRFOutput
    ) -> bool:
        """``VRF_verify(K_u,i, z, s, S_i, P_i) → bool``.

        Checks that (a) the proof is the unique sampler key for
        ``(replica, seed, s)`` and (b) the sample is the shuffle it induces.
        """
        if len(output.sample) != s:
            return False
        try:
            private_key = self._registry._private_key_of(replica)
        except Exception:
            return False
        expected_key = self._sampler_key(private_key, seed, s)
        if expected_key != output.proof:
            return False
        return self._sample(expected_key, s) == tuple(output.sample)

    def require_valid(
        self, replica: ReplicaId, seed: str, s: int, output: VRFOutput
    ) -> VRFOutput:
        """Like :meth:`verify` but raises :class:`VRFError` on failure."""
        if not self.verify(replica, seed, s, output):
            raise VRFError(
                f"invalid VRF output from replica {replica} for seed {seed!r}"
            )
        return output


class MemoizedVRF(VRF):
    """A :class:`VRF` that memoizes the shuffle *and* honest proving.

    Two caches, both over pure functions, so memoized and fresh VRFs are
    bit-identical by construction:

    * **sample memo** — ``_sample_from_key`` is a pure function of
      ``(key, n, s)``, and every receiver verifying the same vote replays
      the same shuffle; within one deployment each distinct sampler key is
      expanded up to ``n`` times, and across pooled trials of the same
      ``(n, master_seed)`` the honest provers' keys recur exactly.  Keyed
      by the full ``(key, s)`` input (``n`` is fixed per VRF).
    * **prove memo** — :meth:`prove` through the registry's own key is a
      pure function of ``(replica, seed, s)`` (the registry is immutable),
      and the per-view sampler seeds (``phase_seed(view, tag)``) recur
      every time a same-``(n, master_seed)`` deployment is rebuilt — so a
      replica's recurring per-view keys are *proven once* per pool entry
      instead of re-hashing and re-shuffling per trial.  Only the honest
      registry path is memoized: :meth:`prove_with` (explicit keys — the
      adversary's corrupted-key and forgery path) always computes from
      scratch, since its key need not match the registry's.
    * **verify memo** — :meth:`verify` is a pure function of the output
      object and ``(replica, seed, s)`` (registry immutable again), and a
      vote's ``VRFOutput`` is verified once per recipient — up to ``s``
      times for the *same object*.  Keyed by ``id(output)`` plus the
      arguments, with the output pinned alive and identity re-checked on
      hit (the :class:`MemoizedSignatureScheme` idiom), so a recycled id
      can never serve a stale verdict.
    """

    def __init__(
        self,
        registry: KeyRegistry,
        max_entries: int = 8192,
        *,
        byte_budget: int = None,
        entry_bytes: int = 2048,
    ) -> None:
        super().__init__(registry)
        if byte_budget is not None:
            # Byte-budgeted cap: entries pin expanded sample tuples (~40
            # bytes per member id plus object overhead), so a fixed entry
            # count that is harmless at n=2000 is gigabytes at n=20000.
            if entry_bytes < 1:
                raise ValueError(f"entry_bytes must be >= 1, got {entry_bytes}")
            max_entries = max(1, byte_budget // entry_bytes)
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._cache: "OrderedDict[Tuple[bytes, int], Tuple[ReplicaId, ...]]" = (
            OrderedDict()
        )
        self._prove_cache: "OrderedDict[Tuple[ReplicaId, str, int], VRFOutput]" = (
            OrderedDict()
        )
        self._verify_cache: "OrderedDict[Tuple[int, ReplicaId, str, int], Tuple[VRFOutput, bool]]" = (
            OrderedDict()
        )
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.prove_hits = 0
        self.prove_misses = 0
        self.verify_hits = 0
        self.verify_misses = 0
        self.prove_identity_hits = 0
        self.evictions = 0

    def cache_stats(self) -> Dict[str, int]:
        """Memo telemetry: hit/miss/eviction counters and current sizes."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "prove_hits": self.prove_hits,
            "prove_misses": self.prove_misses,
            "verify_hits": self.verify_hits,
            "verify_misses": self.verify_misses,
            "prove_identity_hits": self.prove_identity_hits,
            "evictions": self.evictions,
            "entries": (
                len(self._cache)
                + len(self._prove_cache)
                + len(self._verify_cache)
            ),
            "max_entries": self._max_entries,
        }

    def _sample(self, key: bytes, s: int) -> Tuple[ReplicaId, ...]:
        cache_key = (key, s)
        sample = self._cache.get(cache_key)
        if sample is not None:
            self.hits += 1
            return sample
        sample = _sample_from_key(key, self.n, s)
        self.misses += 1
        self._cache[cache_key] = sample
        if len(self._cache) > self._max_entries:
            self._cache.popitem(last=False)
            self.evictions += 1
        return sample

    def prove(self, replica: ReplicaId, seed: str, s: int) -> VRFOutput:
        cache_key = (replica, seed, s)
        output = self._prove_cache.get(cache_key)
        if output is not None:
            self.prove_hits += 1
            return output
        output = super().prove(replica, seed, s)
        self.prove_misses += 1
        self._prove_cache[cache_key] = output
        if len(self._prove_cache) > self._max_entries:
            self._prove_cache.popitem(last=False)
            self.evictions += 1
        return output

    def verify(
        self, replica: ReplicaId, seed: str, s: int, output: VRFOutput
    ) -> bool:
        cache_key = (id(output), replica, seed, s)
        entry = self._verify_cache.get(cache_key)
        if entry is not None and entry[0] is output:
            self.verify_hits += 1
            return entry[1]
        if self._prove_cache.get((replica, seed, s)) is output:
            # This very object came out of the honest prove path for the
            # same (replica, seed, s) — it verifies by construction (the
            # prove memo only holds registry-keyed outputs), no need to
            # re-derive the sampler key and replay the shuffle.
            valid = True
            self.prove_identity_hits += 1
        else:
            valid = super().verify(replica, seed, s, output)
        self.verify_misses += 1
        self._verify_cache[cache_key] = (output, valid)
        if len(self._verify_cache) > self._max_entries:
            self._verify_cache.popitem(last=False)
            self.evictions += 1
        return valid


#: Interned seed strings — the hot path derives the same (view, tag) seed
#: once per delivered vote; bounded so adversarial view counters cannot
#: grow it without limit.
_PHASE_SEED_MEMO: Dict[Tuple[int, str, str], str] = {}
_PHASE_SEED_MEMO_MAX = 4096


def phase_seed(view: int, phase_tag: str, domain: str = "") -> str:
    """The protocol-mandated VRF seed ``v ‖ T`` (paper §3.1).

    ``phase_tag`` is "prepare" for Prepare and "commit" for Commit messages.
    ``domain`` scopes seeds to one consensus instance (the SMR extension
    runs one instance per slot); the paper's single-shot setting uses "".
    """
    key = (view, phase_tag, domain)
    seed = _PHASE_SEED_MEMO.get(key)
    if seed is None:
        if domain:
            seed = f"{domain}#{view}||{phase_tag}"
        else:
            seed = f"{view}||{phase_tag}"
        if len(_PHASE_SEED_MEMO) < _PHASE_SEED_MEMO_MAX:
            _PHASE_SEED_MEMO[key] = seed
    return seed
