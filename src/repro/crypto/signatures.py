"""Simulated digital signatures.

The paper (§2.1): every replica signs outgoing messages; receivers only
process messages whose signature verifies against the sender's public key.

Implementation: ``sign(sk, payload) = SHA256(sk ‖ canonical(payload))``.
Verification recomputes the tag through the trusted :class:`KeyRegistry`
(which alone can map a replica ID back to its private key).  Against
in-simulation adversaries — who never hold a correct replica's private key —
this scheme is existentially unforgeable and tamper-evident, which is all the
protocol relies on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Generic, TypeVar

from ..errors import SignatureError
from ..types import ReplicaId
from .hashing import digest
from .keys import KeyRegistry

T = TypeVar("T")

_DOMAIN = "repro-signature-v1"


@dataclass(frozen=True)
class Signed(Generic[T]):
    """A payload together with its producing replica and signature.

    This is the code form of the paper's ``⟨T, m⟩_i`` notation.  The payload
    must be canonically encodable (see :func:`repro.crypto.hashing.stable_encode`).
    """

    payload: T
    signer: ReplicaId
    signature: bytes

    def canonical(self) -> Any:
        return ("signed", self.payload, self.signer, self.signature)


class SignatureScheme:
    """Sign/verify service bound to a :class:`KeyRegistry`."""

    def __init__(self, registry: KeyRegistry) -> None:
        self._registry = registry

    def sign_with(self, private_key: bytes, signer: ReplicaId, payload: Any) -> Signed:
        """Sign ``payload`` with an explicitly supplied private key.

        Used by replicas (their own key) and by adversaries (corrupted keys
        only).  Signing with a key that does not belong to ``signer`` produces
        a signature that will never verify — exactly like forging.
        """
        tag = digest(_DOMAIN, private_key, signer, payload)
        return Signed(payload=payload, signer=signer, signature=tag)

    def sign(self, signer: ReplicaId, payload: Any) -> Signed:
        """Sign as ``signer`` using the registry's key for it (honest path)."""
        key = self._registry.key_pair(signer).private_key
        return self.sign_with(key, signer, payload)

    def verify(self, signed: Signed) -> bool:
        """Check that ``signed.signature`` is valid for ``signed.payload``."""
        try:
            key = self._registry._private_key_of(signed.signer)
        except Exception:
            return False
        expected = digest(_DOMAIN, key, signed.signer, signed.payload)
        return expected == signed.signature

    def require_valid(self, signed: Signed) -> Signed:
        """Like :meth:`verify` but raises :class:`SignatureError` on failure."""
        if not self.verify(signed):
            raise SignatureError(
                f"invalid signature from replica {signed.signer} "
                f"over payload {signed.payload!r}"
            )
        return signed


class MemoizedSignatureScheme(SignatureScheme):
    """A :class:`SignatureScheme` that memoizes :meth:`verify` per envelope.

    Broadcast and multicast share one :class:`Signed` *object* across all
    receivers (see ``Network._size_cache``), so in an ``n``-replica
    deployment the same envelope is verified up to ``n`` times — and
    recomputing ``digest(sk ‖ signer ‖ payload)`` (i.e. canonical encoding +
    SHA-256) dominates the simulation's hot path.  The cache is keyed by
    *object identity* with the envelope pinned alive, never by ``(signer,
    signature)`` alone: a forged envelope pairing a copied signature with a
    different payload is a distinct object and still verifies from scratch,
    so adversarial behaviour (flooding forgeries) is bit-identical to the
    uncached scheme.

    Bounded FIFO eviction keeps a long-lived (pooled) scheme from pinning
    every envelope ever verified.  The bound can be given directly
    (``max_entries``) or derived from a byte budget (``byte_budget`` with an
    estimated ``entry_bytes`` per pinned entry), and ``evictions`` counts
    every FIFO drop so memo thrash at large ``n`` is observable instead of
    silent (see :meth:`cache_stats`).

    A second, sign-side memo makes the *first* verification of an honestly
    signed envelope cheap: :meth:`sign` records ``payload identity → tag``
    computed with the registry's own key, and :meth:`verify` for the same
    payload object and signer reduces to a byte comparison against that tag
    — exactly the digest the full recompute would produce.  Forgeries never
    hit it: a tampered payload is a different object, a wrong signer fails
    the signer check, and :meth:`sign_with` (the adversary's corrupted-key
    path) never populates the memo.
    """

    def __init__(
        self,
        registry: KeyRegistry,
        max_entries: int = 8192,
        *,
        byte_budget: int = None,
        entry_bytes: int = 1024,
    ) -> None:
        super().__init__(registry)
        if byte_budget is not None:
            if entry_bytes < 1:
                raise ValueError(f"entry_bytes must be >= 1, got {entry_bytes}")
            max_entries = max(1, byte_budget // entry_bytes)
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        # id(signed) -> (signed, verdict); the strong reference keeps the
        # id stable for as long as the entry lives.
        self._cache: "OrderedDict[int, tuple]" = OrderedDict()
        # id(payload) -> (payload, signer, tag) recorded by honest sign().
        self._tag_cache: "OrderedDict[int, tuple]" = OrderedDict()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.tag_hits = 0
        self.evictions = 0

    def sign(self, signer: ReplicaId, payload: Any) -> Signed:
        signed = super().sign(signer, payload)
        self._tag_cache[id(payload)] = (payload, signer, signed.signature)
        if len(self._tag_cache) > self._max_entries:
            self._tag_cache.popitem(last=False)
            self.evictions += 1
        return signed

    def verify(self, signed: Signed) -> bool:
        key = id(signed)
        entry = self._cache.get(key)
        if entry is not None and entry[0] is signed:
            self.hits += 1
            return entry[1]
        tag = self._tag_cache.get(id(signed.payload))
        if (
            tag is not None
            and tag[0] is signed.payload
            and tag[1] == signed.signer
        ):
            # sign() computed digest(domain ‖ registry key ‖ signer ‖ this
            # very payload object) moments ago; comparing against it is the
            # full recompute, minus the encode + SHA-256.
            verdict = tag[2] == signed.signature
            self.tag_hits += 1
        else:
            verdict = super().verify(signed)
        self.misses += 1
        self._cache[key] = (signed, verdict)
        if len(self._cache) > self._max_entries:
            self._cache.popitem(last=False)
            self.evictions += 1
        return verdict

    def cache_stats(self) -> dict:
        """Memo telemetry: hit/miss/eviction counters and current sizes."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "tag_hits": self.tag_hits,
            "evictions": self.evictions,
            "entries": len(self._cache),
            "tag_entries": len(self._tag_cache),
            "max_entries": self._max_entries,
        }
