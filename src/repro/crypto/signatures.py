"""Simulated digital signatures.

The paper (§2.1): every replica signs outgoing messages; receivers only
process messages whose signature verifies against the sender's public key.

Implementation: ``sign(sk, payload) = SHA256(sk ‖ canonical(payload))``.
Verification recomputes the tag through the trusted :class:`KeyRegistry`
(which alone can map a replica ID back to its private key).  Against
in-simulation adversaries — who never hold a correct replica's private key —
this scheme is existentially unforgeable and tamper-evident, which is all the
protocol relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generic, TypeVar

from ..errors import SignatureError
from ..types import ReplicaId
from .hashing import digest
from .keys import KeyRegistry

T = TypeVar("T")

_DOMAIN = "repro-signature-v1"


@dataclass(frozen=True)
class Signed(Generic[T]):
    """A payload together with its producing replica and signature.

    This is the code form of the paper's ``⟨T, m⟩_i`` notation.  The payload
    must be canonically encodable (see :func:`repro.crypto.hashing.stable_encode`).
    """

    payload: T
    signer: ReplicaId
    signature: bytes

    def canonical(self) -> Any:
        return ("signed", self.payload, self.signer, self.signature)


class SignatureScheme:
    """Sign/verify service bound to a :class:`KeyRegistry`."""

    def __init__(self, registry: KeyRegistry) -> None:
        self._registry = registry

    def sign_with(self, private_key: bytes, signer: ReplicaId, payload: Any) -> Signed:
        """Sign ``payload`` with an explicitly supplied private key.

        Used by replicas (their own key) and by adversaries (corrupted keys
        only).  Signing with a key that does not belong to ``signer`` produces
        a signature that will never verify — exactly like forging.
        """
        tag = digest(_DOMAIN, private_key, signer, payload)
        return Signed(payload=payload, signer=signer, signature=tag)

    def sign(self, signer: ReplicaId, payload: Any) -> Signed:
        """Sign as ``signer`` using the registry's key for it (honest path)."""
        key = self._registry.key_pair(signer).private_key
        return self.sign_with(key, signer, payload)

    def verify(self, signed: Signed) -> bool:
        """Check that ``signed.signature`` is valid for ``signed.payload``."""
        try:
            key = self._registry._private_key_of(signed.signer)
        except Exception:
            return False
        expected = digest(_DOMAIN, key, signed.signer, signed.payload)
        return expected == signed.signature

    def require_valid(self, signed: Signed) -> Signed:
        """Like :meth:`verify` but raises :class:`SignatureError` on failure."""
        if not self.verify(signed):
            raise SignatureError(
                f"invalid signature from replica {signed.signer} "
                f"over payload {signed.payload!r}"
            )
        return signed
