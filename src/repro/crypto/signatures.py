"""Simulated digital signatures.

The paper (§2.1): every replica signs outgoing messages; receivers only
process messages whose signature verifies against the sender's public key.

Implementation: ``sign(sk, payload) = SHA256(sk ‖ canonical(payload))``.
Verification recomputes the tag through the trusted :class:`KeyRegistry`
(which alone can map a replica ID back to its private key).  Against
in-simulation adversaries — who never hold a correct replica's private key —
this scheme is existentially unforgeable and tamper-evident, which is all the
protocol relies on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Generic, TypeVar

from ..errors import SignatureError
from ..types import ReplicaId
from .hashing import digest
from .keys import KeyRegistry

T = TypeVar("T")

_DOMAIN = "repro-signature-v1"


@dataclass(frozen=True)
class Signed(Generic[T]):
    """A payload together with its producing replica and signature.

    This is the code form of the paper's ``⟨T, m⟩_i`` notation.  The payload
    must be canonically encodable (see :func:`repro.crypto.hashing.stable_encode`).
    """

    payload: T
    signer: ReplicaId
    signature: bytes

    def canonical(self) -> Any:
        return ("signed", self.payload, self.signer, self.signature)


class SignatureScheme:
    """Sign/verify service bound to a :class:`KeyRegistry`."""

    def __init__(self, registry: KeyRegistry) -> None:
        self._registry = registry

    def sign_with(self, private_key: bytes, signer: ReplicaId, payload: Any) -> Signed:
        """Sign ``payload`` with an explicitly supplied private key.

        Used by replicas (their own key) and by adversaries (corrupted keys
        only).  Signing with a key that does not belong to ``signer`` produces
        a signature that will never verify — exactly like forging.
        """
        tag = digest(_DOMAIN, private_key, signer, payload)
        return Signed(payload=payload, signer=signer, signature=tag)

    def sign(self, signer: ReplicaId, payload: Any) -> Signed:
        """Sign as ``signer`` using the registry's key for it (honest path)."""
        key = self._registry.key_pair(signer).private_key
        return self.sign_with(key, signer, payload)

    def verify(self, signed: Signed) -> bool:
        """Check that ``signed.signature`` is valid for ``signed.payload``."""
        try:
            key = self._registry._private_key_of(signed.signer)
        except Exception:
            return False
        expected = digest(_DOMAIN, key, signed.signer, signed.payload)
        return expected == signed.signature

    def require_valid(self, signed: Signed) -> Signed:
        """Like :meth:`verify` but raises :class:`SignatureError` on failure."""
        if not self.verify(signed):
            raise SignatureError(
                f"invalid signature from replica {signed.signer} "
                f"over payload {signed.payload!r}"
            )
        return signed


class MemoizedSignatureScheme(SignatureScheme):
    """A :class:`SignatureScheme` that memoizes :meth:`verify` per envelope.

    Broadcast and multicast share one :class:`Signed` *object* across all
    receivers (see ``Network._size_cache``), so in an ``n``-replica
    deployment the same envelope is verified up to ``n`` times — and
    recomputing ``digest(sk ‖ signer ‖ payload)`` (i.e. canonical encoding +
    SHA-256) dominates the simulation's hot path.  The cache is keyed by
    *object identity* with the envelope pinned alive, never by ``(signer,
    signature)`` alone: a forged envelope pairing a copied signature with a
    different payload is a distinct object and still verifies from scratch,
    so adversarial behaviour (flooding forgeries) is bit-identical to the
    uncached scheme.

    Bounded FIFO eviction keeps a long-lived (pooled) scheme from pinning
    every envelope ever verified.
    """

    def __init__(self, registry: KeyRegistry, max_entries: int = 8192) -> None:
        super().__init__(registry)
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        # id(signed) -> (signed, verdict); the strong reference keeps the
        # id stable for as long as the entry lives.
        self._cache: "OrderedDict[int, tuple]" = OrderedDict()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def verify(self, signed: Signed) -> bool:
        key = id(signed)
        entry = self._cache.get(key)
        if entry is not None and entry[0] is signed:
            self.hits += 1
            return entry[1]
        verdict = super().verify(signed)
        self.misses += 1
        self._cache[key] = (signed, verdict)
        if len(self._cache) > self._max_entries:
            self._cache.popitem(last=False)
        return verdict
