"""Execution auditing: validate a finished run against global invariants.

The protocol's safety argument rests on checkable artefacts — decisions are
backed by commit quorums over leader-signed statements, prepared states are
backed by certificates, NewLeader justifications are deterministic quorums.
:class:`ExecutionAuditor` re-verifies all of it *after* a run, independently
of the replica code paths that produced it.  Tests use the auditor as an
oracle; it is also handy when developing new adversary behaviours (a passing
attack run that fails the audit means the attack found a protocol bug).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..quorum.certificates import validate_prepared_certificate
from .leader import leader_of
from .protocol import ProBFTDeployment
from .replica import ProBFTReplica


@dataclass
class AuditReport:
    """Outcome of an execution audit."""

    violations: List[str] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "OK" if self.ok else "VIOLATIONS"
        lines = [f"AuditReport: {status} ({self.checks_run} checks)"]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)


class ExecutionAuditor:
    """Audits a completed :class:`ProBFTDeployment`."""

    def __init__(self, deployment: ProBFTDeployment) -> None:
        self._deployment = deployment

    def audit(self) -> AuditReport:
        report = AuditReport()
        self._check_agreement(report)
        self._check_decisions_are_recorded_consistently(report)
        self._check_prepared_certificates(report)
        self._check_decision_views_have_leaders(report)
        return report

    # ------------------------------------------------------------------
    def _correct_replicas(self):
        return self._deployment.correct_replicas()

    def _check_agreement(self, report: AuditReport) -> None:
        """No two correct replicas decided different values."""
        report.checks_run += 1
        values = self._deployment.decided_values()
        if len(values) > 1:
            report.add(f"agreement violated: {sorted(values)!r}")

    def _check_decisions_are_recorded_consistently(
        self, report: AuditReport
    ) -> None:
        """The deployment's decision record matches replica-local state."""
        for replica_id, replica in self._correct_replicas().items():
            report.checks_run += 1
            recorded = self._deployment.decisions.get(replica_id)
            local = replica.decision
            if (recorded is None) != (local is None):
                report.add(
                    f"replica {replica_id}: decision record mismatch "
                    f"(deployment={recorded}, local={local})"
                )
            elif recorded is not None and recorded != local:
                report.add(
                    f"replica {replica_id}: decision content mismatch"
                )

    def _check_prepared_certificates(self, report: AuditReport) -> None:
        """Every correct replica's prepared state is certificate-backed."""
        config = self._deployment.config
        crypto = self._deployment.crypto
        for replica_id, replica in self._correct_replicas().items():
            if replica.prepared_view == 0:
                continue
            report.checks_run += 1
            valid = validate_prepared_certificate(
                cert=replica._cert,
                view=replica.prepared_view,
                value=replica.prepared_value,
                holder=replica_id,
                config=config,
                signatures=crypto.signatures,
                vrf=crypto.vrf,
                leader_of_view=None,
            )
            if not valid:
                report.add(
                    f"replica {replica_id}: prepared state "
                    f"(view={replica.prepared_view}) lacks a valid certificate"
                )

    def _check_decision_views_have_leaders(self, report: AuditReport) -> None:
        """Decision metadata is internally consistent."""
        config = self._deployment.config
        for replica_id, decision in self._deployment.decisions.items():
            if replica_id not in self._deployment.correct_ids:
                continue
            report.checks_run += 1
            if decision.view < 1:
                report.add(f"replica {replica_id}: decision in view 0")
                continue
            leader = leader_of(decision.view, config)
            if not 0 <= leader < config.n:
                report.add(
                    f"replica {replica_id}: view {decision.view} has no leader"
                )
            if decision.replica != replica_id:
                report.add(
                    f"replica {replica_id}: decision attributed to "
                    f"{decision.replica}"
                )


def audit_deployment(deployment: ProBFTDeployment) -> AuditReport:
    """Convenience wrapper: audit and return the report."""
    return ExecutionAuditor(deployment).audit()
