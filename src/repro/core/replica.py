"""The ProBFT replica state machine (Algorithm 1, line for line).

State (Algorithm 1):

* per-view: ``curView``, ``curVal``, ``voted``, ``blockView``, ``proposal``;
* persistent: ``preparedView``, ``preparedVal``, ``cert`` (the prepared
  certificate), and the decision once made.

Handlers map to the algorithm's "upon" clauses:

* :meth:`_on_new_view`       — lines 1–5 (synchronizer upcall);
* :meth:`_handle_new_leader` — lines 6–12 (leader collects a deterministic
  quorum of NewLeader messages and proposes);
* :meth:`_handle_propose`    — lines 13–16 (vote by multicasting Prepare to a
  VRF sample);
* :meth:`_handle_prepare`    — lines 17–20 (probabilistic prepare quorum →
  prepared certificate → multicast Commit to a fresh VRF sample);
* :meth:`_handle_commit`     — lines 21–22 (probabilistic commit quorum →
  decide);
* :meth:`_check_equivocation`— lines 23–25 (any message carrying a
  leader-signed statement conflicting with ``curVal`` blocks the view and
  gossips the evidence).

Messages for future views are buffered (bounded) and replayed on view entry;
messages for past views are dropped — the paper's "a receiver will only
accept a message if its own view matches the view of the sender".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..config import ProtocolConfig
from ..crypto.context import CryptoContext
from ..crypto.signatures import Signed
from ..crypto.vrf import VRFOutput, phase_seed
from ..messages.base import ProposalStatement
from ..messages.probft import Commit, NewLeader, Prepare, Propose, extract_statement
from ..net.transport import Transport
from .leader import leader_of_view
from ..quorum.deterministic import DeterministicQuorumCollector
from ..quorum.probabilistic import ProbabilisticQuorumCollector
from ..sync.synchronizer import ViewSynchronizer, Wish
from ..sync.timeouts import TimeoutPolicy
from ..types import Decision, ReplicaId, TraceEvent, Value, View

#: How far ahead of the current view messages are buffered instead of dropped.
FUTURE_VIEW_WINDOW = 2

#: Cap on buffered messages per future view (DoS guard).
FUTURE_BUFFER_LIMIT = 4096

DecisionCallback = Callable[[Decision], None]


class _VoteToken:
    """Recipient-independent validation of one Prepare/Commit vote.

    Computed once per coalesced fan-out event and shared by every recipient
    in the bucket (see :meth:`ProBFTReplica.on_sample_message`).  Everything
    here is a pure function of the message and the deployment's shared
    crypto/config, never of the receiving replica.
    """

    __slots__ = (
        "is_prepare",
        "view",
        "value",
        "signer",
        "members",
        "valid",
        "eq_candidate",
    )

    def __init__(
        self, is_prepare, view, value, signer, members, valid, eq_candidate
    ) -> None:
        self.is_prepare = is_prepare
        self.view = view
        self.value = value
        self.signer = signer
        self.members = members
        self.valid = valid
        self.eq_candidate = eq_candidate


class ProBFTReplica:
    """A correct ProBFT replica."""

    def __init__(
        self,
        replica_id: ReplicaId,
        config: ProtocolConfig,
        crypto: CryptoContext,
        transport: Transport,
        my_value: Value,
        timeout_policy: Optional[TimeoutPolicy] = None,
        on_decide: Optional[DecisionCallback] = None,
        trace: bool = False,
    ) -> None:
        self.id = replica_id
        self.config = config
        self._crypto = crypto
        self._transport = transport
        self._my_value = my_value
        self._on_decide = on_decide
        self._trace_enabled = trace
        self.trace: List[TraceEvent] = []
        # The config properties recompute ceil(l*sqrt(n)) per access; the
        # delivery fast path reads them per message, so pin them once.
        self._q = config.q

        self._sync = ViewSynchronizer(
            transport=transport,
            f=config.f,
            signatures=crypto.signatures,
            on_new_view=self._on_new_view,
            timeout_policy=timeout_policy,
            domain=config.seed_domain,
        )

        # --- per-view state (Algorithm 1 line 1) ---
        self._cur_view: View = 0
        self._cur_val: Optional[Value] = None
        self._voted: bool = False
        self._block_view: bool = False
        self._proposal: Optional[Signed] = None  # accepted Signed[Propose]

        # --- persistent state ---
        self._prepared_view: View = 0
        self._prepared_value: Optional[Value] = None
        self._cert: Tuple[Signed, ...] = ()
        self._decision: Optional[Decision] = None

        # --- bookkeeping ---
        self._prepare_collectors: Dict[View, ProbabilisticQuorumCollector] = {}
        self._commit_collectors: Dict[View, ProbabilisticQuorumCollector] = {}
        self._new_leader_collectors: Dict[View, DeterministicQuorumCollector] = {}
        self._proposed_views: Set[View] = set()
        self._committed_views: Set[View] = set()
        self._future_buffer: Dict[View, List[Tuple[ReplicaId, Signed]]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def decision(self) -> Optional[Decision]:
        """The replica's decision, if it has decided."""
        return self._decision

    @property
    def current_view(self) -> View:
        return self._cur_view

    @property
    def prepared_view(self) -> View:
        return self._prepared_view

    @property
    def prepared_value(self) -> Optional[Value]:
        return self._prepared_value

    @property
    def view_blocked(self) -> bool:
        return self._block_view

    def start(self) -> None:
        """Boot the replica: enter view 1 through the synchronizer."""
        self._sync.start()

    def stop(self) -> None:
        self._sync.stop()

    def on_message(self, src: ReplicaId, message: object) -> None:
        """Network delivery entry point."""
        if not isinstance(message, Signed):
            return  # correct replicas only process signed messages (§2.1)
        payload = message.payload
        if isinstance(payload, Wish):
            self._sync.on_wish(src, message)
            return
        view = self._view_of(payload)
        if view is None:
            return
        if view < self._cur_view or self._cur_view == 0:
            return  # stale (or not yet started)
        if view > self._cur_view:
            self._buffer_future(view, src, message)
            return
        self._process_current(src, message)

    def on_sample_message(self, src: ReplicaId, message: object, shared: dict) -> None:
        """Batched delivery entry point for coalesced fan-outs (sparse mode).

        Recipients of one fan-out event share the recipient-independent
        validation work (signatures, leader check, VRF) through a
        :class:`_VoteToken` stashed in ``shared``; each recipient then does
        only its own per-replica steps, replicating :meth:`on_message`'s
        observable behaviour exactly.  Anything that is not a plain
        current-view vote falls back to the generic path.
        """
        token = shared.get("vote", False)
        if token is False:
            token = self._prevalidate_vote(message)
            shared["vote"] = token
        if token is None:
            self.on_message(src, message)
            return
        view = token.view
        cur = self._cur_view
        if view < cur or cur == 0:
            return  # stale (or not yet started)
        if view > cur:
            self._buffer_future(view, src, message)
            return
        # Lines 23-25 can only trigger on a conflicting leader-signed
        # statement; defer that rare case to the generic path wholesale.
        if (
            token.eq_candidate
            and self._voted
            and not self._block_view
            and token.value != self._cur_val
        ):
            self._process_current(src, message)
            return
        if self._block_view or not token.valid:
            return
        if self.id not in token.members:
            return  # line 17/21 precondition: i ∈ S
        table = (
            self._prepare_collectors
            if token.is_prepare
            else self._commit_collectors
        )
        collector = table.get(cur)
        if collector is None:
            collector = table[cur] = ProbabilisticQuorumCollector(self._q)
        # The quorum re-checks are no-ops unless this add completed one —
        # unlike the generic path we only pay them when it did.
        if collector.add(token.value, token.signer, message):
            if token.is_prepare:
                self._try_form_prepared()
            else:
                self._try_decide()

    def _prevalidate_vote(self, message: object) -> Optional[_VoteToken]:
        """The recipient-independent slice of :meth:`_verify_vote`.

        Returns ``None`` for anything that is not a well-formed Signed
        Prepare/Commit — those take the generic :meth:`on_message` path.
        """
        if not isinstance(message, Signed):
            return None
        payload = message.payload
        if not isinstance(payload, (Prepare, Commit)):
            return None
        statement = payload.statement
        inner = getattr(statement, "payload", None)
        if not isinstance(inner, ProposalStatement):
            return None
        view = inner.view
        config = self.config
        crypto = self._crypto
        domain_ok = inner.domain == config.seed_domain
        leader_ok = (
            view >= 1
            and getattr(statement, "signer", None)
            == leader_of_view(view, config.n)
        )
        is_prepare = isinstance(payload, Prepare)
        valid = (
            crypto.signatures.verify(message)
            and crypto.signatures.verify(statement)
            and domain_ok
            and leader_ok
            and crypto.vrf.verify(
                message.signer,
                phase_seed(
                    view,
                    "prepare" if is_prepare else "commit",
                    config.seed_domain,
                ),
                config.sample_size,
                payload.sample,
            )
        )
        return _VoteToken(
            is_prepare=is_prepare,
            view=view,
            value=inner.value,
            signer=message.signer,
            members=payload.sample.members(),
            valid=valid,
            eq_candidate=domain_ok and leader_ok,
        )

    # ------------------------------------------------------------------
    # Dispatch helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _view_of(payload: object) -> Optional[View]:
        if isinstance(payload, (Propose, NewLeader)):
            return payload.view
        if isinstance(payload, (Prepare, Commit)):
            statement = payload.statement
            inner = getattr(statement, "payload", None)
            if isinstance(inner, ProposalStatement):
                return inner.view
        return None

    def _buffer_future(self, view: View, src: ReplicaId, message: Signed) -> None:
        if view > self._cur_view + FUTURE_VIEW_WINDOW:
            return
        bucket = self._future_buffer.setdefault(view, [])
        if len(bucket) < FUTURE_BUFFER_LIMIT:
            bucket.append((src, message))

    def _process_current(self, src: ReplicaId, message: Signed) -> None:
        self._check_equivocation(message)
        payload = message.payload
        if isinstance(payload, Propose):
            self._handle_propose(src, message)
        elif isinstance(payload, Prepare):
            self._handle_prepare(src, message)
        elif isinstance(payload, Commit):
            self._handle_commit(src, message)
        elif isinstance(payload, NewLeader):
            self._handle_new_leader(src, message)

    # ------------------------------------------------------------------
    # Algorithm 1, lines 1-5: newView
    # ------------------------------------------------------------------
    def _on_new_view(self, view: View) -> None:
        self._cur_view = view
        self._cur_val = None
        self._voted = False
        self._block_view = False
        self._proposal = None
        self._prune(view)
        self._trace("new-view", view=view)

        if view == 1:
            if self.id == self._leader(view):
                self._propose(self._my_value, justification=None)
        else:
            new_leader = NewLeader(
                view=view,
                prepared_view=self._prepared_view,
                prepared_value=self._prepared_value,
                cert=self._cert,
                domain=self.config.seed_domain,
            )
            signed = self._sign(new_leader)
            self._send_or_local(self._leader(view), signed)
        self._replay_buffered(view)

    def _replay_buffered(self, view: View) -> None:
        pending = self._future_buffer.pop(view, [])
        for src, message in pending:
            # Schedule at zero delay so replay happens after the current
            # handler completes (keeps handlers non-reentrant).
            self._transport.schedule(
                0.0, lambda s=src, m=message: self.on_message(s, m)
            )

    def _prune(self, view: View) -> None:
        for table in (
            self._prepare_collectors,
            self._commit_collectors,
            self._new_leader_collectors,
        ):
            for old in [v for v in table if v < view]:
                del table[old]
        # Strictly-older buffers only: the entry for `view` itself is about
        # to be replayed by _replay_buffered.
        for old in [v for v in self._future_buffer if v < view]:
            del self._future_buffer[old]

    # ------------------------------------------------------------------
    # Algorithm 1, lines 6-12: the leader's proposal
    # ------------------------------------------------------------------
    def _handle_new_leader(self, src: ReplicaId, signed: Signed) -> None:
        view = self._cur_view
        if self.id != self._leader(view) or view <= 1:
            return
        if view in self._proposed_views:
            return
        from .predicates import valid_new_leader

        if not valid_new_leader(signed, view, self.config, self._crypto):
            return
        collector = self._new_leader_collectors.setdefault(
            view, DeterministicQuorumCollector(self.config.n, self.config.f)
        )
        if collector.add(view, signed.signer, signed):
            from .leader import compute_proposal

            quorum = collector.quorum_messages(view)
            value, _v_max = compute_proposal(quorum, self._my_value)
            self._propose(value, justification=tuple(quorum))

    def _propose(self, value: Value, justification: Optional[Tuple[Signed, ...]]) -> None:
        view = self._cur_view
        self._proposed_views.add(view)
        statement = self._sign(
            ProposalStatement(view=view, value=value, domain=self.config.seed_domain)
        )
        propose = Propose(view=view, statement=statement, justification=justification)
        signed = self._sign(propose)
        self._trace("propose", view=view, value=value)
        self._transport.broadcast(signed)
        self._deliver_local(signed)

    # ------------------------------------------------------------------
    # Algorithm 1, lines 13-16: Propose -> Prepare
    # ------------------------------------------------------------------
    def _handle_propose(self, src: ReplicaId, signed: Signed) -> None:
        if self._block_view or self._voted:
            return
        from .predicates import safe_proposal

        if not safe_proposal(signed, self.config, self._crypto):
            return
        propose: Propose = signed.payload
        view = self._cur_view
        value = propose.value
        self._cur_val = value
        self._voted = True
        self._proposal = signed
        self._trace("vote", view=view, value=value)

        sample = self._crypto.vrf.prove(
            self.id,
            phase_seed(view, "prepare", self.config.seed_domain),
            self.config.sample_size,
        )
        prepare = Prepare(statement=propose.statement, sample=sample)
        self._multicast_sample(sample, self._sign(prepare))
        # A prepare quorum may already be sitting in the collector.
        self._try_form_prepared()

    # ------------------------------------------------------------------
    # Algorithm 1, lines 17-20: Prepare quorum -> Commit
    # ------------------------------------------------------------------
    def _handle_prepare(self, src: ReplicaId, signed: Signed) -> None:
        if self._block_view:
            return
        prepare = signed.payload
        if not self._verify_vote(signed, prepare, "prepare"):
            return
        view = self._cur_view
        collector = self._prepare_collectors.setdefault(
            view, ProbabilisticQuorumCollector(self.config.q)
        )
        collector.add(prepare.value, signed.signer, signed)
        self._try_form_prepared()

    def _try_form_prepared(self) -> None:
        view = self._cur_view
        if self._block_view or not self._voted or view in self._committed_views:
            return
        collector = self._prepare_collectors.get(view)
        if collector is None or not collector.has_quorum(self._cur_val):
            return
        # Lines 18-20: store the prepared certificate, multicast Commit.
        self._prepared_value = self._cur_val
        self._prepared_view = view
        self._cert = collector.quorum_messages(self._cur_val)
        self._committed_views.add(view)
        self._trace("prepared", view=view, value=self._cur_val)

        sample = self._crypto.vrf.prove(
            self.id,
            phase_seed(view, "commit", self.config.seed_domain),
            self.config.sample_size,
        )
        assert self._proposal is not None
        commit = Commit(statement=self._proposal.payload.statement, sample=sample)
        self._multicast_sample(sample, self._sign(commit))
        self._try_decide()

    # ------------------------------------------------------------------
    # Algorithm 1, lines 21-22: Commit quorum -> decide
    # ------------------------------------------------------------------
    def _handle_commit(self, src: ReplicaId, signed: Signed) -> None:
        if self._block_view:
            return
        commit = signed.payload
        if not self._verify_vote(signed, commit, "commit"):
            return
        view = self._cur_view
        collector = self._commit_collectors.setdefault(
            view, ProbabilisticQuorumCollector(self.config.q)
        )
        collector.add(commit.value, signed.signer, signed)
        self._try_decide()

    def _try_decide(self) -> None:
        if self._decision is not None or self._block_view:
            return
        view = self._cur_view
        value = self._prepared_value
        if value is None or self._prepared_view != view:
            return
        collector = self._commit_collectors.get(view)
        if collector is None or not collector.has_quorum(value):
            return
        self._decision = Decision(
            replica=self.id, value=value, view=view, time=self._transport.now
        )
        self._trace("decide", view=view, value=value)
        if self._on_decide is not None:
            self._on_decide(self._decision)

    # ------------------------------------------------------------------
    # Algorithm 1, lines 23-25: equivocation detection
    # ------------------------------------------------------------------
    def _check_equivocation(self, message: Signed) -> None:
        if self._block_view or not self._voted:
            return
        statement = extract_statement(message.payload)
        if statement is None:
            return
        inner = statement.payload
        if not isinstance(inner, ProposalStatement):
            return
        view = self._cur_view
        if inner.view != view or inner.domain != self.config.seed_domain:
            return
        if statement.signer != self._leader(view):
            return
        if inner.value == self._cur_val:
            return
        if not self._crypto.signatures.verify(statement):
            return
        # The leader provably signed two different values for this view.
        self._block_view = True
        self._trace(
            "block-view", view=view, ours=self._cur_val, theirs=inner.value
        )
        self._transport.broadcast(message)
        if self._proposal is not None:
            self._transport.broadcast(self._proposal)

    # ------------------------------------------------------------------
    # Validation and plumbing
    # ------------------------------------------------------------------
    def _verify_vote(self, signed: Signed, vote: object, phase_tag: str) -> bool:
        """Shared Prepare/Commit validation (signatures, VRF, membership)."""
        if not isinstance(vote, (Prepare, Commit)):
            return False
        if not self._crypto.signatures.verify(signed):
            return False
        statement = vote.statement
        if not self._crypto.signatures.verify(statement):
            return False
        inner = statement.payload
        if not isinstance(inner, ProposalStatement):
            return False
        view = inner.view
        if view != self._cur_view or inner.domain != self.config.seed_domain:
            return False
        if statement.signer != self._leader(view):
            return False
        sample: VRFOutput = vote.sample
        if self.id not in sample.members():
            return False  # line 17/21 precondition: i ∈ S
        seed = phase_seed(view, phase_tag, self.config.seed_domain)
        return self._crypto.vrf.verify(
            signed.signer, seed, self.config.sample_size, sample
        )

    def _leader(self, view: View) -> ReplicaId:
        return leader_of_view(view, self.config.n)

    def _sign(self, payload: object) -> Signed:
        return self._crypto.signatures.sign(self.id, payload)

    def _send_or_local(self, dst: ReplicaId, message: Signed) -> None:
        if dst == self.id:
            self._deliver_local(message)
        else:
            self._transport.send(dst, message)

    def _multicast_sample(self, sample: VRFOutput, message: Signed) -> None:
        others = [dst for dst in sample.sample if dst != self.id]
        self._transport.multicast(others, message)
        if self.id in sample.sample:
            self._deliver_local(message)

    def _deliver_local(self, message: Signed) -> None:
        self._transport.schedule(
            0.0, lambda: self.on_message(self.id, message)
        )

    def _trace(self, kind: str, **detail) -> None:
        if self._trace_enabled:
            self.trace.append(
                TraceEvent(
                    time=self._transport.now,
                    replica=self.id,
                    kind=kind,
                    detail=detail,
                )
            )
