"""The ProBFT replica state machine (Algorithm 1, line for line).

State (Algorithm 1):

* per-view: ``curView``, ``curVal``, ``voted``, ``blockView``, ``proposal``;
* persistent: ``preparedView``, ``preparedVal``, ``cert`` (the prepared
  certificate), and the decision once made.

Handlers map to the algorithm's "upon" clauses:

* :meth:`_on_new_view`       — lines 1–5 (synchronizer upcall);
* :meth:`_handle_new_leader` — lines 6–12 (leader collects a deterministic
  quorum of NewLeader messages and proposes);
* :meth:`_handle_propose`    — lines 13–16 (vote by multicasting Prepare to a
  VRF sample);
* :meth:`_handle_prepare`    — lines 17–20 (probabilistic prepare quorum →
  prepared certificate → multicast Commit to a fresh VRF sample);
* :meth:`_handle_commit`     — lines 21–22 (probabilistic commit quorum →
  decide);
* :meth:`_check_equivocation`— lines 23–25 (any message carrying a
  leader-signed statement conflicting with ``curVal`` blocks the view and
  gossips the evidence).

Messages for future views are buffered (bounded) and replayed on view entry;
messages for past views are dropped — the paper's "a receiver will only
accept a message if its own view matches the view of the sender".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..config import ProtocolConfig
from ..crypto.context import CryptoContext
from ..crypto.signatures import Signed
from ..crypto.vrf import VRFOutput, phase_seed
from ..messages.base import ProposalStatement
from ..messages.probft import Commit, NewLeader, Prepare, Propose, extract_statement
from ..net.transport import Transport
from .leader import leader_of
from ..quorum.deterministic import DeterministicQuorumCollector
from ..quorum.probabilistic import ProbabilisticQuorumCollector
from ..quorum.probabilistic import _Bucket as _QuorumBucket
from ..sync.synchronizer import ViewSynchronizer, Wish
from ..sync.timeouts import TimeoutPolicy
from ..types import Decision, ReplicaId, TraceEvent, Value, View

#: How far ahead of the current view messages are buffered instead of dropped.
FUTURE_VIEW_WINDOW = 2

#: Cap on buffered messages per future view (DoS guard).
FUTURE_BUFFER_LIMIT = 4096

DecisionCallback = Callable[[Decision], None]


class _VoteToken:
    """Recipient-independent validation of one Prepare/Commit vote.

    Computed once per coalesced fan-out event and shared by every recipient
    in the bucket (see :meth:`ProBFTReplica.on_sample_message`).  Everything
    here is a pure function of the message and the deployment's shared
    crypto/config, never of the receiving replica.
    """

    __slots__ = (
        "is_prepare",
        "view",
        "value",
        "signer",
        "members",
        "valid",
        "eq_candidate",
    )

    def __init__(
        self, is_prepare, view, value, signer, members, valid, eq_candidate
    ) -> None:
        self.is_prepare = is_prepare
        self.view = view
        self.value = value
        self.signer = signer
        self.members = members
        self.valid = valid
        self.eq_candidate = eq_candidate


def prevalidate_vote(
    config: ProtocolConfig, crypto: CryptoContext, message: object
) -> Optional[_VoteToken]:
    """Recipient-independent validation of a Signed Prepare/Commit.

    Pure function of the message and the deployment's shared crypto/config;
    computed once per coalesced fan-out and shared by every recipient.
    ``None`` means the message is not a well-formed vote at all.
    """
    if not isinstance(message, Signed):
        return None
    payload = message.payload
    if not isinstance(payload, (Prepare, Commit)):
        return None
    statement = payload.statement
    inner = getattr(statement, "payload", None)
    if not isinstance(inner, ProposalStatement):
        return None
    view = inner.view
    domain_ok = inner.domain == config.seed_domain
    leader_ok = (
        view >= 1
        and getattr(statement, "signer", None) == leader_of(view, config)
    )
    is_prepare = isinstance(payload, Prepare)
    valid = (
        crypto.signatures.verify(message)
        and crypto.signatures.verify(statement)
        and domain_ok
        and leader_ok
        and crypto.vrf.verify(
            message.signer,
            phase_seed(
                view,
                "prepare" if is_prepare else "commit",
                config.seed_domain,
            ),
            config.sample_size,
            payload.sample,
        )
    )
    return _VoteToken(
        is_prepare=is_prepare,
        view=view,
        value=inner.value,
        signer=message.signer,
        members=payload.sample.members(),
        valid=valid,
        eq_candidate=domain_ok and leader_ok,
    )


class BulkVoteDispatch:
    """One-call-per-bucket delivery kernel for Prepare/Commit fan-outs.

    :meth:`Network._deliver_fanout` hands a whole *raw* coalesced bucket
    here; the dispatch prevalidates the vote once, then fuses the
    observation policy's pruning (:meth:`SampleObservationPolicy.batch_filter`)
    and :meth:`ProBFTReplica.on_sample_message`'s per-recipient behaviour
    into one loop — token fields, collector internals and the quorum
    threshold all held in locals instead of re-resolved per recipient.  At
    n=2000 this loop body runs ~360k times per trial and is the single
    largest cost in a warm trial, which justifies reaching into the
    collector's ``_buckets`` here (the only place that does).

    Deliberate deviations from the generic path, all unobservable in a
    :class:`~repro.harness.trial.RunResult`:

    * adds to an already-fired quorum bucket are skipped outright — the
      generic ``add`` records them, but nothing ever reads a bucket's
      senders/messages past the first ``threshold`` entries;
    * Commit messages are not retained at all — only Prepare certificates
      are ever extracted (``quorum_messages`` feeds ``NewLeader.cert``);
      Commit collectors only ever answer ``has_quorum``;
    * the stop probe is consulted only after events that can actually
      record a decision (quorum completions and generic-path fallbacks) —
      between those the predicate is a constant, so dense's per-delivery
      check returns the same answer;
    * rare branches (non-votes, equivocal-flagged views, conflicting
      equivocation candidates) fall back to the generic handlers rather
      than being replicated here.

    Returns the number of recipients delivered, or -1 to decline the whole
    bucket (the caller filters it and runs its generic per-recipient loop).
    """

    __slots__ = (
        "_config",
        "_crypto",
        "_replicas",
        "_correct",
        "_handlers",
        "_policy",
        "_q",
        "_plans",
    )

    def __init__(
        self, config, crypto, replicas, correct_ids, handlers, policy
    ) -> None:
        self._config = config
        self._crypto = crypto
        self._replicas = replicas
        self._correct = frozenset(correct_ids)
        self._handlers = handlers  # Network's plain handlers (Byzantine dsts)
        self._policy = policy
        self._q = config.q
        # Route plans: (is_prepare, view, value) -> {dst: entry}.  An entry
        # is (replica, senders, acc, messages) once dst has accepted a vote
        # with that key, or False once no such vote can ever matter again —
        # every False transition below is monotone (views only advance,
        # committed views stay committed, decisions and fired quorum buckets
        # are permanent), so a sentinel is never wrong later.
        self._plans = {}

    def __call__(self, src, message, dsts, probe) -> int:
        token = prevalidate_vote(self._config, self._crypto, message)
        if token is None:
            return -1
        view = token.view
        if view in self._policy._equivocal:
            return -1  # dense delivery: any recipient may need the evidence
        if not token.valid:
            # Invalid votes never touch a collector; run the full (rare)
            # per-recipient logic without a route plan.
            return self._deliver_odd(src, message, token, dsts, probe)
        value = token.value
        signer = token.signer
        members = token.members
        is_prepare = token.is_prepare
        q = self._q
        key = (is_prepare, view, value)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._plans[key] = {}
        plan_get = plan.get
        slow_one = self._slow_one
        delivered = 0
        # The predicate only changes when a decision is recorded, which only
        # the branches that set this flag can do.
        check_stop = False
        # Fast-path notes (both loops): the view is not flagged equivocal,
        # so the lines 23-25 conflict branch and _block_view are provably
        # dead for it (both require a second leader-signed value, which
        # flags the view at inspect time before any delivery); likewise
        # ``acc.fired`` subsumes progress pruning — committing a view /
        # deciding latch ``fired`` on this very (view, value) bucket first.
        if is_prepare:
            for dst in dsts:
                if check_stop:
                    if probe is not None and delivered and probe():
                        return delivered  # abandon the bucket: run is over
                    check_stop = False
                entry = plan_get(dst)
                if entry is None:
                    d, cs = slow_one(src, message, token, dst, plan)
                    delivered += d
                    if cs:
                        check_stop = True
                    continue
                if entry is False:
                    continue  # monotone skip (see _plans above)
                replica, senders, acc, msgs = entry
                if acc.fired or replica._cur_view != view:
                    plan[dst] = False  # permanent: quorum done / view left
                    continue
                if dst not in members:
                    continue  # line 17 precondition: i ∈ S
                delivered += 1
                if signer in senders:
                    continue
                senders.add(signer)
                msgs.append((signer, message))
                if len(senders) >= q:
                    acc.fired = True
                    plan[dst] = False
                    replica._try_form_prepared()
                    check_stop = True
        else:
            for dst in dsts:
                if check_stop:
                    if probe is not None and delivered and probe():
                        return delivered  # abandon the bucket: run is over
                    check_stop = False
                entry = plan_get(dst)
                if entry is None:
                    d, cs = slow_one(src, message, token, dst, plan)
                    delivered += d
                    if cs:
                        check_stop = True
                    continue
                if entry is False:
                    continue  # monotone skip (see _plans above)
                replica, senders, acc, msgs = entry
                if acc.fired or replica._cur_view != view:
                    plan[dst] = False  # permanent: quorum done / view left
                    continue
                if dst not in members:
                    continue  # line 21 precondition: i ∈ S
                delivered += 1
                if signer in senders:
                    continue
                senders.add(signer)
                # Commit messages are never appended: commit collectors only
                # ever answer has_quorum, the messages are dead state.
                if len(senders) >= q:
                    acc.fired = True
                    plan[dst] = False
                    replica._try_decide()
                    check_stop = True
        return delivered

    def _slow_one(self, src, message, token, dst, plan):
        """First (or odd) encounter of ``dst`` for a valid vote.

        Runs the full per-recipient logic, installs the dst's route-plan
        entry (or a permanent-skip sentinel) for the fast loops above, and
        returns ``(delivered_delta, check_stop)``.
        """
        if dst not in self._correct:
            self._handlers[dst](src, message)
            return 1, True  # arbitrary handler: be conservative
        view = token.view
        replica = self._replicas[dst]
        cur = replica._cur_view
        if view != cur:
            if cur == 0:
                return 0, False  # not started yet: retry next vote
            if view < cur:
                plan[dst] = False  # views only advance
                return 0, False
            replica._buffer_future(view, src, message)
            return 1, False
        # Progress pruning (see repro.core.observation): this delivery
        # could only mutate collector state that is never read back.
        if token.is_prepare:
            if view in replica._committed_views:
                plan[dst] = False
                return 0, False
        elif replica._decision is not None:
            plan[dst] = False
            return 0, False
        if dst not in token.members:
            return 0, False  # line 17/21 precondition: i ∈ S
        value = token.value
        # Lines 23-25 can only trigger on a conflicting leader-signed
        # statement; defer that rare case to the generic path wholesale.
        if (
            token.eq_candidate
            and replica._voted
            and not replica._block_view
            and value != replica._cur_val
        ):
            replica._process_current(src, message)
            return 1, True
        if replica._block_view:
            return 1, False
        q = self._q
        table = (
            replica._prepare_collectors
            if token.is_prepare
            else replica._commit_collectors
        )
        collector = table.get(cur)
        if collector is None:
            collector = table[cur] = ProbabilisticQuorumCollector(q)
        buckets = collector._buckets
        acc = buckets.get(value)
        if acc is None:
            acc = buckets[value] = _QuorumBucket()
        if acc.fired:
            plan[dst] = False  # post-quorum adds are never read
            return 1, False
        senders = acc.senders
        plan[dst] = (replica, senders, acc, acc.messages)
        if token.signer in senders:
            return 1, False
        senders.add(token.signer)
        if token.is_prepare:
            acc.messages.append((token.signer, message))
        if len(senders) >= q:
            acc.fired = True
            plan[dst] = False
            if token.is_prepare:
                replica._try_form_prepared()
            else:
                replica._try_decide()
            return 1, True
        return 1, False

    def _deliver_odd(self, src, message, token, dsts, probe) -> int:
        """Per-recipient loop for votes that fail prevalidation.

        Such a vote can never reach a collector, but it still has to be
        routed: Byzantine recipients get it verbatim, future views buffer
        it, and a leader-signed conflicting statement riding on it must
        still be able to trigger lines 23-25.
        """
        view = token.view
        value = token.value
        eq_candidate = token.eq_candidate
        correct = self._correct
        replicas = self._replicas
        handlers = self._handlers
        delivered = 0
        check_stop = False
        for dst in dsts:
            if check_stop:
                if probe is not None and delivered and probe():
                    return delivered
                check_stop = False
            if dst not in correct:
                delivered += 1
                handlers[dst](src, message)
                check_stop = True
                continue
            replica = replicas[dst]
            cur = replica._cur_view
            if view != cur:
                if cur == 0 or view < cur:
                    continue
                delivered += 1
                replica._buffer_future(view, src, message)
                continue
            if token.is_prepare:
                if view in replica._committed_views:
                    continue
            elif replica._decision is not None:
                continue
            if dst not in token.members:
                continue
            delivered += 1
            if (
                eq_candidate
                and replica._voted
                and not replica._block_view
                and value != replica._cur_val
            ):
                replica._process_current(src, message)
                check_stop = True
        return delivered


class ProBFTReplica:
    """A correct ProBFT replica."""

    def __init__(
        self,
        replica_id: ReplicaId,
        config: ProtocolConfig,
        crypto: CryptoContext,
        transport: Transport,
        my_value: Value,
        timeout_policy: Optional[TimeoutPolicy] = None,
        on_decide: Optional[DecisionCallback] = None,
        trace: bool = False,
        columnar_state=None,
    ) -> None:
        self.id = replica_id
        self.config = config
        self._crypto = crypto
        self._transport = transport
        self._my_value = my_value
        self._on_decide = on_decide
        self._trace_enabled = trace
        self.trace: List[TraceEvent] = []
        # The config properties recompute ceil(l*sqrt(n)) per access; the
        # delivery fast path reads them per message, so pin them once.
        self._q = config.q

        self._sync = ViewSynchronizer(
            transport=transport,
            f=config.f,
            signatures=crypto.signatures,
            on_new_view=self._on_new_view,
            timeout_policy=timeout_policy,
            domain=config.seed_domain,
        )

        # --- per-view state (Algorithm 1 line 1) ---
        self._cur_view: View = 0
        self._cur_val: Optional[Value] = None
        self._voted: bool = False
        self._block_view: bool = False
        self._proposal: Optional[Signed] = None  # accepted Signed[Propose]

        # --- persistent state ---
        self._prepared_view: View = 0
        self._prepared_value: Optional[Value] = None
        self._cert: Tuple[Signed, ...] = ()
        self._decision: Optional[Decision] = None

        # --- bookkeeping ---
        # Columnar seam: when a shared ColumnarVoteState is supplied, the
        # per-view collector tables materialize array-backed facades on
        # lookup (so kernel-delivered votes are visible even before this
        # replica touched the table) and the mirror columns below track the
        # few state transitions the bulk kernel classifies on.
        self._cells = columnar_state
        if columnar_state is None:
            self._prepare_collectors: Dict[View, ProbabilisticQuorumCollector] = {}
            self._commit_collectors: Dict[View, ProbabilisticQuorumCollector] = {}
        else:
            from .columnar import ColumnarCollectorTable

            self._prepare_collectors = ColumnarCollectorTable(
                columnar_state, True, replica_id
            )
            self._commit_collectors = ColumnarCollectorTable(
                columnar_state, False, replica_id
            )
        self._new_leader_collectors: Dict[View, DeterministicQuorumCollector] = {}
        self._proposed_views: Set[View] = set()
        self._committed_views: Set[View] = set()
        self._future_buffer: Dict[View, List[Tuple[ReplicaId, Signed]]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def decision(self) -> Optional[Decision]:
        """The replica's decision, if it has decided."""
        return self._decision

    @property
    def _cert(self) -> Tuple[Signed, ...]:
        # Columnar mode defers the quorum_messages gather (see
        # _try_form_prepared): a pending [collector, value] pair — a list,
        # so it can never be confused with a materialized cert tuple — is
        # resolved on first read and cached back as the plain tuple.
        data = self._cert_data
        if type(data) is tuple:
            return data
        collector, value = data
        cert = collector.quorum_messages(value)
        self._cert_data = cert
        return cert

    @_cert.setter
    def _cert(self, value: Tuple[Signed, ...]) -> None:
        self._cert_data = value

    @property
    def current_view(self) -> View:
        return self._cur_view

    @property
    def prepared_view(self) -> View:
        return self._prepared_view

    @property
    def prepared_value(self) -> Optional[Value]:
        return self._prepared_value

    @property
    def view_blocked(self) -> bool:
        return self._block_view

    def start(self) -> None:
        """Boot the replica: enter view 1 through the synchronizer."""
        self._sync.start()

    def stop(self) -> None:
        self._sync.stop()

    def on_message(self, src: ReplicaId, message: object) -> None:
        """Network delivery entry point."""
        if not isinstance(message, Signed):
            return  # correct replicas only process signed messages (§2.1)
        payload = message.payload
        if isinstance(payload, Wish):
            self._sync.on_wish(src, message)
            return
        view = self._view_of(payload)
        if view is None:
            return
        if view < self._cur_view or self._cur_view == 0:
            return  # stale (or not yet started)
        if view > self._cur_view:
            self._buffer_future(view, src, message)
            return
        self._process_current(src, message)

    def on_sample_message(self, src: ReplicaId, message: object, shared: dict) -> None:
        """Batched delivery entry point for coalesced fan-outs (sparse mode).

        Recipients of one fan-out event share the recipient-independent
        validation work (signatures, leader check, VRF) through a
        :class:`_VoteToken` stashed in ``shared``; each recipient then does
        only its own per-replica steps, replicating :meth:`on_message`'s
        observable behaviour exactly.  Anything that is not a plain
        current-view vote falls back to the generic path.
        """
        token = shared.get("vote", False)
        if token is False:
            token = self._prevalidate_vote(message)
            shared["vote"] = token
        if token is None:
            self.on_message(src, message)
            return
        view = token.view
        cur = self._cur_view
        if view < cur or cur == 0:
            return  # stale (or not yet started)
        if view > cur:
            self._buffer_future(view, src, message)
            return
        # Lines 23-25 can only trigger on a conflicting leader-signed
        # statement; defer that rare case to the generic path wholesale.
        if (
            token.eq_candidate
            and self._voted
            and not self._block_view
            and token.value != self._cur_val
        ):
            self._process_current(src, message)
            return
        if self._block_view or not token.valid:
            return
        if self.id not in token.members:
            return  # line 17/21 precondition: i ∈ S
        table = (
            self._prepare_collectors
            if token.is_prepare
            else self._commit_collectors
        )
        collector = table.get(cur)
        if collector is None:
            collector = table[cur] = ProbabilisticQuorumCollector(self._q)
        # The quorum re-checks are no-ops unless this add completed one —
        # unlike the generic path we only pay them when it did.
        if collector.add(token.value, token.signer, message):
            if token.is_prepare:
                self._try_form_prepared()
            else:
                self._try_decide()

    def _prevalidate_vote(self, message: object) -> Optional[_VoteToken]:
        """The recipient-independent slice of :meth:`_verify_vote`.

        Returns ``None`` for anything that is not a well-formed Signed
        Prepare/Commit — those take the generic :meth:`on_message` path.
        """
        return prevalidate_vote(self.config, self._crypto, message)

    # ------------------------------------------------------------------
    # Dispatch helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _view_of(payload: object) -> Optional[View]:
        if isinstance(payload, (Propose, NewLeader)):
            return payload.view
        if isinstance(payload, (Prepare, Commit)):
            statement = payload.statement
            inner = getattr(statement, "payload", None)
            if isinstance(inner, ProposalStatement):
                return inner.view
        return None

    def _buffer_future(self, view: View, src: ReplicaId, message: Signed) -> None:
        if view > self._cur_view + FUTURE_VIEW_WINDOW:
            return
        bucket = self._future_buffer.setdefault(view, [])
        if len(bucket) < FUTURE_BUFFER_LIMIT:
            bucket.append((src, message))

    def _process_current(self, src: ReplicaId, message: Signed) -> None:
        self._check_equivocation(message)
        payload = message.payload
        if isinstance(payload, Propose):
            self._handle_propose(src, message)
        elif isinstance(payload, Prepare):
            self._handle_prepare(src, message)
        elif isinstance(payload, Commit):
            self._handle_commit(src, message)
        elif isinstance(payload, NewLeader):
            self._handle_new_leader(src, message)

    # ------------------------------------------------------------------
    # Algorithm 1, lines 1-5: newView
    # ------------------------------------------------------------------
    def _on_new_view(self, view: View) -> None:
        self._cur_view = view
        self._cur_val = None
        self._voted = False
        self._block_view = False
        self._proposal = None
        if self._cells is not None:
            self._cells.note_view(self.id, view, view in self._committed_views)
        self._prune(view)
        self._trace("new-view", view=view)

        if view == 1:
            if self.id == self._leader(view):
                self._propose(self._my_value, justification=None)
        else:
            new_leader = NewLeader(
                view=view,
                prepared_view=self._prepared_view,
                prepared_value=self._prepared_value,
                cert=self._cert,
                domain=self.config.seed_domain,
            )
            signed = self._sign(new_leader)
            self._send_or_local(self._leader(view), signed)
        self._replay_buffered(view)

    def _replay_buffered(self, view: View) -> None:
        pending = self._future_buffer.pop(view, [])
        for src, message in pending:
            # Schedule at zero delay so replay happens after the current
            # handler completes (keeps handlers non-reentrant).
            self._transport.schedule(
                0.0, lambda s=src, m=message: self.on_message(s, m)
            )

    def _prune(self, view: View) -> None:
        for table in (
            self._prepare_collectors,
            self._commit_collectors,
            self._new_leader_collectors,
        ):
            for old in [v for v in table if v < view]:
                del table[old]
        # Strictly-older buffers only: the entry for `view` itself is about
        # to be replayed by _replay_buffered.
        for old in [v for v in self._future_buffer if v < view]:
            del self._future_buffer[old]

    # ------------------------------------------------------------------
    # Algorithm 1, lines 6-12: the leader's proposal
    # ------------------------------------------------------------------
    def _handle_new_leader(self, src: ReplicaId, signed: Signed) -> None:
        view = self._cur_view
        if self.id != self._leader(view) or view <= 1:
            return
        if view in self._proposed_views:
            return
        from .predicates import valid_new_leader

        if not valid_new_leader(signed, view, self.config, self._crypto):
            return
        collector = self._new_leader_collectors.setdefault(
            view, DeterministicQuorumCollector(self.config.n, self.config.f)
        )
        if collector.add(view, signed.signer, signed):
            from .leader import compute_proposal

            quorum = collector.quorum_messages(view)
            value, _v_max = compute_proposal(quorum, self._my_value)
            self._propose(value, justification=tuple(quorum))

    def _propose(self, value: Value, justification: Optional[Tuple[Signed, ...]]) -> None:
        view = self._cur_view
        self._proposed_views.add(view)
        statement = self._sign(
            ProposalStatement(view=view, value=value, domain=self.config.seed_domain)
        )
        propose = Propose(view=view, statement=statement, justification=justification)
        signed = self._sign(propose)
        self._trace("propose", view=view, value=value)
        # Dissemination seam: dense deployments broadcast (the reference
        # semantics, bit-identical to before the seam existed); gossip
        # deployments sample-and-forward instead (O(log n) fan-out per node).
        self._transport.disseminate(signed)
        self._deliver_local(signed)

    # ------------------------------------------------------------------
    # Algorithm 1, lines 13-16: Propose -> Prepare
    # ------------------------------------------------------------------
    def _handle_propose(self, src: ReplicaId, signed: Signed) -> None:
        if self._block_view or self._voted:
            return
        from .predicates import safe_proposal

        if not safe_proposal(signed, self.config, self._crypto):
            return
        propose: Propose = signed.payload
        view = self._cur_view
        value = propose.value
        self._cur_val = value
        self._voted = True
        self._proposal = signed
        self._trace("vote", view=view, value=value)

        sample = self._crypto.vrf.prove(
            self.id,
            phase_seed(view, "prepare", self.config.seed_domain),
            self.config.sample_size,
        )
        prepare = Prepare(statement=propose.statement, sample=sample)
        self._multicast_sample(sample, self._sign(prepare))
        # A prepare quorum may already be sitting in the collector.
        self._try_form_prepared()

    # ------------------------------------------------------------------
    # Algorithm 1, lines 17-20: Prepare quorum -> Commit
    # ------------------------------------------------------------------
    def _handle_prepare(self, src: ReplicaId, signed: Signed) -> None:
        if self._block_view:
            return
        prepare = signed.payload
        if not self._verify_vote(signed, prepare, "prepare"):
            return
        view = self._cur_view
        collector = self._prepare_collectors.setdefault(
            view, ProbabilisticQuorumCollector(self.config.q)
        )
        collector.add(prepare.value, signed.signer, signed)
        self._try_form_prepared()

    def _try_form_prepared(self) -> None:
        view = self._cur_view
        if self._block_view or not self._voted or view in self._committed_views:
            return
        collector = self._prepare_collectors.get(view)
        if collector is None or not collector.has_quorum(self._cur_val):
            return
        # Lines 18-20: store the prepared certificate, multicast Commit.
        self._prepared_value = self._cur_val
        self._prepared_view = view
        if self._cells is not None:
            # Columnar slots are never reclaimed within a trial and latch at
            # quorum, so cert materialization (a q-wide gather) can wait for
            # an actual read — NewLeader at view change, or the audit.  Most
            # trials decide in view 1 and never pay it.
            self._cert_data = [collector, self._cur_val]
            self._cells.note_committed(self.id)
        else:
            self._cert = collector.quorum_messages(self._cur_val)
        self._committed_views.add(view)
        self._trace("prepared", view=view, value=self._cur_val)

        sample = self._crypto.vrf.prove(
            self.id,
            phase_seed(view, "commit", self.config.seed_domain),
            self.config.sample_size,
        )
        assert self._proposal is not None
        commit = Commit(statement=self._proposal.payload.statement, sample=sample)
        self._multicast_sample(sample, self._sign(commit))
        self._try_decide()

    # ------------------------------------------------------------------
    # Algorithm 1, lines 21-22: Commit quorum -> decide
    # ------------------------------------------------------------------
    def _handle_commit(self, src: ReplicaId, signed: Signed) -> None:
        if self._block_view:
            return
        commit = signed.payload
        if not self._verify_vote(signed, commit, "commit"):
            return
        view = self._cur_view
        collector = self._commit_collectors.setdefault(
            view, ProbabilisticQuorumCollector(self.config.q)
        )
        collector.add(commit.value, signed.signer, signed)
        self._try_decide()

    def _try_decide(self) -> None:
        if self._decision is not None or self._block_view:
            return
        view = self._cur_view
        value = self._prepared_value
        if value is None or self._prepared_view != view:
            return
        collector = self._commit_collectors.get(view)
        if collector is None or not collector.has_quorum(value):
            return
        self._decision = Decision(
            replica=self.id, value=value, view=view, time=self._transport.now
        )
        if self._cells is not None:
            self._cells.note_decided(self.id)
        self._trace("decide", view=view, value=value)
        if self._on_decide is not None:
            self._on_decide(self._decision)

    # ------------------------------------------------------------------
    # Algorithm 1, lines 23-25: equivocation detection
    # ------------------------------------------------------------------
    def _check_equivocation(self, message: Signed) -> None:
        if self._block_view or not self._voted:
            return
        statement = extract_statement(message.payload)
        if statement is None:
            return
        inner = statement.payload
        if not isinstance(inner, ProposalStatement):
            return
        view = self._cur_view
        if inner.view != view or inner.domain != self.config.seed_domain:
            return
        if statement.signer != self._leader(view):
            return
        if inner.value == self._cur_val:
            return
        if not self._crypto.signatures.verify(statement):
            return
        # The leader provably signed two different values for this view.
        self._block_view = True
        if self._cells is not None:
            self._cells.note_blocked(self.id)
        self._trace(
            "block-view", view=view, ours=self._cur_val, theirs=inner.value
        )
        self._transport.broadcast(message)
        if self._proposal is not None:
            self._transport.broadcast(self._proposal)

    # ------------------------------------------------------------------
    # Validation and plumbing
    # ------------------------------------------------------------------
    def _verify_vote(self, signed: Signed, vote: object, phase_tag: str) -> bool:
        """Shared Prepare/Commit validation (signatures, VRF, membership)."""
        if not isinstance(vote, (Prepare, Commit)):
            return False
        if not self._crypto.signatures.verify(signed):
            return False
        statement = vote.statement
        if not self._crypto.signatures.verify(statement):
            return False
        inner = statement.payload
        if not isinstance(inner, ProposalStatement):
            return False
        view = inner.view
        if view != self._cur_view or inner.domain != self.config.seed_domain:
            return False
        if statement.signer != self._leader(view):
            return False
        sample: VRFOutput = vote.sample
        if self.id not in sample.members():
            return False  # line 17/21 precondition: i ∈ S
        seed = phase_seed(view, phase_tag, self.config.seed_domain)
        return self._crypto.vrf.verify(
            signed.signer, seed, self.config.sample_size, sample
        )

    def _leader(self, view: View) -> ReplicaId:
        return leader_of(view, self.config)

    def _sign(self, payload: object) -> Signed:
        return self._crypto.signatures.sign(self.id, payload)

    def _send_or_local(self, dst: ReplicaId, message: Signed) -> None:
        if dst == self.id:
            self._deliver_local(message)
        else:
            self._transport.send(dst, message)

    def _multicast_sample(self, sample: VRFOutput, message: Signed) -> None:
        # Samples are drawn without replacement, so self appears at most
        # once; C-level index + slice beats filtering ~s elements per vote.
        # The sliced target tuple is cached on the (frozen, memo-stable)
        # output object: only the prover ever multicasts its own sample, and
        # pooled trials reuse the same VRFOutput — so the slice happens once
        # per pool entry and downstream identity-keyed caches (the columnar
        # kernel's ndarray memo) see one stable tuple object per sample.
        cached = sample.__dict__.get("_mcast")
        if cached is not None and cached[0] == self.id:
            targets, has_self = cached[1], cached[2]
        else:
            full = sample.sample
            try:
                i = full.index(self.id)
                targets = full[:i] + full[i + 1 :]
                has_self = True
            except ValueError:
                targets = full
                has_self = False
            sample.__dict__["_mcast"] = (self.id, targets, has_self)
        self._transport.multicast(targets, message)
        if has_self:
            self._deliver_local(message)

    def _deliver_local(self, message: Signed) -> None:
        self._transport.schedule(
            0.0, lambda: self.on_message(self.id, message)
        )

    def _trace(self, kind: str, **detail) -> None:
        if self._trace_enabled:
            self.trace.append(
                TraceEvent(
                    time=self._transport.now,
                    replica=self.id,
                    kind=kind,
                    detail=detail,
                )
            )
