"""Leader rotation and the proposal-selection rule.

The paper (1-based IDs) defines ``leader(v) = (v − 1 mod n) + 1``; with our
0-based IDs this is ``(v − 1) mod n`` — round-robin starting at replica 0 in
view 1.

The proposal rule (Algorithm 1 lines 7–12): from a deterministic quorum ``M``
of NewLeader messages, take ``v_max``, the newest view in which any sender
prepared; among the senders that prepared in ``v_max``, propose the most
frequent value (``mode``).  If nobody prepared anything, the leader is free
to propose its own value.

Mode ties: the paper's ``mode`` is ambiguous under ties.  We resolve
deterministically — the leader picks the smallest value in byte order, and
``safeProposal`` accepts *any* value in the mode set, so a correct leader's
choice always validates and a Byzantine leader gains nothing (any modal value
was prepared by a plurality of the quorum).
"""

from __future__ import annotations

from collections import Counter
from typing import FrozenSet, Iterable, Optional, Tuple

from ..crypto.signatures import Signed
from ..messages.probft import NewLeader
from ..types import ReplicaId, Value, View


def leader_of_view(view: View, n: int) -> ReplicaId:
    """Round-robin leader of ``view`` (0-based IDs)."""
    if view < 1:
        raise ValueError(f"views are numbered from 1, got {view}")
    return (view - 1) % n


def leader_of(view: View, config) -> ReplicaId:
    """Config-aware leader schedule: ``(view − 1 + leader_offset) mod n``.

    With the default ``leader_offset = 0`` this is exactly the paper's
    ``leader_of_view``; the SMR layer's rotating mode sets a per-slot offset
    so every slot's view-1 leader is a different replica.
    """
    if view < 1:
        raise ValueError(f"views are numbered from 1, got {view}")
    return (view - 1 + config.leader_offset) % config.n


def mode_values(values: Iterable[Value]) -> FrozenSet[Value]:
    """The set of most frequent values (ties included); empty for no input."""
    counts = Counter(values)
    if not counts:
        return frozenset()
    top = max(counts.values())
    return frozenset(v for v, c in counts.items() if c == top)


def max_prepared_view(messages: Iterable[NewLeader]) -> View:
    """``v_max`` — the newest prepared view reported in ``M`` (0 if none)."""
    return max((m.prepared_view for m in messages), default=0)


def compute_proposal(
    new_leader_messages: Iterable[Signed],
    my_value: Value,
) -> Tuple[Value, Optional[View]]:
    """Apply lines 7–12: returns ``(value_to_propose, v_max or None)``.

    ``new_leader_messages`` are (already validated) ``Signed[NewLeader]``.
    Returns ``v_max = None`` when no sender prepared anything, in which case
    the proposal is the leader's own ``my_value``.
    """
    payloads = [m.payload for m in new_leader_messages]
    v_max = max_prepared_view(payloads)
    if v_max == 0:
        return my_value, None
    candidates = [
        m.prepared_value
        for m in payloads
        if m.prepared_view == v_max and m.prepared_value is not None
    ]
    modes = mode_values(candidates)
    if not modes:
        return my_value, None
    return min(modes), v_max
