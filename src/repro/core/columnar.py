"""Columnar (array-backed) replica vote state for large-n trials.

The per-object hot path — one ``_Bucket`` (a Python ``set`` + ``list``) per
(replica, phase, view, value) plus a dict lookup per delivered vote — is what
caps trials near n≈5000: ~n·s live Python objects per trial dominate memory
and cache misses (see ROADMAP).  This module stores the same bookkeeping in
preallocated numpy arrays shared by *all* replicas of a deployment:

* **voter bitmaps** — one packed ``uint64`` plane of shape ``(words, n)``
  per (phase, view, value) slot; bit ``signer`` of column ``dst`` says
  "``dst`` accepted a vote from ``signer``".  The word-major layout keeps a
  whole fan-out's dedup test inside one contiguous n-vector (the signer is
  fixed per coalesced bucket, so only word ``signer >> 6`` is touched).
* **per-slot counters** — ``counts[dst]`` (distinct accepted senders) and
  ``fired[dst]`` (quorum reported), replacing ``len(bucket.senders)`` and
  ``bucket.fired``.
* **arrival order** — prepare slots additionally keep ``order[dst, :q]``
  (the first ``q`` signers in arrival order) plus one shared
  ``signer -> Signed`` map, from which a dst's prepared certificate is
  rebuilt *object-identical* to the dense collector's
  ``quorum_messages`` tuple (each signer contributes exactly one envelope
  per slot).  Commit slots retain no messages at all — the same discipline
  :class:`~repro.core.replica.BulkVoteDispatch` already applies.
* **mirror columns** — ``views``/``blocked``/``decided``/``committed_cur``
  per replica, updated by the replica state machine at its (few) mutation
  points, so the delivery kernel classifies a whole fan-out bucket with
  vectorized gathers instead of attribute chases.

Everything is behind the ``columnar=True`` deployment seam and follows the
same contract as sparse delivery and gossip dissemination: a columnar run's
:class:`~repro.harness.trial.RunResult` is **bit-identical** to the dense
run for the same seed.  The kernel declines (-1) any bucket it cannot prove
equivalent — equivocal views, invalid votes, and deployments with network
duplication (duplicate deliveries break the distinct-recipients invariant)
— which then takes the generic per-recipient path through the same arrays.

This module imports numpy at module level; import it lazily (the deployment
does) so numpy stays an optional dependency.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set, Tuple

import numpy as np

from ..errors import QuorumError
from .replica import BulkVoteDispatch, prevalidate_vote

__all__ = [
    "ColumnarVoteState",
    "ColumnarQuorumCollector",
    "ColumnarCollectorTable",
    "ColumnarVoteDispatch",
    "bitmap_from_ids",
    "bitmap_ids",
    "bitmap_popcount",
    "bitmap_merge",
    "bitmap_words",
]


# id(tuple) -> (tuple, ndarray): multicast target tuples are cached on their
# memo-stable VRFOutput (see Replica._multicast_sample), and the memoized VRF
# is shared across pooled same-config trials — so the tuple→ndarray
# conversion happens once per sample *object*, not once per delivery or even
# once per trial.  Module-level so every deployment's kernel shares it;
# identity is re-checked on hit and the tuple pinned alive, the same
# discipline as every other id-keyed cache in this codebase.
_DSTS_NDARRAY_CACHE: "OrderedDict[int, tuple]" = OrderedDict()
#: Bound for the id(dsts)→ndarray memo; ~2 tuples per replica per view.
_DSTS_CACHE_LIMIT = 16384


# ----------------------------------------------------------------------
# Packed-bitmap primitives (unit-testable building blocks)
# ----------------------------------------------------------------------

def bitmap_words(n: int) -> int:
    """Number of ``uint64`` words covering ``n`` bit positions."""
    return (n + 63) >> 6


def bitmap_from_ids(ids, n: int) -> np.ndarray:
    """Pack a collection of ids from ``range(n)`` into uint64 words."""
    words = np.zeros(bitmap_words(n), dtype=np.uint64)
    for i in ids:
        if not 0 <= i < n:
            raise ValueError(f"id {i} out of range [0, {n})")
        words[i >> 6] |= np.uint64(1 << (i & 63))
    return words


def bitmap_ids(words: np.ndarray) -> Tuple[int, ...]:
    """Unpack a word array back into its sorted member ids."""
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return tuple(np.nonzero(bits)[0].tolist())


def bitmap_popcount(words: np.ndarray) -> int:
    """Total set bits across ``words`` (vectorized popcount)."""
    if hasattr(np, "bitwise_count"):
        return int(np.bitwise_count(words).sum())
    # SWAR fallback for numpy < 2.0.
    v = words.copy()
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h = np.uint64(0x0101010101010101)
    v -= (v >> np.uint64(1)) & m1
    v = (v & m2) + ((v >> np.uint64(2)) & m2)
    v = (v + (v >> np.uint64(4))) & m4
    return int(((v * h) >> np.uint64(56)).sum())


def bitmap_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Union of two packed bitmaps (new array; inputs untouched)."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a | b


# ----------------------------------------------------------------------
# Slot storage
# ----------------------------------------------------------------------

class _Slot:
    """Array-backed accumulator for one (phase, view, value) key.

    The columnar twin of one ``_Bucket`` *per replica*: row/column ``dst``
    of each array is what ``replica._{prepare,commit}_collectors[view].
    _buckets[value]`` holds in dense mode.
    """

    __slots__ = ("counts", "fired", "seen", "order", "msg_by_signer")

    def __init__(self, n: int, words: int, q: int, is_prepare: bool) -> None:
        self.counts = np.zeros(n, dtype=np.int32)
        self.fired = np.zeros(n, dtype=bool)
        # Word-major: seen[w] is the contiguous n-vector of word w across
        # all recipients — one coalesced bucket only ever touches the word
        # of its (fixed) signer.
        self.seen = np.zeros((words, n), dtype=np.uint64)
        if is_prepare:
            self.order = np.zeros((n, q), dtype=np.int32)
            # signer -> first accepted Signed envelope, as a flat list so
            # cert reconstruction (n·q lookups per view) is an index, not a
            # hash, per message.
            self.msg_by_signer: Optional[list] = [None] * n
        else:
            # Commit certificates are never extracted (BulkVoteDispatch
            # discipline): commit slots only ever answer has_quorum.
            self.order = None
            self.msg_by_signer = None


class ColumnarVoteState:
    """Shared columnar vote/quorum state for one deployment.

    Holds the per-replica mirror columns the delivery kernel classifies
    buckets with, plus the lazily-created per-(phase, view, value) slots.
    One instance is shared by every correct replica of a deployment.
    """

    __slots__ = (
        "n",
        "q",
        "words",
        "views",
        "blocked",
        "decided",
        "committed_cur",
        "prepare_active",
        "commit_active",
        "correct",
        "has_byz",
        "any_blocked",
        "_slots",
    )

    def __init__(self, n: int, q: int, correct_ids) -> None:
        self.n = n
        self.q = q
        self.words = bitmap_words(n)
        #: Mirror columns, updated by the replica state machine's guarded
        #: hooks (see ProBFTReplica): current view, lines 23-25 block flag,
        #: decision latch, and "current view is committed" — everything the
        #: per-recipient slow path reads before touching a collector.
        self.views = np.zeros(n, dtype=np.int64)
        self.blocked = np.zeros(n, dtype=bool)
        self.decided = np.zeros(n, dtype=bool)
        self.committed_cur = np.zeros(n, dtype=bool)
        #: Fused eligibility columns: ``prepare_active[r] == v`` iff replica
        #: ``r`` would *count* a view-``v`` Prepare right now — at view
        #: ``v``, not blocked, and ``v`` not already committed (``commit_
        #: active`` likewise, with "not decided").  Folding the view match,
        #: the block flag and the progress pruning into one int compare
        #: turns the kernel's three gathers per bucket into one.
        self.prepare_active = np.zeros(n, dtype=np.int64)
        self.commit_active = np.zeros(n, dtype=np.int64)
        self.correct = np.zeros(n, dtype=bool)
        if correct_ids:
            self.correct[np.fromiter(correct_ids, dtype=np.intp)] = True
        #: Scalar fast-path flags: with no Byzantine replica nothing in a
        #: bucket is a handler stop, and until anyone blocks a view the
        #: blocked gather is a guaranteed all-False.
        self.has_byz = len(correct_ids) < n
        self.any_blocked = False
        self._slots: Dict[Tuple[bool, int, object], _Slot] = {}

    def note_view(self, replica: int, view: int, committed: bool) -> None:
        """Mirror hook for ``_on_new_view`` (lines 1-5)."""
        self.views[replica] = view
        self.blocked[replica] = False
        self.committed_cur[replica] = committed
        self.prepare_active[replica] = 0 if committed else view
        self.commit_active[replica] = 0 if self.decided[replica] else view

    def note_blocked(self, replica: int) -> None:
        """Mirror hook for the lines 23-25 block transition."""
        self.blocked[replica] = True
        self.any_blocked = True
        self.prepare_active[replica] = 0
        self.commit_active[replica] = 0

    def note_committed(self, replica: int) -> None:
        """Mirror hook for lines 18-20: current view committed."""
        self.committed_cur[replica] = True
        self.prepare_active[replica] = 0

    def note_decided(self, replica: int) -> None:
        """Mirror hook for lines 21-22: decision latched."""
        self.decided[replica] = True
        self.commit_active[replica] = 0

    def slot(self, is_prepare: bool, view: int, value) -> _Slot:
        key = (is_prepare, view, value)
        slot = self._slots.get(key)
        if slot is None:
            slot = self._slots[key] = _Slot(
                self.n, self.words, self.q, is_prepare
            )
        return slot

    def peek(self, is_prepare: bool, view: int, value) -> Optional[_Slot]:
        return self._slots.get((is_prepare, view, value))


# ----------------------------------------------------------------------
# The collector facade (generic per-recipient path)
# ----------------------------------------------------------------------

class ColumnarQuorumCollector:
    """Quorum-collector API over one replica's columns of the shared state.

    Drop-in for :class:`~repro.quorum.probabilistic.
    ProbabilisticQuorumCollector` in the replica's per-view tables: the
    generic handlers (``_handle_prepare``/``_handle_commit``/
    ``on_sample_message``) call ``add`` per delivered vote, and the quorum
    checks (``has_quorum``/``quorum_messages``) read the same arrays the
    bulk kernel writes — so kernel-delivered and handler-delivered votes
    land in one place.

    Deliberate (unobservable) deviation shared with the bulk kernel: adds
    to an already-fired key are dropped instead of recorded — nothing ever
    reads a bucket's senders/messages past the first ``threshold`` entries.
    """

    __slots__ = ("_state", "_is_prepare", "_view", "_dst")

    def __init__(
        self, state: ColumnarVoteState, is_prepare: bool, view: int, dst: int
    ) -> None:
        self._state = state
        self._is_prepare = is_prepare
        self._view = view
        self._dst = dst

    @property
    def threshold(self) -> int:
        return self._state.q

    def add(self, key, sender: int, message) -> bool:
        """Record a vote; True iff this addition completes the quorum."""
        state = self._state
        slot = state.slot(self._is_prepare, self._view, key)
        dst = self._dst
        if slot.fired[dst]:
            return False
        wi = sender >> 6
        bit = np.uint64(1 << (sender & 63))
        if slot.seen[wi, dst] & bit:
            return False
        slot.seen[wi, dst] |= bit
        c = int(slot.counts[dst])
        slot.counts[dst] = c + 1
        if self._is_prepare:
            slot.order[dst, c] = sender
            if slot.msg_by_signer[sender] is None:
                slot.msg_by_signer[sender] = message
        if c + 1 >= state.q:
            slot.fired[dst] = True
            return True
        return False

    def count(self, key) -> int:
        slot = self._state.peek(self._is_prepare, self._view, key)
        return int(slot.counts[self._dst]) if slot is not None else 0

    def has_quorum(self, key) -> bool:
        slot = self._state.peek(self._is_prepare, self._view, key)
        return bool(slot is not None and slot.fired[self._dst])

    def senders(self, key) -> Set[int]:
        slot = self._state.peek(self._is_prepare, self._view, key)
        if slot is None:
            return set()
        return set(bitmap_ids(np.ascontiguousarray(slot.seen[:, self._dst])))

    def messages(self, key) -> Tuple[object, ...]:
        """The retained messages (first ``threshold`` accepted, in order)."""
        if not self._is_prepare:
            return ()
        slot = self._state.peek(self._is_prepare, self._view, key)
        if slot is None:
            return ()
        count = min(int(slot.counts[self._dst]), self._state.q)
        by_signer = slot.msg_by_signer
        return tuple(
            by_signer[s]
            for s in slot.order[self._dst, :count].tolist()
        )

    def quorum_messages(self, key) -> Tuple[object, ...]:
        slot = self._state.peek(self._is_prepare, self._view, key)
        if slot is None or not slot.fired[self._dst]:
            raise QuorumError(f"no quorum formed for key {key!r}")
        by_signer = slot.msg_by_signer
        return tuple(
            by_signer[s]
            for s in slot.order[self._dst, : self._state.q].tolist()
        )

    def keys(self) -> Tuple[object, ...]:
        state = self._state
        return tuple(
            value
            for (is_prepare, view, value), slot in state._slots.items()
            if is_prepare == self._is_prepare
            and view == self._view
            and slot.counts[self._dst] > 0
        )

    def clear(self) -> None:
        """Reset this replica's columns for every key of the view."""
        state = self._state
        dst = self._dst
        for (is_prepare, view, _value), slot in state._slots.items():
            if is_prepare != self._is_prepare or view != self._view:
                continue
            slot.counts[dst] = 0
            slot.fired[dst] = False
            slot.seen[:, dst] = 0


class ColumnarCollectorTable(dict):
    """Per-view collector table that materializes facades on demand.

    The replica's handlers look collectors up with ``get``/``setdefault``
    before reading quorum state; in columnar mode the underlying arrays
    exist (and may already hold kernel-delivered votes) whether or not this
    replica ever constructed a facade — so lookup *creates* the facade
    instead of reporting absence.  ``setdefault`` ignores the caller's
    dense-collector default for the same reason.
    """

    __slots__ = ("_state", "_is_prepare", "_dst")

    def __init__(
        self, state: ColumnarVoteState, is_prepare: bool, dst: int
    ) -> None:
        super().__init__()
        self._state = state
        self._is_prepare = is_prepare
        self._dst = dst

    def get(self, view, default=None):
        collector = dict.get(self, view)
        if collector is None:
            collector = self[view] = ColumnarQuorumCollector(
                self._state, self._is_prepare, view, self._dst
            )
        return collector

    def setdefault(self, view, default=None):
        return self.get(view)


# ----------------------------------------------------------------------
# The vectorized delivery kernel
# ----------------------------------------------------------------------

class ColumnarVoteDispatch(BulkVoteDispatch):
    """Array-at-a-time twin of :class:`~repro.core.replica.BulkVoteDispatch`.

    Classifies a whole coalesced Prepare/Commit bucket with vectorized
    gathers over the mirror columns, applies the accepted votes as masked
    scatters into the slot arrays, and only drops to scalar code at the
    *stop points* dense mode also serializes on: Byzantine recipients
    (arbitrary handlers) and quorum completions (which can record a
    decision and flip the stop probe).  Between consecutive stop points
    every recipient's update is independent — a fan-out's recipients are
    distinct (VRF samples are drawn without replacement) and a delivery
    only mutates its own recipient's columns — so applying a segment in
    one shot reorders nothing observable.

    Decline rules (return -1, caller runs the generic path over the same
    arrays): non-votes, equivocal-flagged views, and any deployment with
    network duplication enabled — duplicated recipients would appear twice
    in one bucket and break the distinct-recipients invariant the masked
    scatters rely on.  Invalid votes take the inherited per-recipient
    ``_deliver_odd`` loop, exactly like the dense kernel.
    """

    __slots__ = ("_state", "_dup")

    def __init__(
        self,
        config,
        crypto,
        replicas,
        correct_ids,
        handlers,
        policy,
        state: ColumnarVoteState,
        dup_possible: bool = False,
    ) -> None:
        super().__init__(config, crypto, replicas, correct_ids, handlers, policy)
        self._state = state
        self._dup = dup_possible

    def __call__(self, src, message, dsts, probe) -> int:
        if self._dup:
            return -1  # duplicated recipients: distinct-dsts invariant gone
        token = prevalidate_vote(self._config, self._crypto, message)
        if token is None:
            return -1
        view = token.view
        if view in self._policy._equivocal:
            return -1  # dense delivery: any recipient may need the evidence
        if not token.valid:
            return self._deliver_odd(src, message, token, dsts, probe)

        state = self._state
        signer = token.signer
        is_prepare = token.is_prepare
        q = self._q
        slot = state.slot(is_prepare, view, token.value)

        if type(dsts) is tuple:
            cache = _DSTS_NDARRAY_CACHE
            entry = cache.get(id(dsts))
            if entry is not None and entry[0] is dsts:
                D = entry[1]
            else:
                D = np.asarray(dsts, dtype=np.intp)
                cache[id(dsts)] = (dsts, D)
                if len(cache) > _DSTS_CACHE_LIMIT:
                    cache.popitem(last=False)
        else:
            D = np.asarray(dsts, dtype=np.intp)
        if D.shape[0] == 0:
            return 0
        # One gather classifies countability: the active column fuses the
        # view match, the lines 23-25 block flag, and progress pruning
        # (committed view / decision latch) into a single int compare.
        # Byzantine replicas never enter a view, so they are never active
        # either — at-active implies correct.
        active = state.prepare_active if is_prepare else state.commit_active
        elig = active[D] == view
        if not (state.correct[src] and signer == src):
            # Not a correct sender's own-sample multicast: check i ∈ S.
            member = np.zeros(state.n, dtype=bool)
            member[
                np.fromiter(
                    token.members, dtype=np.intp, count=len(token.members)
                )
            ] = True
            elig &= member[D]
        all_elig = bool(elig.all())
        c = slot.counts[D]
        wi = signer >> 6
        bit = np.uint64(1 << (signer & 63))

        if not state.has_byz:
            # No Byzantine replica: no arbitrary-handler stops and no
            # replayed envelopes (a correct sender multicasts each vote
            # exactly once), so the seen-bit dedup test is a guaranteed
            # all-pass and ``counts`` alone encodes fired (latched at q).
            if all_elig and int(c.max()) < q - 1:
                # Ramp-up fast path: every recipient counts, none fires.
                slot.seen[wi, D] |= bit
                slot.counts[D] = c + 1
                if is_prepare:
                    slot.order[D, c] = signer
                    if slot.msg_by_signer[signer] is None:
                        slot.msg_by_signer[signer] = message
                return int(D.shape[0])
            if all_elig:
                new = c < q
                fires = c == q - 1
            else:
                new = elig & (c < q)
                fires = elig & (c == q - 1)
            correct_D = None
            stops = fires
        else:
            col = slot.seen[wi, D]
            new = elig & ((col & bit) == 0) & (c < q)
            fires = new & (c == q - 1)
            correct_D = state.correct[D]
            stops = fires | ~correct_D

        if all_elig:
            future = None
        else:
            # Views stuck at 0 (not started / Byzantine) are neither
            # at-view nor future; at-view-but-pruned is not future either.
            views_D = state.views[D]
            future = (views_D != 0) & (views_D < view)

        replicas = self._replicas
        order = slot.order
        msg_by_signer = slot.msg_by_signer

        stop_idx = np.nonzero(stops)[0]
        if stop_idx.size == 0:
            # No handler runs and no quorum completes: the whole bucket is
            # one segment, applied in one masked scatter.
            idx = np.nonzero(new)[0]
            if idx.size:
                dn = D[idx]
                c_old = c[idx]
                slot.seen[wi, dn] |= bit
                slot.counts[dn] = c_old + 1
                if is_prepare:
                    order[dn, c_old] = signer
                    if msg_by_signer[signer] is None:
                        msg_by_signer[signer] = message
            if all_elig:
                return int(D.shape[0])
            delivered = int(np.count_nonzero(elig))
            if future.any():
                delivered += int(np.count_nonzero(future))
                for d in D[future].tolist():
                    replicas[d]._buffer_future(view, src, message)
            return delivered

        if correct_D is None:
            # No-byz fire path: every stop is a quorum completion whose
            # handler is this kernel's own latch + quorum re-check, and a
            # re-check only reads its *own* replica's column — so all column
            # updates (counting recipients and firing recipients alike; a
            # fire's ``c+1`` lands exactly at q) can land in ONE masked
            # scatter before the scalar re-check loop.  A probe early-exit
            # then leaves later recipients' columns over-applied relative to
            # dense, which is unobservable: the probe mirrors ``stop_when``,
            # so the run ends before anything reads those columns, and the
            # delivered count returned below still follows dense exactly.
            idx = np.nonzero(new)[0]
            dn = D[idx]
            slot.seen[wi, dn] |= bit
            c_old = c[idx]
            slot.counts[dn] = c_old + 1
            if is_prepare:
                order[dn, c_old] = signer
                if msg_by_signer[signer] is None:
                    msg_by_signer[signer] = message
            slot.fired[D[stop_idx]] = True
            delivered = 0
            start = 0
            for si, d in zip(
                stop_idx.tolist(), D[stop_idx].tolist()
            ):
                if all_elig:
                    delivered = si + 1
                else:
                    sl = slice(start, si)
                    delivered += int(np.count_nonzero(elig[sl])) + 1
                    if future[sl].any():
                        delivered += int(np.count_nonzero(future[sl]))
                        for fd in D[sl][future[sl]].tolist():
                            replicas[fd]._buffer_future(view, src, message)
                start = si + 1
                replica = replicas[d]
                if is_prepare:
                    replica._try_form_prepared()
                else:
                    replica._try_decide()
                # Dense probes before the delivery after any stop event; a
                # trailing probe with nothing left returns the same count.
                if probe is not None and probe():
                    return delivered
            if all_elig:
                return int(D.shape[0])
            sl = slice(start, D.shape[0])
            delivered += int(np.count_nonzero(elig[sl]))
            if future[sl].any():
                delivered += int(np.count_nonzero(future[sl]))
                for fd in D[sl][future[sl]].tolist():
                    replicas[fd]._buffer_future(view, src, message)
            return delivered

        def span(a: int, b: int) -> int:
            """Apply one stop-free segment's updates; returns deliveries."""
            if b <= a:
                return 0
            sl = slice(a, b)
            nw = new[sl]
            if nw.any():
                idx = np.nonzero(nw)[0] + a
                dn = D[idx]
                slot.seen[wi, dn] |= bit
                c_old = c[idx]
                slot.counts[dn] = c_old + 1
                if is_prepare:
                    order[dn, c_old] = signer
                    if msg_by_signer[signer] is None:
                        msg_by_signer[signer] = message
            if all_elig:
                return b - a
            n_delivered = int(np.count_nonzero(elig[sl]))
            if future[sl].any():
                n_delivered += int(np.count_nonzero(future[sl]))
                for d in D[sl][future[sl]].tolist():
                    replicas[d]._buffer_future(view, src, message)
            return n_delivered

        handlers = self._handlers
        delivered = 0
        start = 0
        for si in stop_idx.tolist():
            delivered += span(start, si)
            d = int(D[si])
            delivered += 1
            if correct_D is None or correct_D[si]:
                # Quorum completion: latch the slot, then run the quorum
                # re-check — the facade table materializes the collector
                # the replica reads, backed by these same arrays.
                slot.seen[wi, d] |= bit
                slot.counts[d] = q
                if is_prepare:
                    order[d, q - 1] = signer
                    if msg_by_signer[signer] is None:
                        msg_by_signer[signer] = message
                slot.fired[d] = True
                replica = replicas[d]
                if is_prepare:
                    replica._try_form_prepared()
                else:
                    replica._try_decide()
            else:
                handlers[d](src, message)  # arbitrary handler: stop point
            start = si + 1
            # Dense probes before the delivery after any stop event; a
            # trailing probe with nothing left returns the same count.
            if probe is not None and delivered and probe():
                return delivered
        delivered += span(start, D.shape[0])
        return delivered
