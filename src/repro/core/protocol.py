"""Deployment wiring: run a ProBFT consensus instance on a simulated network.

:class:`ProBFTDeployment` builds the simulator, network, crypto context and
``n`` replicas (honest by default; Byzantine replicas are supplied as
factories from :mod:`repro.adversary`), then drives the run until all correct
replicas decide (or a time/event budget runs out).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Set

from ..config import ProtocolConfig
from ..crypto.context import CryptoContext
from ..crypto.hashing import digest
from ..net.faults import ChaosPolicy
from ..net.latency import LatencyModel
from ..net.network import Network
from ..net.simulator import Simulator
from ..net.transport import Transport
from ..sync.timeouts import TimeoutPolicy
from ..types import Decision, ReplicaId, Value
from .replica import ProBFTReplica

#: Factory building a Byzantine replica endpoint.  The returned object must
#: expose ``start()`` and ``on_message(src, message)``.
ByzantineFactory = Callable[[ReplicaId, ProtocolConfig, CryptoContext, Transport], object]


def default_value(replica: ReplicaId) -> Value:
    """Distinct per-replica proposal used when the caller supplies none."""
    return f"value-{replica}".encode()


def _is_pure_constant(latency: Optional[LatencyModel]) -> bool:
    """Exactly the default/ConstantLatency model (no subclass surprises)."""
    from ..net.latency import ConstantLatency

    return latency is None or type(latency) is ConstantLatency


def _is_no_chaos(chaos: Optional[ChaosPolicy]) -> bool:
    from ..net.faults import NoChaos

    return chaos is None or type(chaos) is NoChaos


class ProBFTDeployment:
    """One consensus instance: n replicas, a network, and a clock.

    Example:
        >>> from repro.config import ProtocolConfig
        >>> dep = ProBFTDeployment(ProtocolConfig(n=20, f=3))
        >>> result = dep.run()
        >>> dep.agreement_ok and dep.all_correct_decided()
        True
    """

    def __init__(
        self,
        config: ProtocolConfig,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        gst: float = 0.0,
        chaos: Optional[ChaosPolicy] = None,
        timeout_policy: Optional[TimeoutPolicy] = None,
        values: Optional[Dict[ReplicaId, Value]] = None,
        byzantine: Optional[Dict[ReplicaId, ByzantineFactory]] = None,
        trace: bool = False,
        duplicate_prob: float = 0.0,
        track_bytes: bool = False,
        crypto: Optional[CryptoContext] = None,
        sparse: bool = False,
        dissemination: str = "dense",
        gossip_fanout: Optional[int] = None,
        gossip_rounds: Optional[int] = None,
        columnar: bool = False,
    ) -> None:
        if dissemination not in ("dense", "gossip"):
            raise ValueError(
                f"dissemination must be 'dense' or 'gossip', got {dissemination!r}"
            )
        self.config = config
        self.seed = seed
        self.columnar = columnar
        if columnar:
            try:
                from . import columnar as _columnar_mod
            except ImportError as exc:  # pragma: no cover - env-dependent
                raise RuntimeError(
                    "columnar=True requires numpy, which is not installed; "
                    "install numpy or build the deployment without columnar"
                ) from exc
        else:
            _columnar_mod = None
        # Pure-model fast path: with constant latency, no chaos and no
        # duplication the event stream is the one _sparse_dispatch already
        # single-buckets, so the columnar deployment also swaps in the
        # structured-array ring queue (fire order identical to heap/bucket).
        if columnar and (
            duplicate_prob == 0.0
            and _is_pure_constant(latency)
            and _is_no_chaos(chaos)
        ):
            self.sim = Simulator(queue="ring")
        else:
            self.sim = Simulator()
        self.network = Network(
            self.sim,
            config.n,
            latency=latency,
            gst=gst,
            chaos=chaos,
            duplicate_prob=duplicate_prob,
            duplicate_seed=seed,
            track_bytes=track_bytes,
        )
        # Same-config trials share one pooled (immutable) context instead of
        # re-deriving n key pairs; pass ``crypto=`` to override.
        self.crypto = crypto if crypto is not None else CryptoContext.pooled(
            config.n, master_seed=digest("deployment", seed)
        )
        self.decisions: Dict[ReplicaId, Decision] = {}

        byzantine = byzantine or {}
        if len(byzantine) > config.f:
            raise ValueError(
                f"{len(byzantine)} Byzantine replicas exceeds f={config.f}"
            )
        self.byzantine_ids: FrozenSet[ReplicaId] = frozenset(byzantine)
        self._correct_ids: FrozenSet[ReplicaId] = (
            frozenset(range(config.n)) - self.byzantine_ids
        )
        values = values or {}

        # Shared columnar vote state: one set of arrays for every correct
        # replica; the per-replica collector tables become facades over it.
        if columnar:
            self._columnar_state = _columnar_mod.ColumnarVoteState(
                config.n, config.q, self._correct_ids
            )
        else:
            self._columnar_state = None

        self.dissemination = dissemination
        if dissemination == "gossip":
            from ..net.gossip import GossipDisseminator

            self.disseminator: Optional[object] = GossipDisseminator(
                self.network,
                config.n,
                seed,
                fanout=gossip_fanout,
                rounds=gossip_rounds,
                byzantine_ids=self.byzantine_ids,
            )
        else:
            self.disseminator = None

        self.replicas: Dict[ReplicaId, object] = {}
        for r in range(config.n):
            transport = Transport(self.network, r)
            if self.disseminator is not None:
                transport.use_disseminator(self.disseminator)
            if r in byzantine:
                replica = byzantine[r](r, config, self.crypto, transport)
            else:
                replica = ProBFTReplica(
                    replica_id=r,
                    config=config,
                    crypto=self.crypto,
                    transport=transport,
                    my_value=values.get(r, default_value(r)),
                    timeout_policy=timeout_policy,
                    on_decide=self._record_decision,
                    trace=trace,
                    columnar_state=self._columnar_state,
                )
            handler = replica.on_message
            if self.disseminator is not None:
                # Gossip hops travel as unicast envelopes and therefore hit
                # the registered handler directly in both dense and sparse
                # delivery modes; the wrapper unwraps (and, for correct
                # recipients, relays) before the protocol sees the payload.
                handler = self.disseminator.wrap_handler(r, handler)
            self.network.register(r, handler)
            self.replicas[r] = replica
        self.sparse = sparse
        if sparse:
            from .observation import SampleObservationPolicy
            from .replica import BulkVoteDispatch

            policy = SampleObservationPolicy(
                config, self.byzantine_ids, self.replicas
            )
            self.network.use_delivery_policy(policy)
            for r in self._correct_ids:
                self.network.register_batch(
                    r, self.replicas[r].on_sample_message
                )
            if columnar:
                # BulkVoteDispatch reaches into dense collector internals
                # the facades don't have; columnar deployments must install
                # the array-at-a-time kernel instead.
                self.network.use_bulk_handler(
                    _columnar_mod.ColumnarVoteDispatch(
                        config,
                        self.crypto,
                        self.replicas,
                        self._correct_ids,
                        self.network._handlers,
                        policy,
                        self._columnar_state,
                        dup_possible=duplicate_prob > 0.0,
                    )
                )
            else:
                self.network.use_bulk_handler(
                    BulkVoteDispatch(
                        config,
                        self.crypto,
                        self.replicas,
                        self._correct_ids,
                        self.network._handlers,
                        policy,
                    )
                )
        self._started = False

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for replica in self.replicas.values():
            replica.start()

    def run(
        self,
        max_time: Optional[float] = None,
        max_events: int = 5_000_000,
        stop_when_decided: bool = True,
    ) -> "ProBFTDeployment":
        """Run until every correct replica decides (or a budget runs out)."""
        self.start()
        stop = self.all_correct_decided if stop_when_decided else None
        # Sparse fan-outs probe this between coalesced deliveries so they
        # keep dense mode's per-delivery stop granularity.
        self.network.stop_probe = stop
        self.sim.run(until=max_time, max_events=max_events, stop_when=stop)
        return self

    def _record_decision(self, decision: Decision) -> None:
        self.decisions[decision.replica] = decision

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def correct_ids(self) -> FrozenSet[ReplicaId]:
        return self._correct_ids

    def correct_replicas(self) -> Dict[ReplicaId, ProBFTReplica]:
        return {
            r: replica
            for r, replica in self.replicas.items()
            if r in self.correct_ids
        }

    def all_correct_decided(self) -> bool:
        # Decisions are recorded by correct replicas only, so a length check
        # suffices — this runs between every pair of deliveries (stop_when /
        # stop_probe) and must be O(1), not O(n).
        return len(self.decisions) >= len(self._correct_ids)

    def decided_values(self) -> Set[Value]:
        """Distinct values decided by *correct* replicas."""
        return {
            d.value for r, d in self.decisions.items() if r in self.correct_ids
        }

    @property
    def agreement_ok(self) -> bool:
        """True iff correct replicas decided at most one distinct value."""
        return len(self.decided_values()) <= 1

    @property
    def max_decision_view(self) -> int:
        views = [
            d.view for r, d in self.decisions.items() if r in self.correct_ids
        ]
        return max(views, default=0)
