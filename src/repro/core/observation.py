"""ProBFT's sample-observation policy for sparse delivery.

ProBFT's communication pattern is exactly the sample-based dissemination of
scalable probabilistic broadcast: a Prepare/Commit vote is multicast to the
sender's VRF sample, and a recipient's state can only change if it is *in*
that sample (the line 17/21 precondition ``i ∈ S``) — with one exception,
the equivocation rule (lines 23–25), which reacts to any message carrying a
leader-signed statement that conflicts with the accepted value.

:class:`SampleObservationPolicy` encodes precisely that: votes are delivered
only to sample members, unless the vote's view has been *flagged equivocal*,
in which case every delivery for that view falls back to dense (any
recipient might need to block the view and gossip evidence).  The flag is
maintained in :meth:`inspect`, which sees every message entering the network
— including the unicast sends equivocating leaders and double-voters use —
strictly before the corresponding deliveries fire, so the fire-time verdict
in :meth:`deliverable` is never stale.

Suppression rules (fire time, honest ``dst`` only):

* ``view < dst's current view`` — the replica's view gate drops the vote
  unread (stale messages cannot trigger equivocation: lines 23–25 require
  ``inner.view == curView``).
* ``view == dst's current view`` and ``dst ∉ sample`` and view not flagged
  equivocal — the vote fails the ``i ∈ S`` precondition, and no conflict is
  possible: every leader-signed statement seen for this view carries the
  one recorded value, including whichever proposal ``dst`` accepted.
* anything else — deliver (future views are buffered and replayed; flagged
  views, non-votes, malformed votes and Byzantine recipients are all
  handled densely).

Only statements actually signed by ``leader(view)`` are tracked: a flooder's
fake statement signed by itself can never trigger line 23 (which checks the
signer *is* the leader), so it must not flag the view equivocal and degrade
the run to dense.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Set

from ..config import ProtocolConfig
from ..messages.base import ProposalStatement
from ..messages.probft import Commit, Prepare, extract_statement
from ..net.sparse import SparseDeliveryPolicy
from ..types import ReplicaId, Value, View
from .leader import leader_of_view


class SampleObservationPolicy(SparseDeliveryPolicy):
    """Deliver votes only where ProBFT can observe them.

    Args:
        config: the deployment's protocol config (domain + n).
        byzantine_ids: recipients with arbitrary handlers — never suppressed.
        view_of: fire-time probe for an honest replica's current view.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        byzantine_ids: FrozenSet[ReplicaId],
        view_of: Callable[[ReplicaId], View],
    ) -> None:
        self._domain = config.seed_domain
        self._n = config.n
        self._byzantine = frozenset(byzantine_ids)
        self._view_of = view_of
        self._value_seen: Dict[View, Value] = {}
        self._equivocal: Set[View] = set()

    @property
    def equivocal_views(self) -> FrozenSet[View]:
        return frozenset(self._equivocal)

    def inspect(self, src: ReplicaId, message: object) -> None:
        statement = extract_statement(getattr(message, "payload", None))
        if statement is None:
            return
        inner = getattr(statement, "payload", None)
        if not isinstance(inner, ProposalStatement):
            return
        if inner.domain != self._domain:
            return
        view = inner.view
        if view in self._equivocal:
            return
        if view < 1 or getattr(statement, "signer", None) != leader_of_view(
            view, self._n
        ):
            return
        seen = self._value_seen.get(view)
        if seen is None:
            self._value_seen[view] = inner.value
        elif seen != inner.value:
            # Two values under the leader's signature: every correct replica
            # may now react to any statement-bearing message for this view.
            self._equivocal.add(view)

    def deliverable(self, message: object, dst: ReplicaId) -> bool:
        verdict = self.batch_deliverable(message)
        return True if verdict is True else verdict(dst)

    def batch_deliverable(self, message: object):
        payload = getattr(message, "payload", None)
        if not isinstance(payload, (Prepare, Commit)):
            return True
        inner = getattr(payload.statement, "payload", None)
        if not isinstance(inner, ProposalStatement):
            return True
        view = inner.view
        # Captured once per fan-out: a mid-bucket flip (a Byzantine recipient
        # sending a fresh conflicting statement from inside this bucket) is
        # safe, because the conflicting statement cannot have been delivered
        # to anyone yet — every honest recipient still holds the one value
        # this vote carries, so suppressing its out-of-sample copies remains
        # a no-op for them.
        equivocal = view in self._equivocal
        members = payload.sample.members()
        byzantine = self._byzantine
        view_of = self._view_of

        def verdict(dst: ReplicaId) -> bool:
            if dst in byzantine:
                return True
            dst_view = view_of(dst)
            if view < dst_view:
                return False  # dropped unread by the receiver's view gate
            if view > dst_view:
                return True  # buffered for replay on view entry
            return equivocal or dst in members

        return verdict
