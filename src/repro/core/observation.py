"""ProBFT's sample-observation policy for sparse delivery.

ProBFT's communication pattern is exactly the sample-based dissemination of
scalable probabilistic broadcast: a Prepare/Commit vote is multicast to the
sender's VRF sample, and a recipient's state can only change if it is *in*
that sample (the line 17/21 precondition ``i ∈ S``) — with one exception,
the equivocation rule (lines 23–25), which reacts to any message carrying a
leader-signed statement that conflicts with the accepted value.

:class:`SampleObservationPolicy` encodes precisely that: votes are delivered
only to sample members, unless the vote's view has been *flagged equivocal*,
in which case every delivery for that view falls back to dense (any
recipient might need to block the view and gossip evidence).  The flag is
maintained in :meth:`inspect`, which sees every message entering the network
— including the unicast sends equivocating leaders and double-voters use —
strictly before the corresponding deliveries fire, so the fire-time verdict
in :meth:`deliverable` is never stale.

Suppression rules (fire time, honest ``dst`` only; equivocal-flagged views
are exempt from all of them):

* ``view < dst's current view`` — the replica's view gate drops the vote
  unread (stale messages cannot trigger equivocation: lines 23–25 require
  ``inner.view == curView``).
* **progress pruning** — a Prepare for a view ``dst`` has already committed
  (``_try_form_prepared`` early-returns on ``view ∈ committedViews``; the
  prepared certificate was snapshotted at quorum time and the collector is
  never re-read), or a Commit to a ``dst`` that has already decided
  (decisions are permanent; ``_try_decide`` early-returns forever, and
  commit collectors are only ever read by it).  Either way the delivery
  could only mutate dead collector state.
* ``view == dst's current view`` and ``dst ∉ sample`` — the vote fails the
  ``i ∈ S`` precondition, and no conflict is possible: every leader-signed
  statement seen for this view carries the one recorded value, including
  whichever proposal ``dst`` accepted.
* anything else — deliver (future views are buffered and replayed; flagged
  views, non-votes, malformed votes and Byzantine recipients are all
  handled densely).

Only statements actually signed by ``leader(view)`` are tracked: a flooder's
fake statement signed by itself can never trigger line 23 (which checks the
signer *is* the leader), so it must not flag the view equivocal and degrade
the run to dense.

The policy reads replica state (``_cur_view``, ``_committed_views``,
``_decision``) straight off the deployment's replica objects: the verdict
runs per (message, recipient) on the hottest path in a large-n trial, and a
probe-callable indirection per recipient is measurable there.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from ..config import ProtocolConfig
from ..messages.base import ProposalStatement
from ..messages.probft import Commit, Prepare, extract_statement
from ..net.gossip import GossipEnvelope
from ..net.sparse import SparseDeliveryPolicy
from ..types import ReplicaId, Value, View
from .leader import leader_of


class SampleObservationPolicy(SparseDeliveryPolicy):
    """Deliver votes only where ProBFT can observe them.

    Args:
        config: the deployment's protocol config (domain + n).
        byzantine_ids: recipients with arbitrary handlers — never suppressed.
        replicas: the deployment's replica map; honest entries are
            :class:`~repro.core.replica.ProBFTReplica` whose view/progress
            state the fire-time verdicts read directly.
    """

    def __init__(
        self,
        config: ProtocolConfig,
        byzantine_ids: FrozenSet[ReplicaId],
        replicas: Dict[ReplicaId, object],
    ) -> None:
        self._domain = config.seed_domain
        self._n = config.n
        self._config = config
        self._byzantine = frozenset(byzantine_ids)
        self._replicas = replicas
        self._value_seen: Dict[View, Value] = {}
        self._equivocal: Set[View] = set()

    @property
    def equivocal_views(self) -> FrozenSet[View]:
        return frozenset(self._equivocal)

    def inspect(self, src: ReplicaId, message: object) -> None:
        if type(message) is GossipEnvelope:
            # Gossip hops carry the signed proposal one wrapper deeper; the
            # equivocation flag must still see every hop (a Byzantine leader
            # equivocates per gossip sample, and relays propagate both
            # values), so unwrap before statement extraction.
            message = message.payload
        statement = extract_statement(getattr(message, "payload", None))
        if statement is None:
            return
        inner = getattr(statement, "payload", None)
        if not isinstance(inner, ProposalStatement):
            return
        if inner.domain != self._domain:
            return
        view = inner.view
        if view in self._equivocal:
            return
        if view < 1 or getattr(statement, "signer", None) != leader_of(
            view, self._config
        ):
            return
        seen = self._value_seen.get(view)
        if seen is None:
            self._value_seen[view] = inner.value
        elif seen != inner.value:
            # Two values under the leader's signature: every correct replica
            # may now react to any statement-bearing message for this view.
            self._equivocal.add(view)

    def _decompose_vote(self, message: object):
        """``(is_prepare, view, members)`` for a well-formed vote, else None."""
        payload = getattr(message, "payload", None)
        if not isinstance(payload, (Prepare, Commit)):
            return None
        inner = getattr(payload.statement, "payload", None)
        if not isinstance(inner, ProposalStatement):
            return None
        return (
            isinstance(payload, Prepare),
            inner.view,
            payload.sample.members(),
        )

    def deliverable(self, message: object, dst: ReplicaId) -> bool:
        verdict = self.batch_deliverable(message)
        return True if verdict is True else verdict(dst)

    def batch_deliverable(self, message: object):
        vote = self._decompose_vote(message)
        if vote is None:
            return True
        is_prepare, view, members = vote
        # Captured once per fan-out: a mid-bucket flip (a Byzantine recipient
        # sending a fresh conflicting statement from inside this bucket) is
        # safe, because the conflicting statement cannot have been delivered
        # to anyone yet — every honest recipient still holds the one value
        # this vote carries, so suppressing its out-of-sample copies remains
        # a no-op for them.
        equivocal = view in self._equivocal
        byzantine = self._byzantine
        replicas = self._replicas

        def verdict(dst: ReplicaId) -> bool:
            if dst in byzantine:
                return True
            replica = replicas[dst]
            dst_view = replica._cur_view
            if view < dst_view:
                return False  # dropped unread by the receiver's view gate
            if view > dst_view:
                return True  # buffered for replay on view entry
            if equivocal:
                return True  # dense: any recipient may need the evidence
            if is_prepare:
                if view in replica._committed_views:
                    return False  # progress pruning (see module docstring)
            elif replica._decision is not None:
                return False  # progress pruning
            return dst in members

        return verdict

    def batch_filter(self, message: object, dsts):
        """One-frame bulk verdict for a coalesced fan-out bucket.

        Exactly :meth:`batch_deliverable`'s per-``dst`` verdict applied to
        ``dsts`` in order, without a closure call per recipient — this runs
        for every vote bucket in a trial, so the loop keeps everything in
        locals.  Delivering to one recipient cannot synchronously change
        another's state (all sends schedule strictly-future events), so
        pre-filtering the whole bucket matches interleaved evaluation.
        """
        vote = self._decompose_vote(message)
        if vote is None:
            return dsts
        is_prepare, view, members = vote
        equivocal = view in self._equivocal
        byzantine = self._byzantine
        replicas = self._replicas
        out = []
        append = out.append
        for dst in dsts:
            if dst in byzantine:
                append(dst)
                continue
            replica = replicas[dst]
            dst_view = replica._cur_view
            if view < dst_view:
                continue
            if view > dst_view or equivocal:
                append(dst)
                continue
            if is_prepare:
                if view in replica._committed_views:
                    continue
            elif replica._decision is not None:
                continue
            if dst in members:
                append(dst)
        return out
