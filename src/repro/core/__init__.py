"""ProBFT — the paper's primary contribution (Algorithm 1).

* :mod:`repro.core.leader` — leader rotation and the proposal-selection rule
  (lines 7–12: newest prepared view, most frequent value).
* :mod:`repro.core.predicates` — ``safeProposal`` and ``validNewLeader``.
* :mod:`repro.core.replica` — the replica state machine.
* :mod:`repro.core.protocol` — deployment wiring: build n replicas on a
  simulated network and run a consensus instance.
"""

from .leader import leader_of, leader_of_view, compute_proposal, mode_values
from .predicates import safe_proposal, valid_new_leader
from .replica import ProBFTReplica
from .protocol import ProBFTDeployment

__all__ = [
    "leader_of",
    "leader_of_view",
    "compute_proposal",
    "mode_values",
    "safe_proposal",
    "valid_new_leader",
    "ProBFTReplica",
    "ProBFTDeployment",
]
