"""The ``validNewLeader`` and ``safeProposal`` predicates (paper §3.2).

::

    validNewLeader(⟨NewLeader, v, view, val, cert⟩_j)  <=>
        view < v  ∧  (view ≠ 0 ⇒ prepared(cert, view, val, j))

    safeProposal(⟨Propose, ⟨v, x⟩_j, M⟩_j)  <=>
        v ≥ 1 ∧ j = leader(v) ∧ valid(x) ∧ (v = 1 ∨
          (|M| ≥ ⌈(n+f+1)/2⌉ ∧ (∀m ∈ M: validNewLeader(m)) ∧
           (∃v_max = max prepared views in M ∧ x = mode of values at v_max)))

Correct replicas *redo the leader's computation* on the justification set
``M`` shipped inside the Propose message, so a Byzantine leader cannot
propose a value that contradicts what a (deterministic-quorum) majority
prepared in the latest view — this is what protects decisions across view
changes (Theorem 8).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..config import ProtocolConfig
from ..crypto.context import CryptoContext
from ..crypto.signatures import Signed
from ..messages.base import ProposalStatement
from ..messages.probft import NewLeader, Propose
from ..quorum.certificates import validate_prepared_certificate
from ..types import ReplicaId, ValidPredicate, View
from .leader import leader_of, max_prepared_view, mode_values

LeaderFn = Callable[[View, int], ReplicaId]


def valid_new_leader(
    signed: Signed,
    target_view: View,
    config: ProtocolConfig,
    crypto: CryptoContext,
    leader_fn: Optional[LeaderFn] = None,
) -> bool:
    """``validNewLeader`` over a signed NewLeader message for ``target_view``.

    ``leader_fn`` defaults to the config's offset-aware round-robin schedule
    (``leader_of``); pass an explicit ``(view, n) -> id`` callable to audit
    against a different schedule.
    """
    if not crypto.signatures.verify(signed):
        return False
    msg = signed.payload
    if not isinstance(msg, NewLeader):
        return False
    if msg.view != target_view or msg.domain != config.seed_domain:
        return False
    if not msg.prepared_view < target_view:
        return False
    if msg.prepared_view == 0:
        # Never prepared: value must be absent and the certificate empty.
        return msg.prepared_value is None and not msg.cert
    if msg.prepared_value is None:
        return False
    return validate_prepared_certificate(
        cert=msg.cert,
        view=msg.prepared_view,
        value=msg.prepared_value,
        holder=signed.signer,
        config=config,
        signatures=crypto.signatures,
        vrf=crypto.vrf,
        leader_of_view=leader_fn,
    )


def _justification_is_quorum(
    justification: Tuple[Signed, ...], config: ProtocolConfig
) -> bool:
    """``|M| ≥ ⌈(n+f+1)/2⌉`` with distinct signers (a quorum, not a multiset)."""
    signers = {m.signer for m in justification}
    return len(signers) >= config.det_quorum and len(signers) == len(justification)


def safe_proposal(
    signed: Signed,
    config: ProtocolConfig,
    crypto: CryptoContext,
    valid: Optional[ValidPredicate] = None,
    leader_fn: Optional[LeaderFn] = None,
) -> bool:
    """``safeProposal`` over a signed Propose message."""
    if not crypto.signatures.verify(signed):
        return False
    propose = signed.payload
    if not isinstance(propose, Propose):
        return False
    view = propose.view
    if view < 1:
        return False
    expected_leader = (
        leader_fn(view, config.n) if leader_fn is not None else leader_of(view, config)
    )
    if signed.signer != expected_leader:
        return False
    # The inner statement must be consistent and signed by the same leader.
    statement = propose.statement
    if not crypto.signatures.verify(statement):
        return False
    inner = statement.payload
    if not isinstance(inner, ProposalStatement):
        return False
    if inner.view != view or statement.signer != expected_leader:
        return False
    if inner.domain != config.seed_domain:
        return False
    valid_fn = valid if valid is not None else config.valid
    if not valid_fn(inner.value):
        return False
    if view == 1:
        return True
    justification = propose.justification
    if justification is None:
        return False
    if not _justification_is_quorum(justification, config):
        return False
    for m in justification:
        if not valid_new_leader(m, view, config, crypto, leader_fn):
            return False
    payloads = [m.payload for m in justification]
    v_max = max_prepared_view(payloads)
    if v_max == 0:
        # Nobody prepared: any valid value is acceptable.
        return True
    candidates = [
        m.prepared_value
        for m in payloads
        if m.prepared_view == v_max and m.prepared_value is not None
    ]
    modes = mode_values(candidates)
    return inner.value in modes
