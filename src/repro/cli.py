"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``      — run one consensus instance (probft/pbft/hotstuff) and print
  the outcome;
* ``attack``   — run the Figure-4c equivocation attack;
* ``figures``  — print the analytic Figure 1b / Figure 5 series;
* ``smr``      — run a multi-slot replicated counter;
* ``serve``    — closed-loop SMR serving benchmark: simulated client
  populations (think times, in-flight windows, deterministic per-client
  RNGs) against a batching/pipelining deployment, with throughput and
  p50/p99/p999 latency columns; ``--matrix`` crosses load levels ×
  adversaries (equivocating leader, flooding);
* ``sweep``    — run a named scenario matrix (protocols × adversaries ×
  latency models) through the parallel experiment engine — on any execution
  backend (``--backend serial|pool|async|sharded``, ``--workers auto`` for
  the core count; results are bit-identical across all of them), with
  optional adaptive budgets (``--target-width W --chunk K`` stops each cell
  once its agreement Wilson interval is narrow enough; budgets become
  worst-case caps) — and print a table or JSON report;
* ``plot``     — render Figure-5 style plots (metric vs system size) from
  one or more ``sweep --json`` reports (requires matplotlib).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import List, Optional

from .analysis import agreement as A
from .analysis import messages as M
from .analysis import termination as T
from .config import ProtocolConfig
from .harness.adaptive import DEFAULT_CHUNK
from .harness.runner import run_protocol
from .harness.tables import render_series, render_table


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=20, help="number of replicas")
    parser.add_argument("--f", type=int, default=None, help="fault threshold")
    parser.add_argument("--l", type=float, default=2.0, help="quorum constant l")
    parser.add_argument("--o", type=float, default=1.7, help="redundancy o")
    parser.add_argument("--seed", type=int, default=0)


def _config(args) -> ProtocolConfig:
    return ProtocolConfig(n=args.n, f=args.f, l=args.l, o=args.o)


def cmd_run(args) -> int:
    config = _config(args)
    result = run_protocol(
        args.protocol, config, seed=args.seed, max_time=args.max_time
    )
    rows = [
        ["protocol", result.protocol],
        ["config", config.describe()],
        ["decided", f"{result.decided}/{result.n_correct}"],
        ["agreement", result.agreement_ok],
        ["decision views", result.decision_views],
        ["last decision time", round(result.last_decision_time, 3)],
        ["protocol messages", result.protocol_messages],
        ["total messages", result.total_messages],
    ]
    print(render_table(["field", "value"], rows, title="consensus run"))
    return 0 if (result.all_decided and result.agreement_ok) else 1


def cmd_attack(args) -> int:
    from .adversary.plans import equivocation_attack_deployment
    from .sync.timeouts import FixedTimeout

    config = _config(args)
    deployment, plan = equivocation_attack_deployment(
        config, seed=args.seed, timeout_policy=FixedTimeout(20.0), trace=True
    )
    deployment.run(max_time=args.max_time)
    blocked = sum(
        1
        for rep in deployment.correct_replicas().values()
        if any(e.kind == "block-view" for e in rep.trace)
    )
    rows = [
        ["attack values", plan.values],
        ["decided", f"{len(deployment.decisions)}/{len(deployment.correct_ids)}"],
        ["agreement", deployment.agreement_ok],
        ["decided values", sorted(deployment.decided_values())],
        ["replicas that blocked view 1", blocked],
        ["max decision view", deployment.max_decision_view],
    ]
    print(
        render_table(
            ["field", "value"], rows, title="equivocation attack (Figure 4c)"
        )
    )
    return 0 if deployment.agreement_ok else 1


def cmd_figures(args) -> int:
    ns = [100, 150, 200, 250, 300]
    msg_series = {
        "PBFT": [float(M.pbft_messages(n)) for n in ns],
        "HotStuff": [float(M.hotstuff_messages(n)) for n in ns],
        f"ProBFT o={args.o}": [float(M.probft_messages(n, args.o)) for n in ns],
    }
    print(render_series("n", ns, msg_series, title="Figure 1b: messages vs n"))
    term = [T.replica_terminates_exact(n, n // 5, args.o, args.l) for n in ns]
    agree = [A.agreement_in_view_exact(n, n // 5, args.o, args.l) for n in ns]
    print(
        render_series(
            "n",
            ns,
            {"termination (exact)": term, "agreement (exact)": agree},
            title="\nFigure 5 (f/n=0.2): probabilities vs n",
        )
    )
    return 0


def cmd_smr(args) -> int:
    from .smr.app import CounterApp
    from .smr.client import SMRClient
    from .smr.service import SMRDeployment

    config = _config(args)
    deployment = SMRDeployment(
        config, CounterApp, num_slots=args.slots, seed=args.seed
    )
    client = SMRClient(deployment)
    for i in range(min(args.slots, 5)):
        client.submit(b"ADD:%d" % (i + 1))
    deployment.run(max_time=args.max_time)
    mean_latency = client.mean_latency()
    rows = [
        ["slots applied", min(r.log.applied_up_to for r in deployment.replicas.values())],
        ["logs consistent", deployment.logs_consistent()],
        ["states consistent", deployment.snapshots_consistent()],
        ["requests completed", f"{len(client.completed_requests())}/{len(client.requests)}"],
        ["requests timed out", client.timed_out],
        ["mean request latency", "-" if mean_latency is None else round(mean_latency, 2)],
        ["final counter", list(deployment.snapshots().values())[0]],
    ]
    print(render_table(["field", "value"], rows, title="SMR run"))
    return 0 if deployment.all_applied() else 1


def _fmt_latency(value) -> object:
    return "-" if value is None else round(value, 2)


def cmd_serve(args) -> int:
    from .smr.workload import (
        LOAD_LEVELS,
        SERVING_ADVERSARIES,
        ServingSpec,
        run_serving_trial,
        serving_cells,
    )

    overrides = {}
    for name in (
        "n",
        "f",
        "num_clients",
        "requests_per_client",
        "think_time",
        "window",
        "batch_size",
        "pipeline",
        "max_pending",
        "seed",
        "timeout",
        "max_time",
        "offered_rate",
    ):
        value = getattr(args, name)
        if value is not None:
            overrides[name] = value
    if args.matrix:
        # --rotate-leaders / --arrival both add whole axes to the matrix.
        rotations = [False, True] if args.rotate_leaders else [False]
        arrivals = (
            ["closed", "open"] if args.arrival == "both" else [args.arrival]
        )
        specs = serving_cells(rotations=rotations, arrivals=arrivals, **overrides)
    else:
        if args.arrival == "both":
            print("--arrival both requires --matrix", file=sys.stderr)
            return 2
        specs = [
            ServingSpec(
                adversary=args.adversary,
                load=args.load,
                rotate_leaders=args.rotate_leaders,
                arrival=args.arrival,
                **overrides,
            )
        ]
    results = [run_serving_trial(spec) for spec in specs]
    if args.json:
        print(json.dumps([r.row() for r in results], indent=2, allow_nan=False))
    else:
        headers = [
            "adversary",
            "load",
            "rot",
            "arrival",
            "completed",
            "timed_out",
            "throughput",
            "p50",
            "p99",
            "p999",
            "logs_ok",
        ]
        rows = [
            [
                r.adversary,
                r.load,
                "on" if r.rotate_leaders else "off",
                r.arrival,
                f"{r.completed}/{r.issued}",
                r.timed_out,
                round(r.throughput, 3),
                _fmt_latency(r.p50_latency),
                _fmt_latency(r.p99_latency),
                _fmt_latency(r.p999_latency),
                r.logs_consistent,
            ]
            for r in results
        ]
        print(
            render_table(
                headers,
                rows,
                title=(
                    "SMR serving "
                    f"(adversaries {', '.join(sorted(SERVING_ADVERSARIES))}; "
                    f"loads {', '.join(sorted(LOAD_LEVELS))})"
                ),
            )
        )
    ok = all(
        r.logs_consistent and r.completed > 0 and r.throughput > 0
        for r in results
    )
    return 0 if ok else 1


def cmd_sweep(args) -> int:
    from .harness.backends import resolve_workers
    from .harness.parallel import ExperimentEngine
    from .harness.registry import get_matrix, list_matrices, run_matrix

    if args.trials is not None and args.trials < 1:
        print(f"--trials must be >= 1, got {args.trials}", file=sys.stderr)
        return 2
    if args.target_width is not None and not 0.0 < args.target_width <= 1.0:
        print(
            f"--target-width must be in (0, 1], got {args.target_width}",
            file=sys.stderr,
        )
        return 2
    if args.chunk < 1:
        print(f"--chunk must be >= 1, got {args.chunk}", file=sys.stderr)
        return 2
    try:
        workers = resolve_workers(args.workers)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if workers < 0:
        print(f"--workers must be >= 0, got {workers}", file=sys.stderr)
        return 2
    if (
        args.matrix_opt is not None
        and args.matrix is not None
        and args.matrix_opt != args.matrix
    ):
        print(
            f"conflicting matrix names: positional {args.matrix!r} vs "
            f"--matrix {args.matrix_opt!r}; pass one or the other",
            file=sys.stderr,
        )
        return 2
    matrix_name = args.matrix_opt or args.matrix or "smoke"
    try:
        matrix = get_matrix(matrix_name)
    except KeyError:
        print(
            f"unknown matrix {matrix_name!r}; available: "
            f"{', '.join(list_matrices())}",
            file=sys.stderr,
        )
        return 2
    if args.n is not None or args.f is not None:
        matrix = matrix.with_size(
            args.n if args.n is not None else matrix.n, args.f
        )
    if args.columnar or args.track_memory:
        from dataclasses import replace as _replace

        if args.columnar:
            try:
                import numpy  # noqa: F401
            except ImportError:
                print(
                    "--columnar requires numpy, which is not installed; "
                    "install numpy or run without --columnar",
                    file=sys.stderr,
                )
                return 2
        matrix = _replace(
            matrix,
            columnar=args.columnar or matrix.columnar,
            track_memory=args.track_memory or matrix.track_memory,
        )
    # Build the engine here so the report's execution metadata reflects what
    # actually ran (an explicit concurrent backend without --workers
    # saturates the cores — the resolved count lives on the backend).
    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
    with ExperimentEngine(workers=workers, backend=args.backend) as engine:
        backend_name = engine.backend_name
        effective_workers = engine.workers
        if profiler is not None:
            profiler.enable()
        try:
            report = run_matrix(
                matrix,
                trials=args.trials,
                master_seed=args.seed,
                engine=engine,
                max_time=args.max_time,
                target_width=args.target_width,
                chunk=args.chunk,
            )
        finally:
            if profiler is not None:
                profiler.disable()
    if profiler is not None:
        _write_profile(profiler, args.profile)
    if args.json:
        # NaN (e.g. mean decision time when nothing decided) is not valid
        # JSON; emit null so strict parsers accept the report.  Execution
        # metadata (backend/workers) is a separate key so consumers
        # comparing *results* across backends can diff "matrix"+"rows"
        # directly — those are bit-identical for every backend.
        rows = [
            {
                k: (None if isinstance(v, float) and math.isnan(v) else v)
                for k, v in row.items()
            }
            for row in report.rows
        ]
        payload = {
            "matrix": report.matrix,
            "n": matrix.n,
            "f": matrix.resolved_f(),
            "trials": report.trials,
            "master_seed": report.master_seed,
            "workers": effective_workers,
            "backend": backend_name,
            "rows": rows,
        }
        if report.adaptive:
            # Adaptive metadata: what the rules were evaluated against
            # (rows carry the per-cell trials_used/stop_reason/
            # interval_width outcome columns).
            payload["target_width"] = report.target_width
            payload["chunk"] = report.chunk
        print(json.dumps(payload, indent=2, allow_nan=False))
    else:
        budget_note = (
            f"{report.trials} trial(s)/cell"
            if report.trials is not None
            else "per-cell budget trials"
        )
        if report.adaptive:
            width_note = (
                f"width {report.target_width}"
                if report.target_width is not None
                else "matrix widths"
            )
            budget_note += (
                f" (adaptive: {width_note}, checkpoint every "
                f"{report.chunk})"
            )
        print(
            render_table(
                report.headers,
                report.table_rows(),
                title=(
                    f"scenario matrix {report.matrix!r}: {budget_note}, "
                    f"master seed {report.master_seed}, "
                    f"workers={effective_workers}, backend={backend_name}"
                ),
            )
        )
    return 0 if report.all_agreement_ok else 1


def _write_profile(profiler, path_str: str) -> None:
    """Persist a sweep profile: raw ``.pstats`` plus a cumulative top-25
    table, side by side.  The table also goes to stderr so it never
    corrupts a ``--json`` report on stdout."""
    import io
    import pathlib
    import pstats

    path = pathlib.Path(path_str)
    if path.suffix != ".pstats":
        path = path.with_name(path.name + ".pstats")
    profiler.dump_stats(path)
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats("cumulative").print_stats(25)
    table = buf.getvalue()
    table_path = path.with_suffix(".top25.txt")
    table_path.write_text(table)
    print(
        f"profile: wrote {path} (load with pstats/snakeviz) and {table_path}",
        file=sys.stderr,
    )
    print(table, file=sys.stderr)


def cmd_plot(args) -> int:
    from .harness.plotting import (
        PlottingUnavailableError,
        load_report,
        merge_series,
        render_plot,
    )

    try:
        reports = [load_report(path) for path in args.reports]
        series = merge_series(reports, args.metric)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot build plot series: {exc}", file=sys.stderr)
        return 2
    if not series:
        print("reports contain no plottable rows", file=sys.stderr)
        return 2
    try:
        path = render_plot(series, args.metric, args.output, title=args.title)
    except PlottingUnavailableError as exc:
        print(str(exc), file=sys.stderr)
        return 3
    points = sum(len(s.x) for s in series)
    print(f"wrote {path}: {len(series)} series, {points} points")
    return 0


def _backend_choices() -> List[str]:
    """``--backend`` choices straight from the backend registry, so a newly
    registered backend is immediately reachable from the CLI."""
    from .harness.backends import list_backends

    return list_backends()


def _matrices_epilog() -> str:
    """Named-matrix reference shown in ``repro sweep --help``."""
    from .harness.registry import MATRICES

    width = max(len(name) for name in MATRICES)
    lines = [
        f"  {name:<{width}}  {MATRICES[name].description}"
        for name in sorted(MATRICES)
    ]
    return (
        "named matrices:\n"
        + "\n".join(lines)
        + "\n\nreports carry per-cell message-cost columns (mean_messages/"
        "messages_stderr);\nmatrices declared with track_bytes (e.g. "
        "byte-costs) also fill the byte-cost\ncolumns (mean_bytes/"
        "bytes_stderr) from canonical message encodings.\n\n"
        "adaptive budgets: --target-width W stops each cell at the first\n"
        "checkpoint (every --chunk K trials) where its agreement-rate "
        "Wilson\ninterval is <= W wide; budgets become worst-case caps and "
        "rows gain\ntrials_used/stop_reason/interval_width.  Adaptive "
        "estimates are\nbit-identical to the same-length prefix of the "
        "fixed-budget run, on\nevery backend.  Rough cost at a rate near "
        "0/1: width W resolves after\n~3.84*(1-W)/W trials (73 for W=0.05; "
        "pick K a small fraction of that).\nMatrices can also declare "
        "target_width(s) themselves (e.g. adaptive-demo)."
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ProBFT reproduction toolkit (PODC 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one consensus instance")
    p_run.add_argument(
        "protocol", choices=["probft", "pbft", "hotstuff"], help="protocol"
    )
    _add_config_args(p_run)
    p_run.add_argument("--max-time", type=float, default=5000.0)
    p_run.set_defaults(fn=cmd_run)

    p_attack = sub.add_parser("attack", help="run the equivocation attack")
    _add_config_args(p_attack)
    p_attack.add_argument("--max-time", type=float, default=5000.0)
    p_attack.set_defaults(fn=cmd_attack)

    p_fig = sub.add_parser("figures", help="print analytic figure series")
    p_fig.add_argument("--l", type=float, default=2.0)
    p_fig.add_argument("--o", type=float, default=1.7)
    p_fig.set_defaults(fn=cmd_figures)

    p_smr = sub.add_parser("smr", help="run a replicated counter")
    _add_config_args(p_smr)
    p_smr.add_argument("--slots", type=int, default=5)
    p_smr.add_argument("--max-time", type=float, default=50_000.0)
    p_smr.set_defaults(fn=cmd_smr)

    p_serve = sub.add_parser(
        "serve",
        help=(
            "SMR serving benchmark (adversaries x loads, closed- or "
            "open-loop arrivals, optional leader rotation)"
        ),
    )
    p_serve.add_argument(
        "--adversary",
        choices=["none", "equivocating-leader", "flooding"],
        default="none",
        help="Byzantine behaviour hosted in every slot",
    )
    p_serve.add_argument(
        "--load",
        choices=["low", "high"],
        default="high",
        help="load-level preset (client count, window, think time)",
    )
    p_serve.add_argument(
        "--matrix",
        action="store_true",
        help="run every adversary x load cell instead of a single one",
    )
    p_serve.add_argument("--n", type=int, default=None, help="system size")
    p_serve.add_argument("--f", type=int, default=None, help="fault threshold")
    p_serve.add_argument("--num-clients", type=int, default=None)
    p_serve.add_argument("--requests-per-client", type=int, default=None)
    p_serve.add_argument("--think-time", type=float, default=None)
    p_serve.add_argument("--window", type=int, default=None)
    p_serve.add_argument("--batch-size", type=int, default=None)
    p_serve.add_argument("--pipeline", type=int, default=None)
    p_serve.add_argument("--max-pending", type=int, default=None)
    p_serve.add_argument("--seed", type=int, default=None)
    p_serve.add_argument("--timeout", type=float, default=None)
    p_serve.add_argument("--max-time", type=float, default=None)
    p_serve.add_argument(
        "--rotate-leaders",
        action="store_true",
        help=(
            "rotate slot leadership (view-1 leader of slot s is (s+1) mod n); "
            "with --matrix, adds rotation off/on as a matrix axis"
        ),
    )
    p_serve.add_argument(
        "--arrival",
        choices=["closed", "open", "both"],
        default="closed",
        help=(
            "arrival discipline: closed loop (think/window) or open-loop "
            "Poisson arrivals; 'both' adds the axis to --matrix"
        ),
    )
    p_serve.add_argument(
        "--offered-rate",
        type=float,
        default=None,
        help="aggregate open-loop arrival rate, requests per simulated second",
    )
    p_serve.add_argument(
        "--json", action="store_true", help="emit JSON rows instead of a table"
    )
    p_serve.set_defaults(fn=cmd_serve)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a named scenario matrix through the parallel engine",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=_matrices_epilog(),
    )
    p_sweep.add_argument(
        "matrix",
        nargs="?",
        default=None,
        help="matrix name (see the list below); default smoke",
    )
    p_sweep.add_argument(
        "--matrix",
        dest="matrix_opt",
        default=None,
        metavar="NAME",
        help="matrix name (alias for the positional argument)",
    )
    p_sweep.add_argument(
        "--trials",
        type=int,
        default=None,
        help=(
            "uniform seeded trials per cell; omit to use the matrix's "
            "per-cell trial budgets (fallback 1)"
        ),
    )
    p_sweep.add_argument(
        "--workers",
        default="0",
        metavar="N|auto",
        help=(
            "worker count; 0/1 = in-process serial, 'auto' = the machine's "
            "core count (results are identical for every value)"
        ),
    )
    p_sweep.add_argument(
        "--backend",
        choices=_backend_choices(),
        default=None,
        help=(
            "execution backend (default: serial for --workers<=1, process "
            "pool otherwise); purely a performance choice — reports are "
            "bit-identical across backends"
        ),
    )
    p_sweep.add_argument(
        "--target-width",
        type=float,
        default=None,
        metavar="W",
        help=(
            "adaptive budgets: stop each cell at the first checkpoint "
            "where its agreement-rate Wilson interval is <= W wide (the "
            "cell's trial budget becomes the worst-case cap); rows gain "
            "trials_used/stop_reason columns"
        ),
    )
    p_sweep.add_argument(
        "--chunk",
        type=int,
        default=DEFAULT_CHUNK,
        metavar="K",
        help=(
            "adaptive checkpoint period: stopping rules are evaluated "
            f"every K trials (default {DEFAULT_CHUNK}); smaller K stops "
            "closer to the target at more checkpoint overhead"
        ),
    )
    p_sweep.add_argument("--seed", type=int, default=0, help="master seed")
    p_sweep.add_argument("--n", type=int, default=None, help="override system size")
    p_sweep.add_argument("--f", type=int, default=None, help="override fault count")
    p_sweep.add_argument("--max-time", type=float, default=5000.0)
    p_sweep.add_argument(
        "--columnar",
        action="store_true",
        help=(
            "run every cell on the scale stack (sparse delivery + "
            "array-backed columnar vote state; golden-seed identical to "
            "the dense reference, requires numpy)"
        ),
    )
    p_sweep.add_argument(
        "--track-memory",
        action="store_true",
        help=(
            "record peak heap per trial (adds a mean_peak_mem_mb report "
            "column; roughly doubles wall clock)"
        ),
    )
    p_sweep.add_argument(
        "--json", action="store_true", help="emit a JSON report instead of a table"
    )
    p_sweep.add_argument(
        "--profile",
        nargs="?",
        const="sweep_profile.pstats",
        default=None,
        metavar="PATH",
        help=(
            "cProfile the sweep: write raw stats to PATH (default "
            "sweep_profile.pstats) plus a top-25 cumulative table next to "
            "it (PATH with .top25.txt), and echo the table to stderr; with "
            "a concurrent backend only the coordinating process is "
            "profiled, so pair with the default serial backend to see "
            "trial internals"
        ),
    )
    p_sweep.set_defaults(fn=cmd_sweep)

    p_plot = sub.add_parser(
        "plot",
        help="render Figure-5 style plots from `repro sweep --json` reports",
    )
    p_plot.add_argument(
        "reports",
        nargs="+",
        help=(
            "one or more JSON reports from `repro sweep --json` (one per "
            "system size n; each cell becomes one series across the files)"
        ),
    )
    p_plot.add_argument(
        "--metric",
        default="agreement_rate",
        help="row metric to plot (default agreement_rate)",
    )
    p_plot.add_argument(
        "-o",
        "--output",
        default="fig5.png",
        help="output image path; format follows the extension",
    )
    p_plot.add_argument("--title", default=None, help="plot title override")
    p_plot.set_defaults(fn=cmd_plot)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
