"""Matching-message quorum collectors.

A collector accumulates messages grouped by an application key (for ProBFT:
``(view, value)``), deduplicates by sender, and reports exactly once when a
key first reaches the threshold.  The collector is deliberately unaware of
signatures/VRFs — callers validate messages *before* adding them, keeping the
trust boundary in one place (the replica handlers).
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, List, Optional, Set, Tuple, TypeVar

from ..errors import QuorumError
from ..types import ReplicaId

K = TypeVar("K", bound=Hashable)
M = TypeVar("M")


class _Bucket(Generic[M]):
    """Per-key accumulator; a slotted plain class — :meth:`QuorumCollector.add`
    runs once per delivered vote, making bucket construction and attribute
    access part of the simulation's hot path."""

    __slots__ = ("senders", "messages", "fired")

    def __init__(self) -> None:
        self.senders: Set[ReplicaId] = set()
        self.messages: List[Tuple[ReplicaId, M]] = []
        self.fired = False


class QuorumCollector(Generic[K, M]):
    """Generic threshold collector over (key, sender, message) triples.

    Example:
        >>> c = QuorumCollector(threshold=2)
        >>> c.add("k", 1, "a")
        False
        >>> c.add("k", 1, "duplicate")   # same sender: ignored
        False
        >>> c.add("k", 2, "b")
        True
        >>> c.add("k", 3, "c")           # fires at most once per key
        False
    """

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise QuorumError(f"threshold must be >= 1, got {threshold}")
        self._threshold = threshold
        self._buckets: Dict[K, _Bucket[M]] = {}

    @property
    def threshold(self) -> int:
        return self._threshold

    def add(self, key: K, sender: ReplicaId, message: M) -> bool:
        """Record a message; True iff this addition completes the quorum."""
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
        if sender in bucket.senders:
            return False
        bucket.senders.add(sender)
        bucket.messages.append((sender, message))
        if not bucket.fired and len(bucket.senders) >= self._threshold:
            bucket.fired = True
            return True
        return False

    def count(self, key: K) -> int:
        bucket = self._buckets.get(key)
        return len(bucket.senders) if bucket else 0

    def has_quorum(self, key: K) -> bool:
        bucket = self._buckets.get(key)
        return bool(bucket and bucket.fired)

    def senders(self, key: K) -> Set[ReplicaId]:
        bucket = self._buckets.get(key)
        return set(bucket.senders) if bucket else set()

    def messages(self, key: K) -> Tuple[M, ...]:
        """All collected messages for ``key`` in arrival order."""
        bucket = self._buckets.get(key)
        if bucket is None:
            return ()
        return tuple(m for _sender, m in bucket.messages)

    def quorum_messages(self, key: K) -> Tuple[M, ...]:
        """The first ``threshold`` messages for ``key`` (the certificate set)."""
        bucket = self._buckets.get(key)
        if bucket is None or not bucket.fired:
            raise QuorumError(f"no quorum formed for key {key!r}")
        return tuple(m for _sender, m in bucket.messages[: self._threshold])

    def keys(self) -> Tuple[K, ...]:
        return tuple(self._buckets.keys())

    def clear(self) -> None:
        self._buckets.clear()


class ProbabilisticQuorumCollector(QuorumCollector[K, M]):
    """A :class:`QuorumCollector` whose threshold is the probabilistic ``q``.

    Semantically identical to the generic collector; the subclass exists so
    protocol code reads like the paper ("receiving messages from a
    probabilistic quorum").
    """
