"""Prepared certificates and the paper's ``prepared`` predicate.

A *prepared certificate* for value ``x`` in view ``v`` held by replica ``j``
is a set ``C`` of signed Prepare messages such that (paper §3.2)::

    prepared(C, v, x, j)  <=>
        ∃Q: |Q| = q  ∧  C = {⟨Prepare, ⟨v,x⟩_leader, S_k, P_k⟩_k : k ∈ Q}
        ∧ leader-signed statement is by leader(v)
        ∧ ∀ messages: j ∈ S_k ∧ VRF_verify(K_u,k, v‖"prepare", o·q, S_k, P_k)

plus (implicitly) that every outer signature verifies and senders are
distinct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..config import ProtocolConfig
from ..crypto.signatures import SignatureScheme, Signed
from ..crypto.vrf import VRF, phase_seed
from ..messages.base import ProposalStatement
from ..messages.probft import Prepare
from ..types import ReplicaId, Value, View


@dataclass(frozen=True)
class PreparedCertificate:
    """An immutable bundle of signed Prepare messages proving preparation."""

    view: View
    value: Value
    messages: Tuple[Signed, ...]  # Signed[Prepare]

    def canonical(self):
        return ("prepared-cert", self.view, self.value, self.messages)

    def senders(self) -> Tuple[ReplicaId, ...]:
        return tuple(m.signer for m in self.messages)


def validate_prepared_certificate(
    cert: Tuple[Signed, ...],
    view: View,
    value: Optional[Value],
    holder: ReplicaId,
    config: ProtocolConfig,
    signatures: SignatureScheme,
    vrf: VRF,
    leader_of_view=None,
) -> bool:
    """Implements ``prepared(C, v, x, j)`` over raw signed messages.

    Args:
        cert: the candidate certificate (tuple of ``Signed[Prepare]``).
        view: the view ``v`` the certificate claims.
        value: the value ``x`` (``None`` accepts any single consistent value).
        holder: the replica ``j`` that claims to hold the certificate.
        config: protocol parameters (supplies ``q`` and sample size).
        signatures / vrf: verification services.
        leader_of_view: the ``leader(v)`` function; ``None`` uses the
            config's offset-aware round-robin schedule.
    """
    if len(cert) < config.q:
        return False
    if leader_of_view is not None:
        expected_leader = leader_of_view(view, config.n)
    else:
        expected_leader = (view - 1 + config.leader_offset) % config.n
    seed = phase_seed(view, "prepare", config.seed_domain)
    seen_senders = set()
    statement_value: Optional[Value] = value
    for signed in cert:
        if not signatures.verify(signed):
            return False
        prepare = signed.payload
        if not isinstance(prepare, Prepare):
            return False
        statement = prepare.statement
        if not signatures.verify(statement):
            return False
        inner = statement.payload
        if not isinstance(inner, ProposalStatement):
            return False
        if statement.signer != expected_leader:
            return False
        if inner.view != view or inner.domain != config.seed_domain:
            return False
        if statement_value is None:
            statement_value = inner.value
        elif inner.value != statement_value:
            return False
        if signed.signer in seen_senders:
            return False
        seen_senders.add(signed.signer)
        sample = prepare.sample
        if holder not in sample.sample:
            return False
        if not vrf.verify(signed.signer, seed, config.sample_size, sample):
            return False
    return len(seen_senders) >= config.q
