"""Deterministic quorum collector.

Used for ``NewLeader`` collection in ProBFT (Algorithm 1 line 6 requires a
*deterministic* quorum of ``⌈(n+f+1)/2⌉`` messages) and throughout the PBFT
baseline.  Any two deterministic quorums intersect in at least one correct
replica (paper Figure 2).
"""

from __future__ import annotations

from ..config import deterministic_quorum_size
from .probabilistic import QuorumCollector


class DeterministicQuorumCollector(QuorumCollector):
    """Collector with the PBFT quorum threshold ``⌈(n+f+1)/2⌉``."""

    def __init__(self, n: int, f: int) -> None:
        super().__init__(threshold=deterministic_quorum_size(n, f))
        self._n = n
        self._f = f

    @property
    def n(self) -> int:
        return self._n

    @property
    def f(self) -> int:
        return self._f
