"""Quorum systems.

* :mod:`repro.quorum.probabilistic` — matching-message collectors for
  ProBFT's probabilistic quorums (``q = ⌈l·√n⌉`` distinct senders).
* :mod:`repro.quorum.deterministic` — deterministic quorum collectors
  (``⌈(n+f+1)/2⌉``) for NewLeader sets and the PBFT baseline.
* :mod:`repro.quorum.certificates` — prepared certificates and the paper's
  ``prepared`` predicate.
"""

from .probabilistic import QuorumCollector, ProbabilisticQuorumCollector
from .deterministic import DeterministicQuorumCollector
from .certificates import PreparedCertificate, validate_prepared_certificate

__all__ = [
    "QuorumCollector",
    "ProbabilisticQuorumCollector",
    "DeterministicQuorumCollector",
    "PreparedCertificate",
    "validate_prepared_certificate",
]
