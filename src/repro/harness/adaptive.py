"""Adaptive trial budgets: deterministic early stopping on Wilson intervals.

The headline Figure-5 metrics are binomial proportions, so every extra
trial buys a predictable narrowing of the cell's Wilson interval — and a
fixed trial budget keeps spending long after the interval is already
narrower than anyone will read off the plot.  This module lets every
experiment surface stop a cell as soon as its interval is *good enough*:

* :class:`StoppingRule` — the decision vocabulary: :class:`FixedBudget`
  (the classical cap, expressed as a rule), :class:`TargetWidth` (stop when
  a named proportion metric's Wilson interval is at most ``width`` wide),
  and the composites :class:`Any` / :class:`All`.
* :func:`consume_adaptive` — the one driver loop: pull results from a
  (windowed) stream, fold each into the caller's accumulator, and evaluate
  the rule **only at deterministic checkpoint boundaries** (every ``chunk``
  trials, plus once at stream exhaustion).
* :class:`ProportionProgress` — adapts a dict of named
  :class:`~repro.harness.metrics.StreamingProportion` counters to the
  progress view rules consume (the Monte-Carlo estimators use it;
  :class:`~repro.harness.registry.CellAccumulator` implements the same view
  natively for matrix cells).

Determinism is the whole design: rules never see wall-clock, worker
counts, or completion order — only the submission-order prefix folded so
far — and they are consulted only when ``trials`` is a multiple of
``chunk`` (or the stream ends).  Because per-trial seeds are
counter-derived (:func:`~repro.harness.backends.base.derive_seed`), an
adaptive run's results are **bit-identical to a prefix of the fixed-budget
run**, its ``trials_used`` is identical on every backend and worker count,
and re-running it reproduces the same stop.  Early cancel travels through
the :class:`~repro.harness.backends.base.Backend` seam's bounded-window
stream contract (``stream(..., window=...)``), so stopping a cell abandons
at most a window of in-flight trials instead of draining the full seed
range.

Choosing ``width`` and ``chunk``: for a proportion pinned near 0 or 1 (our
agreement/termination rates), an all-success Wilson interval has width
``z²/(t+z²)``, so a target width ``w`` resolves after roughly ``z²(1-w)/w``
trials (≈73 for ``w=0.05``, ≈7 for ``w=0.35`` at 95%).  ``chunk`` trades
checkpoint overhead against overshoot: the run can only stop at multiples
of ``chunk``, and cancellation abandons at most about one window (=
``chunk``) of in-flight trials, so pick a chunk a small fraction of the
expected stopping point.
"""

from __future__ import annotations

import typing
from typing import Callable, Dict, Iterable, Optional, Tuple

from .metrics import StreamingProportion

__all__ = [
    "All",
    "Any",
    "DEFAULT_CHUNK",
    "FixedBudget",
    "ProportionProgress",
    "STOP_BUDGET",
    "STOP_MAX_TRIALS",
    "STOP_TARGET_WIDTH",
    "StoppingRule",
    "TargetWidth",
    "consume_adaptive",
]

#: Default checkpoint period: rules are evaluated every this many trials.
DEFAULT_CHUNK = 32

#: Canonical stop reasons (the ``stop_reason`` column's vocabulary).
STOP_BUDGET = "budget"
STOP_TARGET_WIDTH = "target-width"
STOP_MAX_TRIALS = "max-trials"


class Progress(typing.Protocol):
    """What a stopping rule may observe: the folded submission-order prefix.

    ``trials`` is how many results have been folded so far; ``width(metric)``
    is the current Wilson interval width of a named proportion metric
    (``1.0`` before any trial — the zero-information interval).  Nothing
    else (no wall-clock, no scheduling) is visible, which is what keeps
    adaptive stops bit-reproducible.
    """

    @property
    def trials(self) -> int: ...  # pragma: no cover - protocol

    def width(self, metric: str) -> float: ...  # pragma: no cover - protocol


class StoppingRule:
    """Decides, at a checkpoint, whether a run has earned its stop.

    ``decision(progress)`` returns a short stop-reason string (e.g.
    ``"target-width"``) to stop, or ``None`` to continue.  Rules must be
    pure functions of the progress view — evaluated only at deterministic
    checkpoint boundaries by :func:`consume_adaptive`, which is what makes
    ``trials_used`` identical across backends and worker counts.

    Compose with ``|`` (stop when either fires) and ``&`` (stop only when
    both fire), or the :class:`Any` / :class:`All` combinators directly.
    """

    def decision(self, progress: Progress) -> Optional[str]:
        raise NotImplementedError

    def trial_cap(self) -> Optional[int]:
        """The hard trial bound this rule guarantees, if any.

        :func:`consume_adaptive` inserts an extra checkpoint exactly at the
        cap, so declared bounds (``FixedBudget.trials``,
        ``TargetWidth.max_trials``) are honored to the trial even when they
        are not multiples of ``chunk``.  ``None`` means unbounded.
        """
        return None

    def __or__(self, other: "StoppingRule") -> "Any":
        return Any(self, other)

    def __and__(self, other: "StoppingRule") -> "All":
        return All(self, other)


class FixedBudget(StoppingRule):
    """The classical fixed budget, expressed as a rule: stop at ``trials``.

    On its own it reproduces today's behavior exactly (the spec stream is
    already capped, so the rule fires at exhaustion); composed, it is the
    cap that bounds an open-ended :class:`TargetWidth` hunt.
    """

    def __init__(self, trials: int) -> None:
        if trials < 1:
            raise ValueError(f"budget trials must be >= 1, got {trials}")
        self.trials = trials

    def decision(self, progress: Progress) -> Optional[str]:
        return STOP_BUDGET if progress.trials >= self.trials else None

    def trial_cap(self) -> Optional[int]:
        return self.trials

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedBudget({self.trials})"


class TargetWidth(StoppingRule):
    """Stop when ``metric``'s Wilson interval is at most ``width`` wide.

    ``metric`` names a proportion the progress view exposes
    (``agreement_rate`` for matrix cells; an estimate key for the
    Monte-Carlo estimators).  ``min_trials`` refuses to stop before a
    floor (checkpointing already imposes one chunk); ``max_trials`` is a
    built-in cap for open-ended streams — with reason ``"max-trials"`` so
    reports distinguish *converged* from *gave up*.
    """

    def __init__(
        self,
        width: float,
        metric: str = "agreement_rate",
        min_trials: int = 1,
        max_trials: Optional[int] = None,
    ) -> None:
        if not 0.0 < width <= 1.0:
            raise ValueError(f"target width must be in (0, 1], got {width}")
        if min_trials < 1:
            raise ValueError(f"min_trials must be >= 1, got {min_trials}")
        if max_trials is not None and max_trials < min_trials:
            raise ValueError(
                f"max_trials {max_trials} must be >= min_trials {min_trials}"
            )
        self.width = width
        self.metric = metric
        self.min_trials = min_trials
        self.max_trials = max_trials

    def decision(self, progress: Progress) -> Optional[str]:
        trials = progress.trials
        if trials >= self.min_trials and progress.width(self.metric) <= self.width:
            return STOP_TARGET_WIDTH
        if self.max_trials is not None and trials >= self.max_trials:
            return STOP_MAX_TRIALS
        return None

    def trial_cap(self) -> Optional[int]:
        return self.max_trials

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TargetWidth({self.width}, metric={self.metric!r}, "
            f"min_trials={self.min_trials}, max_trials={self.max_trials})"
        )


class Any(StoppingRule):
    """Stop when any member rule fires; the first firing rule's reason wins.

    Member order is the tie-break (deterministic): ``Any(TargetWidth(...),
    FixedBudget(...))`` reports ``"target-width"`` when both fire at the
    same checkpoint.
    """

    def __init__(self, *rules: StoppingRule) -> None:
        if not rules:
            raise ValueError("Any() needs at least one rule")
        self.rules = tuple(rules)

    def decision(self, progress: Progress) -> Optional[str]:
        for rule in self.rules:
            reason = rule.decision(progress)
            if reason is not None:
                return reason
        return None

    def trial_cap(self) -> Optional[int]:
        # Any member's cap stops the composite: the earliest one binds.
        caps = [c for c in (r.trial_cap() for r in self.rules) if c is not None]
        return min(caps) if caps else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Any({', '.join(map(repr, self.rules))})"


class All(StoppingRule):
    """Stop only when every member rule fires; reasons join with ``+``."""

    def __init__(self, *rules: StoppingRule) -> None:
        if not rules:
            raise ValueError("All() needs at least one rule")
        self.rules = tuple(rules)

    def decision(self, progress: Progress) -> Optional[str]:
        reasons = []
        for rule in self.rules:
            reason = rule.decision(progress)
            if reason is None:
                return None
            reasons.append(reason)
        return "+".join(reasons)

    def trial_cap(self) -> Optional[int]:
        # The composite stops only when every member fires, which a member
        # without a cap never guarantees; with all capped, the last binds.
        caps = [r.trial_cap() for r in self.rules]
        if any(c is None for c in caps):
            return None
        return max(caps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"All({', '.join(map(repr, self.rules))})"


class ProportionProgress:
    """Progress view over named :class:`StreamingProportion` counters.

    The Monte-Carlo estimators fold one counter per estimate key and hand
    this adapter to the rule; ``width`` of an unknown metric raises a
    KeyError that lists what *is* available (typo-proofing ``stopping=``).
    """

    def __init__(self, proportions: Dict[str, StreamingProportion]) -> None:
        if not proportions:
            raise ValueError("ProportionProgress needs at least one counter")
        self._proportions = proportions

    @property
    def trials(self) -> int:
        return max(p.trials for p in self._proportions.values())

    def width(self, metric: str) -> float:
        try:
            proportion = self._proportions[metric]
        except KeyError:
            raise KeyError(
                f"unknown stopping metric {metric!r}; available: "
                f"{', '.join(sorted(self._proportions))}"
            ) from None
        return proportion.interval_width


def consume_adaptive(
    results: Iterable,
    fold: Callable[[typing.Any], None],
    progress: Progress,
    rule: StoppingRule,
    chunk: int = DEFAULT_CHUNK,
) -> Tuple[int, str]:
    """Fold a result stream until ``rule`` fires at a checkpoint boundary.

    The single adaptive driver every surface shares: pull results in
    submission order, ``fold`` each, and consult ``rule`` exactly when the
    folded count is a multiple of ``chunk`` — plus at the rule's declared
    :meth:`~StoppingRule.trial_cap` (so ``FixedBudget``/``max_trials``
    bounds are honored to the trial even off the chunk grid, never
    overshot) and once at stream exhaustion, where a silent rule resolves
    to :data:`STOP_BUDGET` (the capped spec stream *was* the budget).
    Returns ``(trials_used, stop_reason)``.

    The stream is always explicitly closed on the way out (early stop,
    exhaustion, or error), which is what releases a windowed backend
    stream's in-flight work promptly; pass the stream with a ``window``
    near ``chunk`` so an early stop abandons at most about one chunk of
    trials.
    """
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    cap = rule.trial_cap()
    used = 0
    reason: Optional[str] = None
    try:
        for value in results:
            fold(value)
            used += 1
            at_cap = cap is not None and used >= cap
            if used % chunk == 0 or at_cap:
                reason = rule.decision(progress)
                if reason is None and at_cap:
                    # The cap is a hard bound even for a rule that (buggily
                    # or conservatively) declines to fire at it.
                    reason = STOP_MAX_TRIALS
                if reason is not None:
                    break
    finally:
        close = getattr(results, "close", None)
        if close is not None:
            close()
    if reason is None:
        reason = rule.decision(progress) or STOP_BUDGET
    return used, reason
