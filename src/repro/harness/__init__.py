"""Experiment harness: run protocols, collect metrics, canned scenarios.

* :mod:`repro.harness.trial` — the **unified trial lifecycle**:
  :class:`DeploymentSpec` (one trial as declarative data) →
  :class:`TrialContext` (build + drive) → :func:`run_trial` (the single
  protocol-dispatched runner every surface goes through).
* :mod:`repro.harness.runner` — keyword-compatible conveniences
  (``run_probft``/``run_pbft``/``run_hotstuff``, ``good_case_metrics``)
  layered on :func:`run_trial`.
* :mod:`repro.harness.metrics` — statistics helpers: batch (Wilson
  intervals, summaries) and streaming (:class:`Welford`,
  :class:`StreamingProportion`) accumulators.
* :mod:`repro.harness.scenarios` — named scenario builders used by tests,
  examples, and benchmarks.
* :mod:`repro.harness.parallel` — the parallel Monte-Carlo experiment
  engine (:class:`ExperimentEngine`), including the streaming
  ``stream``/``run_stream`` path.
* :mod:`repro.harness.backends` — the pluggable **execution backends**
  behind the engine: serial, process pool, asyncio, and sharded execution
  behind one ``Backend`` seam (``map``/``stream``/``close``, with a
  bounded-window/cancellation contract on ``stream``).
* :mod:`repro.harness.adaptive` — **adaptive trial budgets**: deterministic
  :class:`StoppingRule`\\ s (:class:`FixedBudget`, :class:`TargetWidth`,
  ``Any``/``All``) evaluated at chunk checkpoints, stopping a cell as soon
  as its Wilson interval is narrow enough.
* :mod:`repro.harness.registry` — the scenario registry (string-addressable
  builders) and :class:`ScenarioMatrix` (protocols × adversaries × latency
  cross products, with per-cell trial budgets).
* :mod:`repro.harness.sweep` — grid sweeps over parameter axes, optionally
  parallel.
* :mod:`repro.harness.plotting` — Figure-5 plot series from ``repro sweep
  --json`` reports (rendering gated on matplotlib).

The trial lifecycle
===================

Every protocol-level experiment is one pipeline::

    DeploymentSpec ──build──▶ deployment ──run──▶ RunResult
         │                        │
         │                 pooled CryptoContext
         │              (per-process, keyed by (n, master_seed))
         └── protocol dispatch via the trial registry

:class:`~repro.harness.trial.DeploymentSpec` declares *what* to run
(protocol, config, seed, network model, adversary map, budgets);
:func:`~repro.harness.trial.run_trial` executes it.  Deployments draw
their crypto from :meth:`CryptoContext.pooled
<repro.crypto.context.CryptoContext.pooled>`: trials of the same
``(n, master_seed)`` share one immutable key registry, and pooled
signature/VRF services memoize verification (pure functions only), which
makes protocol trials several times faster while staying **bit-identical**
to fresh per-trial crypto — ``tests/test_trial_lifecycle.py`` pins that
equivalence.  New protocols register once
(:func:`~repro.harness.trial.register_protocol`) and inherit every
experiment surface: runners, matrix, sweeps, CLI.

Running sweeps
==============

The Monte-Carlo estimators, grid sweeps, and scenario matrices all fan
their trials through :class:`~repro.harness.parallel.ExperimentEngine`::

    from repro.harness import ExperimentEngine
    from repro.montecarlo.experiments import estimate_termination

    # One-off: pass workers= to any estimator.
    result = estimate_termination(300, 60, 1.7, trials=5000, workers=8)

    # Shared: configure one engine, reuse it across calls.
    engine = ExperimentEngine(workers=8)
    result = estimate_termination(300, 60, 1.7, trials=5000, engine=engine)

From the command line, ``python -m repro sweep [matrix] --trials T
--workers K`` runs a named scenario matrix (see
:data:`repro.harness.registry.MATRICES`, or ``repro sweep --help`` for the
annotated list) and prints a per-cell table, or JSON with ``--json``;
omitting ``--trials`` applies the matrix's per-cell trial budgets.
``--workers auto`` resolves to the machine's core count, and ``--backend
{serial,pool,async,sharded}`` picks the execution backend.
``python -m repro plot report.json ... -o fig5.png`` renders Figure-5
style curves from those JSON reports (cost metrics like ``mean_messages``
and ``mean_bytes`` plot with stderr error bars; every row also carries the
achieved ``interval_width``, plottable like any metric).

Adaptive trial budgets
----------------------

Fixed budgets keep buying trials after the answer is already sharp.  Every
surface can instead stop when the Wilson interval is *good enough*:

* ``run_matrix(matrix, trials=..., target_width=0.05, chunk=32)`` (or
  ``repro sweep --target-width 0.05 --chunk 32``, or ``target_width`` /
  ``target_widths`` declared on the matrix itself) — each cell stops at
  the first ``chunk`` boundary where its agreement-rate interval is at
  most that wide, with the trial budget as the worst-case cap; rows gain
  ``trials_used`` and ``stop_reason``.
* estimators take ``stopping=`` — e.g. ``estimate_termination(...,
  trials=5000, stopping=TargetWidth(0.02, metric="per_replica_decides"))``
  — where ``metric`` names any estimate key; compose rules with
  ``Any``/``All`` (or ``|``/``&``) to mix width targets and caps.

**Choosing ``target_width``:** pick the coarsest interval you would accept
on the plot.  For proportions near 0 or 1 (our regime) the all-success
Wilson width after ``t`` trials is ``z²/(t+z²)``, so width ``w`` costs
about ``3.84·(1−w)/w`` trials at 95%: ``w=0.2`` → ~16, ``w=0.05`` → ~73,
``w=0.01`` → ~380.  **Choosing ``chunk``:** runs stop only at multiples of
``chunk`` and an early cancel abandons at most about one window (=
``chunk``) of in-flight trials, so make it a small fraction of the
expected stopping point (the ``DEFAULT_CHUNK`` of 32 suits widths down to
~0.05; drop to 8 for very cheap sampling-level trials, raise it when each
checkpoint's rule evaluation should be amortized over more work).

Adaptive runs keep every determinism guarantee: rules see only the folded
submission-order prefix at deterministic checkpoints, so ``trials_used``
is identical on every backend and worker count, and the estimates are
**bit-identical to the same-length prefix of the fixed-budget run**
(``tests/test_adaptive.py`` pins both).  Early cancel rides the backend
seam's bounded-window stream contract (``stream(..., window=...)``), so
stopping never drains the full seed range.

Choosing an execution backend
-----------------------------

Every surface above takes ``backend=`` (a name or a constructed
:class:`~repro.harness.backends.base.Backend`); the choice moves only
wall-clock, never results:

* ``serial`` (default for ``workers <= 1``) — in-process, no pickling,
  pdb/coverage-friendly; the reference implementation and the right tool
  for debugging and tiny runs.
* ``pool`` (default for ``workers > 1``) — a ``multiprocessing`` pool;
  the workhorse for CPU-bound protocol trials, ~linear in cores when each
  trial is ≫ the per-chunk IPC cost.  Trial functions must be picklable.
  Happy-path shutdown is graceful (in-flight chunks finish; worker atexit/
  coverage hooks run); only error paths and GC hard-terminate.
* ``async`` — an in-process event loop over a small thread pool.  No
  pickling requirement (closures welcome), overlaps one trial's
  ``build()`` crypto warm-up with others' ``execute()``; it wins when
  trials release the GIL (NumPy, hashing, future I/O-bound sources) and
  is the concurrent option for objects that cannot cross process
  boundaries.
* ``sharded`` — batches the spec range into deterministic seed shards
  fanned over an inner backend (pool by default), one dispatch per shard
  instead of per trial; the tool for *very cheap, very many* trials
  (sampling-level Monte-Carlo) where per-trial IPC would dominate, and
  for constant-memory fan-in via per-shard accumulator merging
  (:meth:`ShardedBackend.map_reduce
  <repro.harness.backends.sharded.ShardedBackend.map_reduce>` +
  ``Welford.merge``/``StreamingProportion.merge``).  Its shard/merge
  shape is the seam future multi-host execution plugs into.

Whatever the backend, results are **bit-identical** (pinned by
``tests/test_backends.py``): seeds are counter-derived per trial and
collection is submission-ordered, so scheduling never leaks into results.

Scaling past n≈100
------------------

Dense delivery — one simulator event per ``(message, recipient)`` pair —
is the reference semantics, but its per-event python cost makes protocol
trials at n≥500 crawl.  ``DeploymentSpec.with_sparse()`` flips a trial to
the **sparse delivery layer**: :class:`~repro.net.sparse
.SparseDeliveryPolicy` coalesces each multicast/broadcast into one
simulator event per distinct delivery time, and ProBFT additionally
attaches :class:`~repro.core.observation.SampleObservationPolicy`, which
prunes deliveries the recipient's quorum-sample state provably ignores.
Sparse runs are **bit-identical** to dense on the same spec — same
``RunResult``, same message stats, same simulated time
(``tests/test_sparse_delivery.py`` pins every protocol × adversary ×
latency cell) — so the flag moves only wall-clock, like ``workers=``::

    spec = cell_deployment_spec(cell, seed=seed, max_time=300.0)
    result = run_trial(spec.with_sparse())   # ≥5x dense at n=500

Use sparse for any large-n protocol sweep.  Dense remains the default
because it is the reference implementation and the equivalence oracle;
keep it for debugging (one event per delivery is easier to trace) and
for pinning new protocols/adversaries before trusting their sparse runs.
Related large-n levers: the analytical estimators take
``vectorized=True`` (numpy batch kernels, bit-identical, fixed budgets
only — see :mod:`repro.montecarlo.vectorized`), and
``benchmarks/bench_scale.py`` writes ``BENCH_scale.json`` (trials/sec ×
n, dense vs sparse vs columnar vs gossip) — the scoreboard for scaling
regressions.

Choosing columnar state
~~~~~~~~~~~~~~~~~~~~~~~

Past n≈5000 the bottleneck moves from event *count* to per-event python
cost: every coalesced fan-out still walks its recipients through dict-
backed per-replica collectors.  ``DeploymentSpec.with_columnar()`` (on
top of ``with_sparse()``) swaps the vote bookkeeping for one shared set
of numpy arrays — packed-uint64 voter bitmaps, per-slot counters, and a
bucket-wide dispatch kernel (:mod:`repro.core.columnar`) that applies a
whole fan-out in a handful of masked scatters instead of a python loop
per recipient.  Like sparse, columnar is **bit-identical** to dense on
the same spec (``tests/test_columnar.py`` replays protocol × adversary
cells both ways), so it also moves only wall-clock::

    spec = cell_deployment_spec(cell, seed=seed, max_time=300.0)
    result = run_trial(spec.with_sparse().with_columnar())  # n≈20,000 OK

Or flip a whole sweep at once: ``MatrixCell(columnar=True)`` /
``ScenarioMatrix(columnar=True)`` / ``repro sweep --columnar`` run every
cell on the sparse+columnar stack.  Requires numpy (the build raises a
clear error without it); dense and sparse need none.  Rules of thumb:

* **n ≤ 500** — plain dense; the reference path is fast enough and is
  the oracle every seam is compared against.
* **500 < n ≤ 5000** — ``with_sparse()``; columnar helps here too but
  the array setup only clearly pays past ~10³ replicas.
* **n > 5000** — ``with_sparse().with_columnar()``; at n=20,000 this is
  the only stack that completes a trial in CI-scale wall-clock.  Add
  ``track_memory=True`` (or ``--track-memory``) to watch peak heap.

Choosing a dissemination mode
~~~~~~~~~~~~~~~~~~~~~~~~~~~~~

Orthogonal to *delivery* (dense/sparse — how the simulator schedules
deliveries, never what is sent) is *dissemination* — how the leader's
PROPOSE physically spreads (ProBFT only).  ``DeploymentSpec
.with_gossip()`` swaps the leader's ``O(n)`` broadcast for the
sample-and-forward gossip of :mod:`repro.net.gossip`: every node forwards
a fresh proposal once to a seeded deterministic sample of
``⌈log2 n⌉ + 2`` peers (knobs: ``gossip_fanout``/``gossip_rounds``),
so no single node — leader included — ever sends ``O(n)`` messages.

Unlike ``with_sparse()``, gossip **changes the run**: more total
messages, one-to-two extra latency hops, and per-seed (still fully
deterministic) dissemination trajectories.  Estimates are statistically
consistent with dense runs, not bit-equal to them.  Pick by question:

* **dense** (default) — reproducing the paper's numbers, golden-seed
  pinning, any comparison against the analytical model (which assumes
  one-step proposal delivery).
* **gossip** — studying realistic dissemination at scale: per-node
  bandwidth bounded by fan-out, equivocation under partial information
  (a Byzantine leader restricts only its *own* first hop — honest relays
  leak conflicting proposals across its partitions), flooding
  amplification through honest relays.  Compose with ``with_sparse()``
  for large n; ``with_gossip(False)`` round-trips to exact dense
  semantics (``tests/test_gossip.py`` pins identity on every
  protocol × adversary cell).

Driving the SMR layer
---------------------

Protocol trials answer "does one slot decide?"; the serving surface
(:mod:`repro.smr.workload`) answers "what does a replicated *service*
deliver under sustained client load?".  A :class:`~repro.smr.workload
.ServingSpec` describes one closed-loop trial — adversary × load level ×
replication knobs — and :func:`~repro.smr.workload.run_serving_trial`
(picklable, engine-ready via :func:`~repro.smr.workload.serving_trials` +
:func:`~repro.smr.workload.run_serving_trial_spec`) returns throughput
and a latency profile (p50/p99/p999 via this package's
:func:`~repro.harness.metrics.percentile` /
:class:`~repro.harness.metrics.LatencyAccumulator`)::

    from repro.smr import ServingSpec, run_serving_trial, serving_cells

    result = run_serving_trial(ServingSpec(adversary="none", load="high"))
    matrix = [run_serving_trial(s) for s in serving_cells()]

Choosing the knobs:

* **Load level** (``low``/``high``, see :data:`~repro.smr.workload
  .LOAD_LEVELS`) — ``low`` keeps clients mostly thinking (latency floor:
  expect p50 near the 4-hop consensus minimum); ``high`` keeps the
  request queue saturated, which is the regime where batching and
  pipelining matter and where the committed ``BENCH_smr_serving.json``
  cells are measured.
* **Batching and pipelining** — ``batch_size`` packs queued requests into
  one consensus value, ``pipeline`` keeps that many slots in flight.  On
  the high-load cell the defaults (``batch_size=8, pipeline=4``) deliver
  roughly **25x** the throughput of unbatched ``pipeline=1`` at similar
  p50 — consensus rounds, not payload bytes, are the scarce resource, so
  amortizing slots across requests is the single biggest serving lever.
* **Deployment size** — serving specs default to ``n=9``, the smallest
  deployment whose probabilistic quorum (``q = ⌈2√n⌉``) stays attainable
  with a faulty member; at ``n=4`` any Byzantine seat starves every slot.
* **Adversaries** (:data:`~repro.smr.workload.SERVING_ADVERSARIES`) — the
  equivocating leader costs about 5x in throughput (every slot pays a
  view-change timeout before an honest leader serves it); the flooder is
  absorbed by signature rejection and leaves the latency profile
  bit-identical to the no-fault cell.
* **Leadership rotation** (``rotate_leaders=True``) — by default every
  slot's view-1 leader is replica 0, so a single equivocating seat taxes
  *every* slot.  With rotation on, slot ``s`` opens under leader
  ``(s + 1) mod n`` (each slot's :class:`~repro.config.ProtocolConfig`
  carries a ``leader_offset``), so a Byzantine seat leads — and can
  attack — only ~1/n of slots: the attacked high-load cell recovers
  **≥ 3x** throughput (the committed rotation ablation).  Rotation off is
  bit-identical to the historical fixed-leader schedule.
* **Arrival discipline** (``arrival="closed"``/``"open"``) — closed-loop
  clients wait for completions before thinking and resubmitting, so
  offered load adapts to service rate; open-loop clients pre-draw Poisson
  arrivals at ``offered_rate`` aggregate requests per sim-second
  (defaults per load level in :data:`~repro.smr.workload
  .OPEN_LOOP_RATES`) and submit on schedule regardless.  Open loop is the
  discipline where a slow service shows up as queueing delay in the
  latency tail instead of quietly throttling throughput — and the
  per-client-id apply index keeps populations in the thousands cheap
  (dispatch is O(1) per applied command, not O(clients)).

``repro serve [--matrix] [--rotate-leaders] [--arrival {closed,open,both}]``
is the CLI face; ``tests/test_smr_serving.py`` and
``tests/test_smr_rotation.py`` pin golden-seed determinism (same spec +
seed → bit-identical latency tuples on any backend, rotate-off cells
bit-identical to the committed artifact rows), and
``benchmarks/bench_smr_serving.py`` writes the committed scoreboard
including the rotation ablation and open-loop rows.

Adversary dispatch and cost columns
-----------------------------------

Matrix adversaries resolve through the protocol-keyed
:mod:`repro.adversary.registry` behavior registry
(:func:`~repro.adversary.registry.register_behavior`): protocol-agnostic
behaviors (silence, crashes, the targeted scheduler, network
``duplication``) register once, while the forgery attacks dispatch to
per-protocol implementations — ProBFT's Figure-4 equivocation/flooding and
their PBFT/HotStuff analogues — so **no protocol × adversary cell is
unsupported** (the ``adversary-complete`` matrix is the CI audit).  Every
report row carries message-cost columns (``mean_messages`` /
``messages_stderr``); matrices declared with ``track_bytes=True`` (e.g.
``byte-costs``) also fill ``mean_bytes`` / ``bytes_stderr`` from canonical
message encodings, making bit complexity a first-class sweep metric.

Streaming aggregation
---------------------

Large sweeps never materialize their trial rows: ``run_matrix`` consumes
:meth:`ExperimentEngine.stream
<repro.harness.parallel.ExperimentEngine.stream>` and folds every result
into a per-cell :class:`~repro.harness.registry.CellAccumulator`
(:class:`~repro.harness.metrics.Welford` running means/CIs +
:class:`~repro.harness.metrics.StreamingProportion` Wilson intervals), so
a 10⁵-trial cell costs a handful of floats.  The running mean is the same
left-fold ``sum/len`` computes, so streamed and materialized estimates are
identical — ``tests/test_streaming.py`` pins that equality on golden
seeds.

Determinism guarantees
----------------------

* Trial ``i`` of a run with master seed ``m`` always draws from a generator
  seeded with ``derive_seed(m, i)`` — a pure counter-based splitter with no
  global RNG state — so a trial's randomness is independent of scheduling.
* Results are collected (and streamed) in submission order regardless of
  completion order, so even order-sensitive float aggregation is
  reproducible.
* Consequently **serial (``workers=0``) and parallel (``workers=k``) runs
  of the same experiment are bit-identical**, and ``workers`` may be chosen
  purely for speed.  ``tests/test_seed_stability.py`` pins golden per-seed
  outputs; re-record those goldens in the same commit as any intentional
  RNG-stream change.

Worker configuration
--------------------

``workers=0`` (default) and ``workers=1`` run in-process — no pool, no
pickling requirements, pdb-friendly.  ``workers>1`` spawns that many pool
processes (values above the core count are allowed; the OS time-slices).
Trial functions crossing a pool boundary must be picklable (module-level
functions or partials of them); a failing trial raises
:class:`~repro.harness.parallel.TrialError` carrying the trial index, seed,
and worker traceback.
"""

from .adaptive import (
    DEFAULT_CHUNK,
    FixedBudget,
    ProportionProgress,
    StoppingRule,
    TargetWidth,
    consume_adaptive,
)
from .trial import (
    DeploymentSpec,
    TrialContext,
    list_protocols,
    register_protocol,
    run_trial,
)
from .runner import (
    RunResult,
    run_protocol,
    run_probft,
    run_pbft,
    run_hotstuff,
    good_case_metrics,
)
from .metrics import (
    LatencyAccumulator,
    mean,
    percentile,
    stddev,
    wilson_interval,
    ProportionEstimate,
    StreamingProportion,
    Welford,
)
from .backends import (
    AsyncioBackend,
    Backend,
    ProcessPoolBackend,
    SerialBackend,
    ShardedBackend,
    backend_from_env,
    list_backends,
    make_backend,
    resolve_workers,
)
from .parallel import (
    ExperimentEngine,
    TrialError,
    TrialSpec,
    derive_seed,
    spawn_seeds,
    workers_from_env,
)
from .registry import (
    MATRICES,
    CellAccumulator,
    MatrixReport,
    ScenarioMatrix,
    build_scenario,
    get_matrix,
    get_scenario,
    list_matrices,
    list_scenarios,
    run_matrix,
    scenario,
)
from .scenarios import (
    happy_case,
    silent_leader_case,
    crash_case,
    pre_gst_chaos_case,
    equivocation_case,
    flooding_case,
)

__all__ = [
    "DEFAULT_CHUNK",
    "FixedBudget",
    "ProportionProgress",
    "StoppingRule",
    "TargetWidth",
    "consume_adaptive",
    "DeploymentSpec",
    "TrialContext",
    "run_trial",
    "register_protocol",
    "list_protocols",
    "RunResult",
    "run_protocol",
    "run_probft",
    "run_pbft",
    "run_hotstuff",
    "good_case_metrics",
    "LatencyAccumulator",
    "mean",
    "percentile",
    "stddev",
    "wilson_interval",
    "ProportionEstimate",
    "StreamingProportion",
    "Welford",
    "ExperimentEngine",
    "TrialError",
    "TrialSpec",
    "derive_seed",
    "spawn_seeds",
    "workers_from_env",
    "AsyncioBackend",
    "Backend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ShardedBackend",
    "backend_from_env",
    "list_backends",
    "make_backend",
    "resolve_workers",
    "MATRICES",
    "CellAccumulator",
    "MatrixReport",
    "ScenarioMatrix",
    "build_scenario",
    "get_matrix",
    "get_scenario",
    "list_matrices",
    "list_scenarios",
    "run_matrix",
    "scenario",
    "happy_case",
    "silent_leader_case",
    "crash_case",
    "pre_gst_chaos_case",
    "equivocation_case",
    "flooding_case",
]
