"""Experiment harness: run protocols, collect metrics, canned scenarios.

* :mod:`repro.harness.runner` — one-call protocol runs returning a uniform
  :class:`RunResult` (decisions, message counts, steps, views).
* :mod:`repro.harness.metrics` — statistics helpers (Wilson intervals,
  summaries) for Monte-Carlo experiments.
* :mod:`repro.harness.scenarios` — named scenario builders used by tests,
  examples, and benchmarks.
* :mod:`repro.harness.parallel` — the parallel Monte-Carlo experiment
  engine (:class:`ExperimentEngine`).
* :mod:`repro.harness.registry` — the scenario registry (string-addressable
  builders) and :class:`ScenarioMatrix` (protocols × adversaries × latency
  cross products).
* :mod:`repro.harness.sweep` — grid sweeps over parameter axes, optionally
  parallel.

Running sweeps
==============

The Monte-Carlo estimators, grid sweeps, and scenario matrices all fan
their trials through :class:`~repro.harness.parallel.ExperimentEngine`::

    from repro.harness import ExperimentEngine
    from repro.montecarlo.experiments import estimate_termination

    # One-off: pass workers= to any estimator.
    result = estimate_termination(300, 60, 1.7, trials=5000, workers=8)

    # Shared: configure one engine, reuse it across calls.
    engine = ExperimentEngine(workers=8)
    result = estimate_termination(300, 60, 1.7, trials=5000, engine=engine)

From the command line, ``python -m repro sweep [matrix] --trials T
--workers K`` runs a named scenario matrix (see
:data:`repro.harness.registry.MATRICES`) and prints a per-cell table, or
JSON with ``--json``.

Determinism guarantees
----------------------

* Trial ``i`` of a run with master seed ``m`` always draws from a generator
  seeded with ``derive_seed(m, i)`` — a pure counter-based splitter with no
  global RNG state — so a trial's randomness is independent of scheduling.
* Results are collected in submission order regardless of completion order,
  so even order-sensitive float aggregation is reproducible.
* Consequently **serial (``workers=0``) and parallel (``workers=k``) runs
  of the same experiment are bit-identical**, and ``workers`` may be chosen
  purely for speed.  ``tests/test_seed_stability.py`` pins golden per-seed
  outputs; re-record those goldens in the same commit as any intentional
  RNG-stream change.

Worker configuration
--------------------

``workers=0`` (default) and ``workers=1`` run in-process — no pool, no
pickling requirements, pdb-friendly.  ``workers>1`` spawns that many pool
processes (values above the core count are allowed; the OS time-slices).
Trial functions crossing a pool boundary must be picklable (module-level
functions or partials of them); a failing trial raises
:class:`~repro.harness.parallel.TrialError` carrying the trial index, seed,
and worker traceback.
"""

from .runner import RunResult, run_probft, run_pbft, run_hotstuff, good_case_metrics
from .metrics import mean, stddev, wilson_interval, ProportionEstimate
from .parallel import (
    ExperimentEngine,
    TrialError,
    TrialSpec,
    derive_seed,
    spawn_seeds,
    workers_from_env,
)
from .registry import (
    MATRICES,
    MatrixReport,
    ScenarioMatrix,
    build_scenario,
    get_matrix,
    get_scenario,
    list_matrices,
    list_scenarios,
    run_matrix,
    scenario,
)
from .scenarios import (
    happy_case,
    silent_leader_case,
    crash_case,
    pre_gst_chaos_case,
    equivocation_case,
    flooding_case,
)

__all__ = [
    "RunResult",
    "run_probft",
    "run_pbft",
    "run_hotstuff",
    "good_case_metrics",
    "mean",
    "stddev",
    "wilson_interval",
    "ProportionEstimate",
    "ExperimentEngine",
    "TrialError",
    "TrialSpec",
    "derive_seed",
    "spawn_seeds",
    "workers_from_env",
    "MATRICES",
    "MatrixReport",
    "ScenarioMatrix",
    "build_scenario",
    "get_matrix",
    "get_scenario",
    "list_matrices",
    "list_scenarios",
    "run_matrix",
    "scenario",
    "happy_case",
    "silent_leader_case",
    "crash_case",
    "pre_gst_chaos_case",
    "equivocation_case",
    "flooding_case",
]
