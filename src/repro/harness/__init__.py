"""Experiment harness: run protocols, collect metrics, canned scenarios.

* :mod:`repro.harness.runner` — one-call protocol runs returning a uniform
  :class:`RunResult` (decisions, message counts, steps, views).
* :mod:`repro.harness.metrics` — statistics helpers (Wilson intervals,
  summaries) for Monte-Carlo experiments.
* :mod:`repro.harness.scenarios` — named scenario builders used by tests,
  examples, and benchmarks.
"""

from .runner import RunResult, run_probft, run_pbft, run_hotstuff, good_case_metrics
from .metrics import mean, stddev, wilson_interval, ProportionEstimate
from .scenarios import (
    happy_case,
    silent_leader_case,
    crash_case,
    pre_gst_chaos_case,
    equivocation_case,
    flooding_case,
)

__all__ = [
    "RunResult",
    "run_probft",
    "run_pbft",
    "run_hotstuff",
    "good_case_metrics",
    "mean",
    "stddev",
    "wilson_interval",
    "ProportionEstimate",
    "happy_case",
    "silent_leader_case",
    "crash_case",
    "pre_gst_chaos_case",
    "equivocation_case",
    "flooding_case",
]
