"""Parallel Monte-Carlo experiment engine.

The Figure-5 experiments are embarrassingly parallel: every trial is an
independent function of its own seed.  :class:`ExperimentEngine` exploits
that by fanning ``(index, seed, params)`` trial specs across a
``multiprocessing`` pool while keeping one hard guarantee:

**serial and parallel execution produce bit-identical results.**

Two mechanisms make that hold:

* *counter-based seed splitting* — every trial's seed is derived from the
  master seed and the trial index alone (`derive_seed`, a SplitMix64-style
  integer mix with no :mod:`random`/:mod:`numpy` state involved), so a
  trial's randomness never depends on which process runs it or in which
  order trials complete;
* *submission-order collection* — :meth:`ExperimentEngine.map` returns
  results in the order the specs were submitted regardless of completion
  order, so even order-sensitive aggregation (e.g. float summation) is
  reproducible.

``workers <= 1`` selects an in-process serial path (no pool, no pickling)
that runs the exact same per-trial computation — handy for debugging with
pdb or coverage.  Trial functions given to the parallel path must be
picklable: module-level functions, ``functools.partial`` of module-level
functions, or picklable callables.
"""

from __future__ import annotations

import functools
import math
import multiprocessing
import multiprocessing.pool
import os
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence

__all__ = [
    "ExperimentEngine",
    "TrialError",
    "TrialSpec",
    "derive_seed",
    "spawn_seeds",
    "workers_from_env",
]

#: Pool chunk size for streaming maps, where the spec count may be unknown
#: (lazy generators): large enough to amortize IPC, small enough that
#: results flow back steadily for online aggregation.
STREAM_CHUNK = 16


def workers_from_env(var: str = "REPRO_WORKERS", default: int = 0) -> int:
    """Worker count from an environment variable; invalid values mean default.

    Shared by the benchmarks (``REPRO_BENCH_WORKERS``) so the parsing rule
    lives in one place: a non-integer or negative value falls back to
    ``default`` rather than crashing at import time.
    """
    raw = os.environ.get(var)
    if raw is None:
        return default
    try:
        workers = int(raw)
    except ValueError:
        return default
    return workers if workers >= 0 else default

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _splitmix64(z: int) -> int:
    """One SplitMix64 output step (Steele, Lea & Flood 2014)."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_seed(master_seed: int, index: int) -> int:
    """Deterministic child seed for trial ``index`` under ``master_seed``.

    A pure integer function (no RNG state), so any worker can compute any
    trial's seed independently.  Distinct indices under one master seed give
    statistically independent streams when fed to ``numpy`` /
    :class:`random.Random` as seeds.
    """
    if index < 0:
        raise ValueError(f"trial index must be >= 0, got {index}")
    z = _splitmix64((master_seed & _MASK64) + _GOLDEN)
    return _splitmix64(z + (index + 1) * _GOLDEN)


def spawn_seeds(master_seed: int, count: int) -> List[int]:
    """The first ``count`` child seeds of ``master_seed``, in index order."""
    return [derive_seed(master_seed, i) for i in range(count)]


@dataclass(frozen=True)
class TrialSpec:
    """One unit of work: a trial index, its derived seed, and shared params."""

    index: int
    seed: int
    params: Any = None


class TrialError(RuntimeError):
    """A trial function raised; carries the failing trial's identity."""

    def __init__(self, index: int, seed: int, detail: str) -> None:
        super().__init__(f"trial {index} (seed {seed}) failed:\n{detail}")
        self.index = index
        self.seed = seed
        self.detail = detail


@dataclass
class _Outcome:
    """What crosses the process boundary: a value or a stringified failure."""

    index: int
    seed: int
    value: Any = None
    error: Optional[str] = None


def _execute(fn: Callable[[TrialSpec], Any], spec: TrialSpec) -> _Outcome:
    """Run one trial, capturing any exception as data (always picklable)."""
    try:
        return _Outcome(index=spec.index, seed=spec.seed, value=fn(spec))
    except Exception:
        return _Outcome(
            index=spec.index, seed=spec.seed, error=traceback.format_exc()
        )


class ExperimentEngine:
    """Fans independent trials across processes, deterministically.

    Example:
        >>> from repro.harness.parallel import ExperimentEngine, TrialSpec
        >>> engine = ExperimentEngine(workers=0)  # serial
        >>> engine.run_trials(lambda spec: spec.seed % 7, trials=3)  # doctest: +ELLIPSIS
        [...]

    ``workers``:
        * ``0`` or ``1`` — in-process serial execution (identical results);
        * ``k > 1``      — a pool of ``k`` processes (``k`` may exceed the
          core count; the OS just time-slices).

    ``chunk_size`` controls how many specs each pool task carries; the
    default amortizes IPC overhead at roughly four chunks per worker.
    """

    def __init__(self, workers: int = 0, chunk_size: Optional[int] = None) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self._pool: Optional["multiprocessing.pool.Pool"] = None

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[TrialSpec], Any],
        specs: Iterable[TrialSpec],
    ) -> List[Any]:
        """Evaluate ``fn`` on every spec; results in submission order.

        The first failing trial (in submission order) raises
        :class:`TrialError` with the worker's traceback, whether the trial
        ran in-process or in a pool.
        """
        specs = list(specs)
        if not specs:
            return []
        if self.parallel:
            outcomes = self._map_pool(fn, specs)
        else:
            # Serial path fails fast: nothing after the first failing trial
            # runs (the pool path necessarily completes in-flight chunks),
            # and the original exception stays reachable via __cause__.
            outcomes = []
            for spec in specs:
                try:
                    value = fn(spec)
                except Exception as exc:
                    raise TrialError(
                        spec.index, spec.seed, traceback.format_exc()
                    ) from exc
                outcomes.append(
                    _Outcome(index=spec.index, seed=spec.seed, value=value)
                )
        results: List[Any] = []
        for outcome in outcomes:
            if outcome.error is not None:
                raise TrialError(outcome.index, outcome.seed, outcome.error)
            results.append(outcome.value)
        return results

    def _get_pool(self) -> "multiprocessing.pool.Pool":
        if self._pool is None:
            self._pool = multiprocessing.Pool(processes=self.workers)
        return self._pool

    def close(self) -> None:
        """Tear down the worker pool (a later map() transparently re-creates it)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def stream(
        self,
        fn: Callable[[TrialSpec], Any],
        specs: Iterable[TrialSpec],
        count: Optional[int] = None,
    ) -> Iterator[Any]:
        """Lazily evaluate ``fn`` over ``specs``, yielding in submission order.

        The streaming sibling of :meth:`map`: same determinism contract
        (submission-order results, :class:`TrialError` at the first failing
        trial), but results are *yielded as they arrive* instead of being
        materialized — a consumer folding them into O(1) accumulators runs a
        10⁵-trial experiment in constant memory at the aggregation layer.
        ``specs`` may itself be a lazy generator; pass ``count`` when the
        total is known so small parallel streams still spread across all
        workers (without it, pooled chunking falls back to
        :data:`STREAM_CHUNK`).

        Serial execution is fully lazy (a trial runs only when its result is
        pulled).  Pooled execution keeps ``workers`` processes busy ahead of
        the consumer via ``Pool.imap``; out-of-order completions buffer
        internally only until their submission-order turn comes.
        """
        if self.parallel:
            return self._stream_pool(fn, specs, count)
        return self._stream_serial(fn, specs)

    def _stream_serial(
        self, fn: Callable[[TrialSpec], Any], specs: Iterable[TrialSpec]
    ) -> Iterator[Any]:
        for spec in specs:
            try:
                yield fn(spec)
            except Exception as exc:
                raise TrialError(
                    spec.index, spec.seed, traceback.format_exc()
                ) from exc

    def _stream_pool(
        self,
        fn: Callable[[TrialSpec], Any],
        specs: Iterable[TrialSpec],
        count: Optional[int] = None,
    ) -> Iterator[Any]:
        # With a known total, chunk like map() (≈4 chunks/worker) so tiny
        # streams parallelize; STREAM_CHUNK caps chunks for huge streams so
        # results keep flowing back to the online aggregator.
        if self.chunk_size is not None:
            chunk = self.chunk_size
        elif count is not None:
            chunk = max(1, min(STREAM_CHUNK, math.ceil(count / (self.workers * 4))))
        else:
            chunk = STREAM_CHUNK
        worker = functools.partial(_execute, fn)
        for outcome in self._get_pool().imap(worker, specs, chunksize=chunk):
            if outcome.error is not None:
                raise TrialError(outcome.index, outcome.seed, outcome.error)
            yield outcome.value

    def run_stream(
        self,
        fn: Callable[[TrialSpec], Any],
        trials: int,
        master_seed: int = 0,
        params: Any = None,
    ) -> Iterator[Any]:
        """Stream ``trials`` seeded trials of ``fn`` under ``master_seed``.

        The streaming sibling of :meth:`run_trials`: trial ``i`` receives
        ``TrialSpec(i, derive_seed(master_seed, i), params)`` and results
        arrive lazily in trial order — specs are generated on the fly, so
        neither inputs nor outputs are ever materialized here.
        """
        if trials < 0:
            raise ValueError(f"trials must be >= 0, got {trials}")
        specs = (
            TrialSpec(index=i, seed=derive_seed(master_seed, i), params=params)
            for i in range(trials)
        )
        return self.stream(fn, specs)

    def _map_pool(
        self, fn: Callable[[TrialSpec], Any], specs: Sequence[TrialSpec]
    ) -> List[_Outcome]:
        chunk = self.chunk_size or max(
            1, math.ceil(len(specs) / (self.workers * 4))
        )
        worker = functools.partial(_execute, fn)
        # Pool.map preserves input order, so no re-sorting is needed.  The
        # pool persists across map() calls, so a shared engine amortizes
        # process startup over a whole experiment series.
        return self._get_pool().map(worker, specs, chunksize=chunk)

    # ------------------------------------------------------------------
    # Trial fan-out
    # ------------------------------------------------------------------
    def run_trials(
        self,
        fn: Callable[[TrialSpec], Any],
        trials: int,
        master_seed: int = 0,
        params: Any = None,
    ) -> List[Any]:
        """Run ``trials`` independent trials of ``fn`` under ``master_seed``.

        Trial ``i`` receives ``TrialSpec(i, derive_seed(master_seed, i),
        params)``; results come back in trial order.
        """
        if trials < 0:
            raise ValueError(f"trials must be >= 0, got {trials}")
        specs = [
            TrialSpec(index=i, seed=derive_seed(master_seed, i), params=params)
            for i in range(trials)
        ]
        return self.map(fn, specs)


def resolve_engine(
    engine: Optional[ExperimentEngine], workers: int
) -> ExperimentEngine:
    """The caller's engine if given, else a fresh one with ``workers``."""
    if engine is not None:
        return engine
    return ExperimentEngine(workers=workers)
