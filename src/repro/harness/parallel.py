"""Parallel Monte-Carlo experiment engine, layered on pluggable backends.

The Figure-5 experiments are embarrassingly parallel: every trial is an
independent function of its own seed.  :class:`ExperimentEngine` exploits
that by fanning ``(index, seed, params)`` trial specs across an
**execution backend** (:mod:`repro.harness.backends`) while keeping one
hard guarantee:

**every backend and every worker count produces bit-identical results.**

Two mechanisms make that hold:

* *counter-based seed splitting* — every trial's seed is derived from the
  master seed and the trial index alone (`derive_seed`, a SplitMix64-style
  integer mix with no :mod:`random`/:mod:`numpy` state involved), so a
  trial's randomness never depends on which process/thread/shard runs it or
  in which order trials complete;
* *submission-order collection* — :meth:`ExperimentEngine.map` returns
  results in the order the specs were submitted regardless of completion
  order, so even order-sensitive aggregation (e.g. float summation) is
  reproducible.

Backend selection (see the guide in :mod:`repro.harness`):

* ``workers <= 1`` (default) — :class:`SerialBackend
  <repro.harness.backends.serial.SerialBackend>`: in-process, no pickling,
  pdb/coverage-friendly;
* ``workers > 1`` — :class:`ProcessPoolBackend
  <repro.harness.backends.pool.ProcessPoolBackend>`: the CPU-scaling
  default (trial functions must be picklable);
* ``backend="async"`` / ``backend="sharded"`` (or a constructed
  :class:`~repro.harness.backends.base.Backend` instance) — explicit
  strategies for overlap-bound and dispatch-bound workloads.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterable, Iterator, List, Optional, Union

from .backends import (
    Backend,
    Outcome,
    STREAM_CHUNK,
    TrialError,
    TrialSpec,
    backend_from_env,
    derive_seed,
    execute_outcome,
    make_backend,
    resolve_workers,
    spawn_seeds,
    workers_from_env,
)

__all__ = [
    "Backend",
    "ExperimentEngine",
    "TrialError",
    "TrialSpec",
    "backend_from_env",
    "derive_seed",
    "engine_scope",
    "make_backend",
    "resolve_engine",
    "resolve_workers",
    "spawn_seeds",
    "workers_from_env",
]

# Backwards-compatible private aliases (pre-backend-seam names).
_Outcome = Outcome
_execute = execute_outcome


class ExperimentEngine:
    """Fans independent trials across an execution backend, deterministically.

    Example:
        >>> from repro.harness.parallel import ExperimentEngine, TrialSpec
        >>> engine = ExperimentEngine(workers=0)  # serial
        >>> engine.run_trials(lambda spec: spec.seed % 7, trials=3)  # doctest: +ELLIPSIS
        [...]

    ``workers``:
        * ``0`` or ``1`` — in-process serial execution (identical results);
        * ``k > 1``      — a pool of ``k`` processes (``k`` may exceed the
          core count; the OS just time-slices);
        * ``"auto"``     — the machine's core count.

    ``backend`` overrides the worker-count default: a registry name
    (``"serial"``/``"pool"``/``"async"``/``"sharded"``) or a constructed
    :class:`~repro.harness.backends.base.Backend` instance (which the
    engine then owns and closes).  ``chunk_size`` controls how many specs
    each pool task (or shard) carries; the default amortizes IPC overhead
    at roughly four chunks per worker.
    """

    def __init__(
        self,
        workers: Union[int, str] = 0,
        chunk_size: Optional[int] = None,
        backend: Optional[Union[str, Backend]] = None,
    ) -> None:
        workers = resolve_workers(workers)
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        if isinstance(backend, Backend):
            # A constructed instance is authoritative: its own configuration
            # wins, and ``workers`` below reflects what actually executes
            # (``workers=``/``chunk_size=`` arguments are not re-applied).
            self._backend = backend
        else:
            self._backend = make_backend(
                backend, workers=workers, chunk_size=chunk_size
            )
        #: The concurrency that actually executes — read from the backend
        #: (an explicitly concurrent backend may have auto-resolved to the
        #: core count).  A serial backend carries no worker count: a
        #: caller-constructed one reports 0 regardless of the ``workers``
        #: argument (which it ignores); the name/default path reports the
        #: requested 0/1.
        self.workers = getattr(
            self._backend,
            "workers",
            0 if isinstance(backend, Backend) else workers,
        )

    @property
    def backend(self) -> Backend:
        """The execution backend this engine delegates to."""
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def parallel(self) -> bool:
        return self._backend.parallel

    @property
    def _pool(self):
        """The pool backend's raw ``multiprocessing.Pool`` (None otherwise).

        Kept for observability (tests assert pool reuse across calls); new
        code should treat the backend as opaque.
        """
        return getattr(self._backend, "_pool", None)

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[TrialSpec], Any],
        specs: Iterable[TrialSpec],
    ) -> List[Any]:
        """Evaluate ``fn`` on every spec; results in submission order.

        The first failing trial (in submission order) raises
        :class:`TrialError` with the worker's traceback, whichever backend
        ran it.  The serial backend additionally fails fast (nothing after
        the failing trial runs) and chains the original exception as
        ``__cause__``.
        """
        return self._backend.map(fn, specs)

    def close(self) -> None:
        """Release the backend's execution resources, gracefully.

        In-flight work finishes and pool workers exit through their normal
        shutdown path (``atexit``/coverage hooks run); a later ``map()``
        transparently re-acquires resources.
        """
        self._backend.close()

    def abort(self) -> None:
        """Hard teardown for error paths: abandoned in-flight work is not
        waited for (pool workers are terminated).  Falls back to
        :meth:`close` on backends with nothing to kill."""
        abort = getattr(self._backend, "abort", None)
        if abort is not None:
            abort()
        else:
            self._backend.close()

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.abort()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def stream(
        self,
        fn: Callable[[TrialSpec], Any],
        specs: Iterable[TrialSpec],
        count: Optional[int] = None,
        window: Optional[int] = None,
    ) -> Iterator[Any]:
        """Lazily evaluate ``fn`` over ``specs``, yielding in submission order.

        The streaming sibling of :meth:`map`: same determinism contract
        (submission-order results, :class:`TrialError` at the first failing
        trial), but results are *yielded as they arrive* instead of being
        materialized — a consumer folding them into O(1) accumulators runs a
        10⁵-trial experiment in constant memory at the aggregation layer.
        ``specs`` may itself be a lazy generator; pass ``count`` when the
        total is known so batching backends size their chunks/shards to
        spread small streams across all workers (without it, they fall back
        to :data:`~repro.harness.backends.base.STREAM_CHUNK`-sized batches).

        ``window`` invokes the backend seam's **bounded-window /
        cancellation contract** (see :class:`~repro.harness.backends.base.
        Backend`): at most about ``window`` specs are dispatched ahead of
        the results consumed, and dropping the stream mid-iteration
        abandons only that bounded in-flight window — the chunked-dispatch
        mode adaptive stopping (:mod:`repro.harness.adaptive`) relies on to
        cancel a cell without draining its full seed range.
        """
        if window is None:
            return self._backend.stream(fn, specs, count=count)
        return self._backend.stream(fn, specs, count=count, window=window)

    def run_stream(
        self,
        fn: Callable[[TrialSpec], Any],
        trials: int,
        master_seed: int = 0,
        params: Any = None,
        window: Optional[int] = None,
    ) -> Iterator[Any]:
        """Stream ``trials`` seeded trials of ``fn`` under ``master_seed``.

        The streaming sibling of :meth:`run_trials`: trial ``i`` receives
        ``TrialSpec(i, derive_seed(master_seed, i), params)`` and results
        arrive lazily in trial order — specs are generated on the fly, so
        neither inputs nor outputs are ever materialized here.  ``window``
        enables bounded/cancellable dispatch exactly as on :meth:`stream`
        (an adaptive consumer stopping early then wastes at most about one
        window of seeded trials).
        """
        if trials < 0:
            raise ValueError(f"trials must be >= 0, got {trials}")
        specs = (
            TrialSpec(index=i, seed=derive_seed(master_seed, i), params=params)
            for i in range(trials)
        )
        return self.stream(fn, specs, count=trials, window=window)

    # ------------------------------------------------------------------
    # Trial fan-out
    # ------------------------------------------------------------------
    def run_trials(
        self,
        fn: Callable[[TrialSpec], Any],
        trials: int,
        master_seed: int = 0,
        params: Any = None,
    ) -> List[Any]:
        """Run ``trials`` independent trials of ``fn`` under ``master_seed``.

        Trial ``i`` receives ``TrialSpec(i, derive_seed(master_seed, i),
        params)``; results come back in trial order.
        """
        if trials < 0:
            raise ValueError(f"trials must be >= 0, got {trials}")
        specs = [
            TrialSpec(index=i, seed=derive_seed(master_seed, i), params=params)
            for i in range(trials)
        ]
        return self.map(fn, specs)


def resolve_engine(
    engine: Optional[ExperimentEngine],
    workers: Union[int, str],
    backend: Optional[Union[str, Backend]] = None,
) -> ExperimentEngine:
    """The caller's engine if given, else a fresh one with ``workers``.

    ``backend`` (a registry name or instance) overrides the worker-count
    default for the fresh-engine case; a caller-supplied engine always wins.
    """
    if engine is not None:
        return engine
    return ExperimentEngine(workers=workers, backend=backend)


@contextlib.contextmanager
def engine_scope(
    engine: Optional[ExperimentEngine],
    workers: Union[int, str],
    backend: Optional[Union[str, Backend]] = None,
) -> Iterator[ExperimentEngine]:
    """Resolve an engine and own its lifecycle iff this scope created it.

    A caller-supplied ``engine`` passes through untouched (the caller
    amortizes its pool across calls and closes it); a scope-created engine
    is closed gracefully on success and aborted on error, so every
    experiment surface (estimators, sweeps, matrices) releases its workers
    deterministically instead of leaking them to the garbage collector.
    """
    own = engine is None
    resolved = resolve_engine(engine, workers, backend)
    try:
        yield resolved
    except BaseException:
        if own:
            resolved.abort()
        raise
    else:
        if own:
            resolved.close()
