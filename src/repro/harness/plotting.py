"""Figure-5 style plots from ``repro sweep --json`` reports.

Split in two so the interesting logic needs no plotting backend:

* **pure series extraction** — :func:`load_report`, :func:`report_series`,
  :func:`merge_series` turn one or more sweep reports (each a JSON dict
  with per-cell aggregate rows) into ``PlotSeries`` objects: one labelled
  ``(x, y, y_err)`` polyline per (protocol, adversary, latency) cell,
  indexed by system size ``n``.  Fully unit-testable without matplotlib.
  Any numeric row column plots — including the ``interval_width`` column
  (the achieved agreement-interval width, the quantity adaptive
  ``--target-width`` runs drive to a target) and adaptive runs'
  ``trials_used`` (what each cell actually cost); non-numeric columns
  like ``stop_reason`` are rejected with a clear error.
* **gated rendering** — :func:`render_plot` imports matplotlib lazily and
  raises :class:`PlottingUnavailableError` with an actionable message when
  it is missing (the container's toolchain does not bake it in).

The intended pipeline mirrors the paper's Figure 5 (probability metrics vs
system size)::

    python -m repro sweep probft-adversaries --json --n 20  > n20.json
    python -m repro sweep probft-adversaries --json --n 40  > n40.json
    python -m repro plot n20.json n40.json --metric agreement_rate -o fig5.png
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "PlotSeries",
    "PlottingUnavailableError",
    "load_report",
    "report_series",
    "merge_series",
    "render_plot",
    "matplotlib_available",
    "METRICS_WITH_INTERVALS",
]


class PlottingUnavailableError(RuntimeError):
    """Raised when rendering is requested but matplotlib is not installed."""


#: Metrics whose reports carry interval/stderr companions usable as error
#: bars: metric -> (low key, high key) or (stderr key, None).
METRICS_WITH_INTERVALS: Dict[str, Tuple[str, Optional[str]]] = {
    "agreement_rate": ("agreement_ci_low", "agreement_ci_high"),
    "decide_rate": ("decide_stderr", None),
    "mean_messages": ("messages_stderr", None),
    "mean_bytes": ("bytes_stderr", None),
}


@dataclass
class PlotSeries:
    """One labelled polyline: metric values (and error bars) indexed by n."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    #: Symmetric or (low, high) error companions; empty when unavailable.
    y_err: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float, err: Optional[Tuple[float, float]]) -> None:
        self.x.append(x)
        self.y.append(y)
        if err is not None:
            self.y_err.append(err)

    @property
    def has_error_bars(self) -> bool:
        return len(self.y_err) == len(self.y) and bool(self.y_err)


def load_report(path: str) -> Dict[str, Any]:
    """Read one ``repro sweep --json`` report; validate its shape."""
    with open(path) as fh:
        report = json.load(fh)
    if not isinstance(report, dict) or "rows" not in report:
        raise ValueError(
            f"{path}: not a sweep report (expected a JSON object with 'rows';"
            " produce one with `python -m repro sweep --json`)"
        )
    return report


def _row_error(
    row: Mapping[str, Any], metric: str
) -> Optional[Tuple[float, float]]:
    """(below, above) error-bar extents for one row, if derivable."""
    companions = METRICS_WITH_INTERVALS.get(metric)
    if companions is None:
        return None
    low_key, high_key = companions
    value = row.get(metric)
    if value is None:
        return None
    if high_key is None:  # symmetric stderr companion
        stderr = row.get(low_key)
        if stderr is None:
            return None
        return (float(stderr), float(stderr))
    low, high = row.get(low_key), row.get(high_key)
    if low is None or high is None:
        return None
    return (float(value) - float(low), float(high) - float(value))


def report_series(
    report: Mapping[str, Any], metric: str, n: Optional[float] = None
) -> Dict[str, PlotSeries]:
    """One point per cell of one report, keyed by the cell's label.

    ``n`` is the x coordinate for every point (reports don't embed the
    system size in each row; the sweep CLI records it at the top level as
    ``n`` when present, else pass it explicitly).
    """
    x = n if n is not None else report.get("n")
    if x is None:
        raise ValueError(
            "report carries no system size 'n'; re-generate it with a "
            "current `repro sweep --json` or pass n explicitly"
        )
    series: Dict[str, PlotSeries] = {}
    for row in report["rows"]:
        if metric not in row:
            raise KeyError(
                f"metric {metric!r} not in report rows; available: "
                f"{', '.join(sorted(row))}"
            )
        value = row[metric]
        if value is None:  # JSON null — e.g. decision time when undecided
            continue
        if isinstance(value, str):
            raise ValueError(
                f"metric {metric!r} is non-numeric (e.g. {value!r}); pick a "
                "numeric column such as agreement_rate, interval_width, or "
                "trials_used"
            )
        label = f"{row['protocol']}/{row['adversary']}/{row['latency']}"
        entry = series.setdefault(label, PlotSeries(label=label))
        entry.add(float(x), float(value), _row_error(row, metric))
    return series


def merge_series(
    reports: Sequence[Mapping[str, Any]], metric: str
) -> List[PlotSeries]:
    """Merge per-report points into per-cell series ordered by n.

    Feeding reports for n=20, 40, 80 yields, per cell label, one series
    with three points — the Figure-5 "metric vs system size" shape.
    """
    merged: Dict[str, PlotSeries] = {}
    for report in reports:
        for label, series in report_series(report, metric).items():
            target = merged.setdefault(label, PlotSeries(label=label))
            for i, x in enumerate(series.x):
                err = series.y_err[i] if series.has_error_bars else None
                target.add(x, series.y[i], err)
    out = []
    for label in sorted(merged):
        series = merged[label]
        order = sorted(range(len(series.x)), key=lambda i: series.x[i])
        reordered = PlotSeries(label=label)
        for i in order:
            err = series.y_err[i] if series.has_error_bars else None
            reordered.add(series.x[i], series.y[i], err)
        out.append(reordered)
    return out


def matplotlib_available() -> bool:
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def render_plot(
    series: Sequence[PlotSeries],
    metric: str,
    output: str,
    title: Optional[str] = None,
) -> str:
    """Render the merged series to ``output`` (format from its extension).

    Raises :class:`PlottingUnavailableError` when matplotlib is missing —
    the toolchain treats plotting as an optional extra, so callers must
    surface the message rather than crash with an ImportError.
    """
    try:
        import matplotlib
    except ImportError as exc:
        raise PlottingUnavailableError(
            "matplotlib is not installed; install it (pip install matplotlib) "
            "to render plots — series extraction itself needs no backend"
        ) from exc
    matplotlib.use("Agg")  # headless: never require a display
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(7.0, 4.5))
    for entry in series:
        if entry.has_error_bars:
            below = [err[0] for err in entry.y_err]
            above = [err[1] for err in entry.y_err]
            ax.errorbar(
                entry.x,
                entry.y,
                yerr=(below, above),
                marker="o",
                capsize=3,
                label=entry.label,
            )
        else:
            ax.plot(entry.x, entry.y, marker="o", label=entry.label)
    ax.set_xlabel("system size n")
    ax.set_ylabel(metric)
    ax.set_title(title or f"Figure 5: {metric} vs n")
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(output)
    plt.close(fig)
    return output
