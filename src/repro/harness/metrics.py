"""Statistics helpers for empirical experiments.

Two families:

* batch helpers (:func:`mean`, :func:`stddev`, :func:`wilson_interval`)
  operating on materialized sequences;
* **streaming accumulators** (:class:`Welford`,
  :class:`StreamingProportion`) that ingest one observation at a time in
  O(1) memory — the backbone of constant-memory sweeps, where a 10⁵-trial
  matrix cell must aggregate without materializing 10⁵ rows.

:class:`Welford` keeps the running mean as ``sum/count`` (the exact same
left-fold float path as ``mean(list)``), so a streamed mean over trials in
submission order is **bit-identical** to the materialized computation; the
Welford-style ``M2`` recurrence adds variance/CI on top without a second
pass.

Both streaming accumulators additionally support **merging**
(:meth:`Welford.merge`, :meth:`StreamingProportion.merge`): shard-local
accumulators built over a partition of the observations combine into the
whole-stream aggregate — the fan-in operation sharded execution
(:class:`~repro.harness.backends.sharded.ShardedBackend`) and future
distributed workers rely on.  Counts and proportion merges are exact;
merged float sums (``total``/``M2``) equal the streamed values up to float
associativity — bit-identical whenever the observations are exactly
representable (booleans, counts, unit-latency times), and within rounding
otherwise.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class IndexedCounter:
    """Flat slot-indexed counter over a shared name→slot registry.

    The summary network accounting
    (:class:`~repro.net.network.MessageStats`) folds its per-kind counters
    into parallel int lists sharing ONE name→slot dict: resolving a message
    kind once yields the same slot for the sent, delivered, and byte
    counters alike, and the hot path does a list index instead of a dict
    hash per record.  :meth:`as_counter` rebuilds the classic ``Counter``
    view — including explicitly *touched* zero entries, because
    key-presence is part of the report contract (a byte counter shows a
    key iff a sized record occurred, even at size 0; a never-recorded kind
    shows no key at all).
    """

    __slots__ = ("_index", "_counts", "_touched")

    def __init__(self, index: Dict[str, int]) -> None:
        self._index = index
        self._counts: List[int] = []
        self._touched: List[bool] = []

    def slot(self, name: str) -> int:
        """Resolve (creating if needed) ``name``'s slot and mark it live."""
        index = self._index
        idx = index.get(name)
        if idx is None:
            idx = index[name] = len(index)
        counts = self._counts
        if len(counts) <= idx:
            grow = idx + 1 - len(counts)
            counts.extend([0] * grow)
            self._touched.extend([False] * grow)
        self._touched[idx] = True
        return idx

    def add(self, slot: int, amount: int) -> None:
        """Add into a slot previously resolved with :meth:`slot`."""
        self._counts[slot] += amount

    def bump(self, name: str, amount: int = 1) -> None:
        self._counts[self.slot(name)] += amount

    def get(self, name: str) -> int:
        idx = self._index.get(name)
        if idx is None or idx >= len(self._counts):
            return 0
        return self._counts[idx]

    def total(self) -> int:
        return sum(self._counts)

    def as_counter(self) -> Counter:
        out: Counter = Counter()
        counts = self._counts
        touched = self._touched
        bound = len(counts)
        for name, idx in self._index.items():
            if idx < bound and touched[idx]:
                out[name] = counts[idx]
        return out


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (NaN for empty input)."""
    if not values:
        return float("nan")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Uses the standard linear-interpolation-between-closest-ranks definition
    (numpy's default), so ``percentile(vs, 50)`` is the median.  Returns
    ``None`` for empty input — serving cells where nothing completed must
    surface as explicit gaps, never as NaN quietly flowing into reports
    (the tail-latency sibling of the :func:`mean` NaN contract, which we
    keep for backward compatibility there).
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class LatencyAccumulator:
    """Latency distribution accumulator for serving experiments.

    Collects per-request latencies plus an explicit count of requests that
    never completed, and reports the summary the serving harness and CLI
    print everywhere: mean / p50 / p99 / p999 with ``None`` (not NaN) when
    nothing completed.  Mergeable like the other streaming accumulators so
    per-trial summaries fan in across matrix cells.

    Unlike :class:`Welford` this keeps the raw observations — tail
    percentiles are not computable in O(1) memory, and serving runs are
    bounded by the request budget, so the materialized list is fine.
    """

    __slots__ = ("latencies", "incomplete", "recovered")

    def __init__(self) -> None:
        self.latencies: List[float] = []
        self.incomplete = 0
        self.recovered = 0

    def add(self, latency: Optional[float]) -> None:
        """Record one request: its latency, or ``None`` if it never completed."""
        if latency is None:
            self.incomplete += 1
        else:
            self.latencies.append(latency)

    def add_recovered(self) -> None:
        """Record a request completed from replayed history.

        Recovered requests carry a meaningless zero latency (completion was
        observed, not measured), so they are counted separately and never
        enter the distribution — folding them in would silently drag p50
        toward zero in any trial with late-attached clients.
        """
        self.recovered += 1

    def extend(self, latencies) -> "LatencyAccumulator":
        for latency in latencies:
            self.add(latency)
        return self

    def merge(self, other: "LatencyAccumulator") -> "LatencyAccumulator":
        self.latencies.extend(other.latencies)
        self.incomplete += other.incomplete
        self.recovered += other.recovered
        return self

    @property
    def completed(self) -> int:
        return len(self.latencies)

    @property
    def total(self) -> int:
        return len(self.latencies) + self.incomplete + self.recovered

    @property
    def mean(self) -> Optional[float]:
        if not self.latencies:
            return None
        return sum(self.latencies) / len(self.latencies)

    def percentile(self, q: float) -> Optional[float]:
        return percentile(self.latencies, q)

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(50)

    @property
    def p99(self) -> Optional[float]:
        return self.percentile(99)

    @property
    def p999(self) -> Optional[float]:
        return self.percentile(99.9)

    def summary(self) -> dict:
        """JSON-ready summary with explicit completion accounting."""
        return {
            "completed": self.completed,
            "incomplete": self.incomplete,
            "recovered": self.recovered,
            "mean_latency": self.mean,
            "p50_latency": self.p50,
            "p99_latency": self.p99,
            "p999_latency": self.p999,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyAccumulator(completed={self.completed}, "
            f"incomplete={self.incomplete})"
        )


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because our proportions sit very
    close to 0 or 1 (agreement-violation probabilities are ~exp(−Θ(√n))).

    Degenerate cells are well-defined rather than errors, so stopping rules
    can trust the interval from trial zero onward:

    * ``trials == 0`` (with ``successes == 0``) — the zero-information
      interval ``(0.0, 1.0)``;
    * ``successes == 0`` — the lower endpoint is exactly ``0.0``;
    * ``successes == trials`` — the upper endpoint is exactly ``1.0``
      (pinned explicitly: the algebraic cancellation that makes it 1 is not
      exact in floating point).

    Negative trials and out-of-range success counts still raise.
    """
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} out of range [0, {trials}]")
    if trials == 0:
        return 0.0, 1.0
    p = successes / trials
    denom = 1 + z**2 / trials
    center = (p + z**2 / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2))
        / denom
    )
    low = 0.0 if successes == 0 else max(0.0, center - margin)
    high = 1.0 if successes == trials else min(1.0, center + margin)
    return low, high


class Welford:
    """Streaming mean/variance accumulator (Welford 1962), O(1) memory.

    ``add`` ingests one observation; ``mean`` is maintained as a running
    ``sum / count`` so that streaming values in submission order reproduces
    ``mean(values)`` bit-for-bit (both are the same left-fold summation).
    The ``M2`` recurrence gives the sample variance in the same single pass,
    numerically stable even when the mean dwarfs the spread.

    NaN observations are counted but poison the aggregate (as with the batch
    helpers) — callers that want NaN-tolerance filter before adding.
    """

    __slots__ = ("count", "total", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        old_mean = self.total / self.count if self.count else 0.0
        self.count += 1
        self.total += value
        delta = value - old_mean
        self._m2 += delta * (value - self.mean)

    def extend(self, values) -> "Welford":
        for value in values:
            self.add(value)
        return self

    def merge(self, other: "Welford") -> "Welford":
        """Fold another accumulator's observations into this one, in place.

        Chan et al.'s parallel-variance combine: after ``a.merge(b)``, ``a``
        aggregates the concatenation of both observation streams.  Used as
        the shard fan-in by :class:`~repro.harness.backends.sharded.
        ShardedBackend`: per-shard accumulators merged in shard order
        reproduce the submission-order stream.  ``count`` is exact;
        ``total``/``M2`` are float sums and therefore equal the streamed
        values up to float associativity (exactly, for exactly-representable
        observations).
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self._m2 = other._m2
            return self
        delta = other.mean - self.mean
        combined = self.count + other.count
        self._m2 = (
            self._m2
            + other._m2
            + delta * delta * (self.count * other.count) / combined
        )
        self.count = combined
        self.total += other.total
        return self

    @property
    def mean(self) -> float:
        """Running mean; NaN for an empty accumulator (matches :func:`mean`)."""
        return self.total / self.count if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Sample variance (0 for fewer than two values, like :func:`stddev`)."""
        if self.count < 2:
            return 0.0
        return max(0.0, self._m2 / (self.count - 1))

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean (0 for fewer than two values)."""
        if self.count < 2:
            return 0.0
        return self.stddev / math.sqrt(self.count)

    def ci(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation confidence interval for the mean."""
        if not self.count:
            return float("nan"), float("nan")
        margin = z * self.stderr
        return self.mean - margin, self.mean + margin

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Welford(count={self.count}, mean={self.mean!r})"


class StreamingProportion:
    """Streaming binomial counter with a Wilson 95% interval.

    The incremental sibling of :class:`ProportionEstimate`: feed it one
    boolean outcome at a time (O(1) memory) and read the same point
    estimate/interval the batch class would compute from the full list.
    The interval is total — ``(0.0, 1.0)`` before any trial, endpoints
    pinned exactly at all-success/all-failure (see :func:`wilson_interval`)
    — so adaptive stopping rules can consult it at every checkpoint without
    guarding degenerate cells.
    """

    __slots__ = ("successes", "trials")

    def __init__(self) -> None:
        self.successes = 0
        self.trials = 0

    def add(self, success: bool) -> None:
        self.trials += 1
        if success:
            self.successes += 1

    def merge(self, other: "StreamingProportion") -> "StreamingProportion":
        """Fold another counter's observations into this one (exact)."""
        self.successes += other.successes
        self.trials += other.trials
        return self

    @property
    def point(self) -> float:
        return self.successes / self.trials if self.trials else float("nan")

    @property
    def interval(self) -> Tuple[float, float]:
        return wilson_interval(self.successes, self.trials)

    @property
    def interval_width(self) -> float:
        """Width of the Wilson interval (1.0 before any trial)."""
        low, high = self.interval
        return high - low

    def as_estimate(self) -> "ProportionEstimate":
        """Freeze into the batch-side :class:`ProportionEstimate`."""
        return ProportionEstimate(self.successes, self.trials)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingProportion({self.successes}/{self.trials})"
        )


@dataclass(frozen=True)
class ProportionEstimate:
    """An empirical proportion with its Wilson 95% confidence interval."""

    successes: int
    trials: int

    @property
    def point(self) -> float:
        return self.successes / self.trials if self.trials else float("nan")

    @property
    def interval(self) -> Tuple[float, float]:
        return wilson_interval(self.successes, self.trials)

    def compatible_with(self, probability: float) -> bool:
        """Whether ``probability`` lies inside the confidence interval."""
        low, high = self.interval
        return low <= probability <= high

    def __str__(self) -> str:
        low, high = self.interval
        return f"{self.point:.4f} [{low:.4f}, {high:.4f}] ({self.trials} trials)"
