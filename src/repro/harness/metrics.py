"""Statistics helpers for empirical experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (NaN for empty input)."""
    if not values:
        return float("nan")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because our proportions sit very
    close to 0 or 1 (agreement-violation probabilities are ~exp(−Θ(√n))).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} out of range [0, {trials}]")
    p = successes / trials
    denom = 1 + z**2 / trials
    center = (p + z**2 / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2))
        / denom
    )
    return max(0.0, center - margin), min(1.0, center + margin)


@dataclass(frozen=True)
class ProportionEstimate:
    """An empirical proportion with its Wilson 95% confidence interval."""

    successes: int
    trials: int

    @property
    def point(self) -> float:
        return self.successes / self.trials if self.trials else float("nan")

    @property
    def interval(self) -> Tuple[float, float]:
        return wilson_interval(self.successes, self.trials)

    def compatible_with(self, probability: float) -> bool:
        """Whether ``probability`` lies inside the confidence interval."""
        low, high = self.interval
        return low <= probability <= high

    def __str__(self) -> str:
        low, high = self.interval
        return f"{self.point:.4f} [{low:.4f}, {high:.4f}] ({self.trials} trials)"
