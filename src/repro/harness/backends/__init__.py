"""Pluggable execution backends for the experiment engine.

One seam, four strategies::

                         Backend (map / stream / close)
                                     │
        ┌───────────────┬────────────┴────────────┬────────────────┐
   SerialBackend  ProcessPoolBackend       AsyncioBackend    ShardedBackend
   (in-process,   (multiprocessing,        (event loop +     (seed shards →
    reference,     CPU-bound scaling,       threads; overlap  inner backend;
    fail-fast)     graceful lifecycle)      build/execute)    merge fan-in)

Every experiment surface — :class:`~repro.harness.parallel.ExperimentEngine`,
``run_matrix``/``run_sweep``/``run_stream``, the Monte-Carlo estimators, the
benches, and ``repro sweep --backend`` — executes through this seam, and
every backend keeps the same hard guarantee: **bit-identical results in
submission order for identical specs**, because per-trial seeds are
counter-derived (scheduling-independent) and collection order is submission
order.  Choosing a backend is purely a performance decision; see the
backend-selection guide in :mod:`repro.harness`.

:func:`make_backend` resolves a registry name (``serial`` / ``pool`` /
``async`` / ``sharded``) to a configured instance; ``workers="auto"``
resolves to the machine's core count.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Union

from .asyncio_backend import AsyncioBackend
from .base import (
    STREAM_CHUNK,
    Backend,
    Outcome,
    TrialError,
    TrialSpec,
    derive_seed,
    execute_outcome,
    resolve_workers,
    spawn_seeds,
    workers_from_env,
)
from .pool import ProcessPoolBackend
from .serial import SerialBackend
from .sharded import ShardedBackend

__all__ = [
    "AsyncioBackend",
    "BACKENDS",
    "Backend",
    "Outcome",
    "ProcessPoolBackend",
    "STREAM_CHUNK",
    "SerialBackend",
    "ShardedBackend",
    "TrialError",
    "TrialSpec",
    "backend_from_env",
    "derive_seed",
    "execute_outcome",
    "list_backends",
    "make_backend",
    "resolve_workers",
    "spawn_seeds",
    "workers_from_env",
]

#: Registry name → backend class.  The CLI's ``--backend`` choices and the
#: benches' ``REPRO_BENCH_BACKEND`` values come from here.
BACKENDS: Dict[str, type] = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    AsyncioBackend.name: AsyncioBackend,
    ShardedBackend.name: ShardedBackend,
}


def list_backends() -> list:
    """All registered backend names, in presentation order."""
    return list(BACKENDS)


def make_backend(
    name: Optional[str],
    workers: Union[int, str] = 0,
    chunk_size: Optional[int] = None,
) -> Backend:
    """Build a configured backend from a registry name.

    ``name=None`` picks the historical default: serial for ``workers <= 1``,
    a process pool otherwise — so existing ``workers=k`` call sites keep
    their exact behavior.  ``workers="auto"`` (or ``0`` with an explicitly
    concurrent backend) resolves to the core count.  ``chunk_size`` applies
    to the pool backend (and a sharded backend's shard size); the serial
    backend ignores it.
    """
    workers = resolve_workers(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if name is None:
        name = "pool" if workers > 1 else "serial"
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; registered: {', '.join(BACKENDS)}"
        ) from None
    if cls is SerialBackend:
        return SerialBackend()
    # An explicitly concurrent backend with no worker count saturates the
    # hardware — the CLI's `--backend pool` without `--workers` case.
    if workers < 1:
        workers = resolve_workers("auto")
    if cls is ProcessPoolBackend:
        return ProcessPoolBackend(workers=workers, chunk_size=chunk_size)
    if cls is AsyncioBackend:
        return AsyncioBackend(workers=workers)
    return ShardedBackend(workers=workers, shard_size=chunk_size)


def backend_from_env(
    var: str = "REPRO_BACKEND", default: Optional[str] = None
) -> Optional[str]:
    """Backend name from an environment variable; unknown values → default.

    Shared by the benches (``REPRO_BENCH_BACKEND``) so the parsing rule
    lives in one place: an unregistered name falls back to ``default``
    rather than crashing at import time.
    """
    raw = os.environ.get(var)
    if raw is None:
        return default
    name = raw.strip().lower()
    return name if name in BACKENDS else default
