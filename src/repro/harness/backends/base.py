"""The execution-backend seam: trial specs, seeds, and the Backend protocol.

Everything an execution strategy needs lives here, independent of any one
strategy:

* the **trial vocabulary** — :class:`TrialSpec` (one unit of work),
  :class:`TrialError` (a failing trial, with its identity), and the
  :class:`Outcome` envelope that carries a value *or* a stringified failure
  across process/thread boundaries;
* **counter-based seed splitting** — :func:`derive_seed` /
  :func:`spawn_seeds`, pure integer functions of ``(master_seed, index)``
  with no RNG state, so any worker (in any process, on any host) can
  compute any trial's seed independently;
* the :class:`Backend` protocol itself — ``map``/``stream``/``close`` —
  which every execution strategy implements and every experiment surface
  (engine, matrix, sweeps, Monte-Carlo, benches, CLI) consumes.

The one hard guarantee every backend must keep:

**identical trial functions + identical specs ⇒ bit-identical results, in
submission order, for every backend and every worker count.**

Seed derivation makes per-trial randomness scheduling-independent;
submission-order collection makes even order-sensitive aggregation (float
summation) reproducible.  A backend that cannot keep this contract does not
belong behind this seam.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, List, Optional, Union

__all__ = [
    "Backend",
    "Outcome",
    "STREAM_CHUNK",
    "TrialError",
    "TrialSpec",
    "derive_seed",
    "execute_outcome",
    "resolve_workers",
    "spawn_seeds",
    "workers_from_env",
]

#: Pool chunk size for streaming maps, where the spec count may be unknown
#: (lazy generators): large enough to amortize IPC, small enough that
#: results flow back steadily for online aggregation.
STREAM_CHUNK = 16

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _splitmix64(z: int) -> int:
    """One SplitMix64 output step (Steele, Lea & Flood 2014)."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_seed(master_seed: int, index: int) -> int:
    """Deterministic child seed for trial ``index`` under ``master_seed``.

    A pure integer function (no RNG state), so any worker can compute any
    trial's seed independently.  Distinct indices under one master seed give
    statistically independent streams when fed to ``numpy`` /
    :class:`random.Random` as seeds.
    """
    if index < 0:
        raise ValueError(f"trial index must be >= 0, got {index}")
    z = _splitmix64((master_seed & _MASK64) + _GOLDEN)
    return _splitmix64(z + (index + 1) * _GOLDEN)


def spawn_seeds(master_seed: int, count: int) -> List[int]:
    """The first ``count`` child seeds of ``master_seed``, in index order."""
    return [derive_seed(master_seed, i) for i in range(count)]


def workers_from_env(var: str = "REPRO_WORKERS", default: int = 0) -> int:
    """Worker count from an environment variable; invalid values mean default.

    Shared by the benchmarks (``REPRO_BENCH_WORKERS``) so the parsing rule
    lives in one place: a non-integer or negative value falls back to
    ``default`` rather than crashing at import time.  ``auto`` resolves to
    the machine's core count (see :func:`resolve_workers`).
    """
    raw = os.environ.get(var)
    if raw is None:
        return default
    if raw.strip().lower() == "auto":
        return resolve_workers("auto")
    try:
        workers = int(raw)
    except ValueError:
        return default
    return workers if workers >= 0 else default


def resolve_workers(workers: Union[int, str]) -> int:
    """Resolve a worker-count request to a concrete integer.

    ``"auto"`` (case-insensitive) means the machine's core count — the
    saturate-the-hardware default for ``repro sweep --workers auto``.
    Integers pass through unchanged (validation happens at the backend).
    """
    if isinstance(workers, str):
        if workers.strip().lower() == "auto":
            return os.cpu_count() or 1
        try:
            return int(workers)
        except ValueError:
            raise ValueError(
                f"workers must be an integer or 'auto', got {workers!r}"
            ) from None
    return workers


@dataclass(frozen=True)
class TrialSpec:
    """One unit of work: a trial index, its derived seed, and shared params."""

    index: int
    seed: int
    params: Any = None


class TrialError(RuntimeError):
    """A trial function raised; carries the failing trial's identity."""

    def __init__(self, index: int, seed: int, detail: str) -> None:
        super().__init__(f"trial {index} (seed {seed}) failed:\n{detail}")
        self.index = index
        self.seed = seed
        self.detail = detail


@dataclass
class Outcome:
    """What crosses an execution boundary: a value or a stringified failure."""

    index: int
    seed: int
    value: Any = None
    error: Optional[str] = None

    def unwrap(self) -> Any:
        """The value, or the :class:`TrialError` the failure maps to."""
        if self.error is not None:
            raise TrialError(self.index, self.seed, self.error)
        return self.value


def execute_outcome(fn: Callable[[TrialSpec], Any], spec: TrialSpec) -> Outcome:
    """Run one trial, capturing any exception as data (always picklable)."""
    try:
        return Outcome(index=spec.index, seed=spec.seed, value=fn(spec))
    except Exception:
        return Outcome(
            index=spec.index, seed=spec.seed, error=traceback.format_exc()
        )


class Backend:
    """The execution seam: evaluate trial specs, deterministically.

    Implementations choose *where and when* trials run — in-process
    (:class:`~repro.harness.backends.serial.SerialBackend`), across a
    process pool (:class:`~repro.harness.backends.pool.ProcessPoolBackend`),
    overlapped on an event loop
    (:class:`~repro.harness.backends.asyncio_backend.AsyncioBackend`), or
    batched into seed shards
    (:class:`~repro.harness.backends.sharded.ShardedBackend`) — but never
    *what they compute*: results are bit-identical across backends and
    arrive in submission order.

    Contract:

    * :meth:`map` — evaluate ``fn`` on every spec, return a materialized
      list in submission order; the first failing trial (in submission
      order) raises :class:`TrialError`.
    * :meth:`stream` — the lazy sibling: yield results as they arrive, in
      submission order; same error semantics.  ``count`` (when the total is
      known) lets batching backends size their chunks deterministically.
    * :meth:`close` — release execution resources (idempotent; a later
      ``map``/``stream`` transparently re-acquires them).

    **Bounded-window / cancellation contract** — ``stream(..., window=w)``
    additionally promises, for adaptive early stopping:

    * *bounded dispatch*: at most about ``w`` specs (within one
      chunk/shard of rounding) are consumed from ``specs`` ahead of the
      results already yielded, so a lazy seed range is never drained ahead
      of the consumer;
    * *prompt cancellation*: dropping the stream mid-iteration
      (``generator.close()``, ``break``, error) abandons only that bounded
      in-flight window — the backend finishes or discards it promptly and
      its workers are immediately reusable; a following ``close()`` stays
      on the graceful path (no terminate, no full-range drain).

    Without ``window`` the historical contract holds: backends may read
    ahead freely, and a dropped stream may leave unbounded queued work
    (the pool backend then hard-terminates on close).

    Backends are context managers (``with make_backend("pool", 8) as b:``),
    closing on exit.
    """

    #: Registry name; subclasses override (``serial``/``pool``/...).
    name: str = "abstract"

    @property
    def parallel(self) -> bool:
        """Whether trials may execute concurrently (scheduling only —
        results are identical either way)."""
        return False

    def map(
        self, fn: Callable[[TrialSpec], Any], specs: Iterable[TrialSpec]
    ) -> List[Any]:
        """Evaluate ``fn`` on every spec; results in submission order."""
        specs = list(specs)
        return list(self.stream(fn, specs, count=len(specs)))

    def stream(
        self,
        fn: Callable[[TrialSpec], Any],
        specs: Iterable[TrialSpec],
        count: Optional[int] = None,
        window: Optional[int] = None,
    ) -> Iterator[Any]:
        """Lazily evaluate ``fn`` over ``specs`` in submission order.

        ``window`` (when given, >= 1) invokes the bounded-window /
        cancellation contract above; ``None`` keeps the historical
        free-running read-ahead.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release execution resources (idempotent)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
