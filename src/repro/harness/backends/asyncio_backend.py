"""In-process asyncio execution: overlap trial lifecycles without processes.

:class:`AsyncioBackend` drives trials through an :mod:`asyncio` event loop
whose work lands on a small thread pool.  A bounded window of trials is in
flight at once, so while the submission-order head trial finishes, the
trials behind it are already building — in particular, a trial's
:meth:`~repro.harness.trial.TrialContext.build` crypto warm-up (key-registry
derivation inside :meth:`CryptoContext.pooled
<repro.crypto.context.CryptoContext.pooled>`, dominated by SHA-256) overlaps
the ``execute()`` phase of the trials ahead of it, and the first trial to
build a given ``(n, master_seed)`` pool entry publishes it to every
concurrent trial in the same process.

Honest scope note: this is *in-process* concurrency under the GIL.  It wins
when trial functions spend time outside pure-Python bytecode (NumPy kernels,
``hashlib`` over large buffers, any future I/O-bound trial source) and when
warm-up can hide behind execution; for pure-Python CPU-bound trials the
process pool or sharded backends are the scaling tools.  What it never
compromises is the seam's contract — results are collected in submission
order from counter-seeded trials, so they are bit-identical to every other
backend.

Trial functions must be thread-safe (the experiment surfaces' module-level
trial functions are: they share only the lock-protected crypto pool and
value-keyed pure caches); they do *not* need to be picklable, which makes
this the concurrent backend of choice for closures and rich in-memory
params.
"""

from __future__ import annotations

import asyncio
import functools
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Iterator, Optional

from .base import Backend, TrialSpec, execute_outcome, resolve_workers

__all__ = ["AsyncioBackend"]


class AsyncioBackend(Backend):
    """Overlap trials on an event loop backed by ``workers`` threads.

    ``window`` bounds how many trials are in flight ahead of the consumer
    (default ``2 × workers``): enough to keep every thread busy and hide
    build() warm-up behind execute(), small enough that a lazy spec
    generator is never materialized.
    """

    name = "async"

    def __init__(self, workers: int = 2, window: Optional[int] = None) -> None:
        workers = resolve_workers(workers)
        if workers < 1:
            raise ValueError(f"async workers must be >= 1, got {workers}")
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.workers = workers
        self.window = window if window is not None else 2 * workers
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def _get_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None or self._loop.is_closed():
            self._loop = asyncio.new_event_loop()
        return self._loop

    def _get_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-async-backend",
            )
        return self._executor

    def stream(
        self,
        fn: Callable[[TrialSpec], Any],
        specs: Iterable[TrialSpec],
        count: Optional[int] = None,
        window: Optional[int] = None,
    ) -> Iterator[Any]:
        """Yield results in submission order with a bounded in-flight window.

        The head-of-line future is awaited on the event loop; everything
        else in the window runs concurrently on the executor threads.
        Failures surface as :class:`~repro.harness.backends.base.TrialError`
        at the first failing trial in submission order (later in-flight
        trials complete in the background; their outcomes are discarded).

        This backend is windowed by construction, so the seam's
        bounded-window contract costs nothing: an explicit ``window``
        merely caps the configured one, and dropping the stream drains at
        most that many in-flight trials.
        """
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        effective_window = (
            self.window if window is None else min(self.window, window)
        )
        loop = self._get_loop()
        executor = self._get_executor()
        worker = functools.partial(execute_outcome, fn)
        spec_iter = iter(specs)
        pending: "deque[asyncio.Future]" = deque()

        def submit_next() -> bool:
            spec = next(spec_iter, None)
            if spec is None:
                return False
            pending.append(loop.run_in_executor(executor, worker, spec))
            return True

        try:
            while len(pending) < effective_window and submit_next():
                pass
            while pending:
                outcome = loop.run_until_complete(pending.popleft())
                submit_next()
                yield outcome.unwrap()
        finally:
            # On error/early close: let in-flight trials drain (they are
            # small and side-effect free) so the loop is quiesced for reuse.
            while pending:
                try:
                    loop.run_until_complete(pending.popleft())
                except Exception:  # pragma: no cover - defensive
                    pass

    def close(self) -> None:
        """Shut the executor down (waiting for in-flight trials) and close
        the loop; a later ``map``/``stream`` transparently re-creates both."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._loop is not None:
            if not self._loop.is_closed():
                self._loop.close()
            self._loop = None
